#include "dp/fast_graph.hpp"

#include <algorithm>
#include <array>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dpho::dp {

namespace {

constexpr std::size_t kNets = md::kNumSpecies * md::kNumSpecies;

// Metric handles are stable for the registry's lifetime, so resolve them once
// instead of taking the registration mutex every frame.
obs::Histogram& primal_seconds() {
  static obs::Histogram& h = obs::metrics().histogram(
      "dp.kernels.primal_seconds", obs::BucketLayout::timing_seconds());
  return h;
}

obs::Histogram& tangent_seconds() {
  static obs::Histogram& h = obs::metrics().histogram(
      "dp.kernels.tangent_seconds", obs::BucketLayout::timing_seconds());
  return h;
}

obs::Counter& frames_counter() {
  static obs::Counter& c = obs::metrics().counter("dp.kernels.frames_total");
  return c;
}

obs::Counter& pairs_counter() {
  static obs::Counter& c = obs::metrics().counter("dp.kernels.pairs_total");
  return c;
}

}  // namespace

void build_frame_geometry(const DeepPotModel& model, const md::Frame& frame,
                          const NeighborTopology& topology, FrameGeometry& out) {
  const std::vector<md::Species>& types = model.types();
  const std::size_t n = types.size();
  if (frame.positions.size() != n) {
    throw util::ValueError("fast_graph: frame atom count does not match model");
  }
  if (topology.entries.size() != n) {
    throw util::ValueError("fast_graph: topology atom count does not match model");
  }
  const double rcut = model.spec().descriptor.rcut;
  out.num_atoms = n;

  // Count pairs per embedding net, prefix-sum into offsets, then fill.  The
  // distance filter must match build_graph exactly (strict r < rcut).
  out.net_offsets.assign(kNets + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& entry : topology.entries[i]) {
      const md::Vec3 d =
          (frame.positions[entry.j] + entry.shift) - frame.positions[i];
      if (md::norm(d) >= rcut) continue;
      ++out.net_offsets[DeepPotModel::pair_index(types[i], types[entry.j]) + 1];
    }
  }
  for (std::size_t net = 0; net < kNets; ++net) {
    out.net_offsets[net + 1] += out.net_offsets[net];
  }
  out.resize_pairs(out.net_offsets.back());

  const SwitchingFunction& switching = model.switching();
  std::array<std::uint32_t, kNets> cursor;
  std::copy_n(out.net_offsets.begin(), kNets, cursor.begin());
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& entry : topology.entries[i]) {
      const md::Vec3 d =
          (frame.positions[entry.j] + entry.shift) - frame.positions[i];
      const double r = md::norm(d);
      if (r >= rcut) continue;
      const std::size_t net = DeepPotModel::pair_index(types[i], types[entry.j]);
      const std::uint32_t p = cursor[net]++;
      out.center[p] = static_cast<std::uint32_t>(i);
      out.j[p] = static_cast<std::uint32_t>(entry.j);
      out.r[p] = r;
      out.s[p] = switching.value(r);
      out.ds_dr[p] = switching.derivative(r);
      out.ux[p] = d[0] / r;
      out.uy[p] = d[1] / r;
      out.uz[p] = d[2] / r;
    }
  }
}

FastGraph::FastGraph(const DeepPotModel& model) : model_(&model) {
  m1_ = model.spec().m1();
  m2_ = model.spec().m2();

  // Group atoms by species so each fitting net sees one contiguous batch;
  // atom_slot_ maps an atom to its row inside that batch.
  const std::vector<md::Species>& types = model.types();
  const std::size_t n = types.size();
  species_offsets_.assign(md::kNumSpecies + 1, 0);
  for (md::Species t : types) ++species_offsets_[static_cast<std::size_t>(t) + 1];
  for (std::size_t s = 0; s < md::kNumSpecies; ++s) {
    species_offsets_[s + 1] += species_offsets_[s];
  }
  species_atoms_.resize(n);
  atom_slot_.resize(n);
  std::array<std::uint32_t, md::kNumSpecies> cursor;
  std::copy_n(species_offsets_.begin(), md::kNumSpecies, cursor.begin());
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(types[i]);
    const std::uint32_t pos = cursor[s]++;
    species_atoms_[pos] = static_cast<std::uint32_t>(i);
    atom_slot_[i] = pos - species_offsets_[s];
  }

  // Flat parameter offsets in gather_params order: embeddings then fittings.
  embed_param_offset_.resize(kNets);
  std::size_t offset = 0;
  for (std::size_t e = 0; e < kNets; ++e) {
    embed_param_offset_[e] = offset;
    offset += model.embedding_net(e).num_params();
  }
  fit_param_offset_.resize(md::kNumSpecies);
  for (std::size_t f = 0; f < md::kNumSpecies; ++f) {
    fit_param_offset_[f] = offset;
    offset += model.fitting_net(f).num_params();
  }
}

void FastGraph::size_workspace(std::span<const FrameGeometry* const> frames,
                               FastWorkspace& workspace) const {
  for (const FrameGeometry* geometry : frames) {
    if (geometry == nullptr || geometry->num_atoms != model_->num_atoms()) {
      throw util::ValueError("fast_graph: geometry atom count does not match model");
    }
  }
  workspace.embed.resize(kNets);
  workspace.fit.resize(md::kNumSpecies);
  // Fused per-net row totals and their prefix sums (row space shared by all
  // pair-indexed scratch like u_dot).
  workspace.net_counts.assign(kNets, 0);
  for (const FrameGeometry* geometry : frames) {
    for (std::size_t net = 0; net < kNets; ++net) {
      workspace.net_counts[net] += geometry->net_count(net);
    }
  }
  workspace.net_row_offset.assign(kNets + 1, 0);
  for (std::size_t net = 0; net < kNets; ++net) {
    workspace.net_row_offset[net + 1] =
        workspace.net_row_offset[net] + workspace.net_counts[net];
  }
}

void FastGraph::primal_pass(std::span<const FrameGeometry* const> frames,
                            FastWorkspace& workspace, bool training) const {
  obs::ScopedTimer timer(primal_seconds());
  const std::size_t num_frames = frames.size();
  frames_counter().add(static_cast<std::int64_t>(num_frames));

  const DeepPotModel& model = *model_;
  const std::vector<md::Species>& types = model.types();
  const std::size_t n = model.num_atoms();
  const double nu = model.sel_norm();
  const std::size_t dwidth = m1_ * m2_;
  const nn::Curvature curvature =
      training ? nn::Curvature::kCache : nn::Curvature::kNone;
  size_workspace(frames, workspace);
  pairs_counter().add(
      static_cast<std::int64_t>(workspace.net_row_offset.back()));

  // Embedding forward: one batch per (center, neighbor) species-pair net,
  // rows stacked frame-major within the net so K fused frames run each dense
  // layer as one K-times-taller batch.
  for (std::size_t net = 0; net < kNets; ++net) {
    const std::size_t total = workspace.net_counts[net];
    if (total == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.embed[net];
    slot.x.resize(total);
    std::size_t row = 0;
    for (const FrameGeometry* geometry : frames) {
      const std::uint32_t begin = geometry->net_offsets[net];
      const std::uint32_t end = geometry->net_offsets[net + 1];
      for (std::uint32_t p = begin; p < end; ++p) slot.x[row++] = geometry->s[p];
    }
    nn::mlp_forward_batch(model.embedding_net(net), slot.x, total, slot.cache,
                          curvature);
  }

  // Descriptor contraction: T_i[m][c] = nu * sum_j g_j[m] R_j[c], with atom
  // blocks laid out frame-major ((f * n + i) * m1 * 4).
  workspace.t.assign(num_frames * n * m1_ * 4, 0.0);
  for (std::size_t net = 0; net < kNets; ++net) {
    if (workspace.net_counts[net] == 0) continue;
    const std::span<const double> g_all = workspace.embed[net].cache.out();
    std::size_t row = 0;
    for (std::size_t f = 0; f < num_frames; ++f) {
      const FrameGeometry& geometry = *frames[f];
      const std::uint32_t begin = geometry.net_offsets[net];
      const std::uint32_t end = geometry.net_offsets[net + 1];
      double* t_frame = workspace.t.data() + f * n * m1_ * 4;
      for (std::uint32_t p = begin; p < end; ++p, ++row) {
        const double s = geometry.s[p];
        const double row4[4] = {s, s * geometry.ux[p], s * geometry.uy[p],
                                s * geometry.uz[p]};
        const double* g = g_all.data() + row * m1_;
        double* tblock = t_frame + geometry.center[p] * m1_ * 4;
        for (std::size_t m = 0; m < m1_; ++m) {
          const double gm = nu * g[m];
          for (std::size_t c = 0; c < 4; ++c) tblock[m * 4 + c] += gm * row4[c];
        }
      }
    }
  }

  // D_i[a][b] = sum_c T[a][c] T[b][c], written straight into the fitting
  // batch rows (atoms grouped by species; frames stack as row blocks).
  for (std::size_t sp = 0; sp < md::kNumSpecies; ++sp) {
    const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
    workspace.fit[sp].x.resize(num_frames * atoms * dwidth);
  }
  for (std::size_t f = 0; f < num_frames; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto sp = static_cast<std::size_t>(types[i]);
      const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
      double* dst = workspace.fit[sp].x.data() +
                    (f * atoms + atom_slot_[i]) * dwidth;
      const double* tblock = workspace.t.data() + (f * n + i) * m1_ * 4;
      for (std::size_t a = 0; a < m1_; ++a) {
        for (std::size_t b = 0; b < m2_; ++b) {
          double sum = 0.0;
          for (std::size_t c = 0; c < 4; ++c) sum += tblock[a * 4 + c] * tblock[b * 4 + c];
          dst[a * m2_ + b] = sum;
        }
      }
    }
  }

  // Fitting forward; per-frame atomic energies accumulate in atom order
  // (matching the tape's summation order).
  for (std::size_t sp = 0; sp < md::kNumSpecies; ++sp) {
    const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
    if (atoms == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.fit[sp];
    nn::mlp_forward_batch(model.fitting_net(sp), slot.x, num_frames * atoms,
                          slot.cache, curvature);
  }
  workspace.energies.resize(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f) {
    double energy = static_cast<double>(n) * model.energy_bias_per_atom();
    for (std::size_t i = 0; i < n; ++i) {
      const auto sp = static_cast<std::size_t>(types[i]);
      const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
      energy += workspace.fit[sp].cache.out()[f * atoms + atom_slot_[i]];
    }
    workspace.energies[f] = energy;
  }

  // Fitting reverse, seeded with dE/d(atomic energy) = 1; leaves the
  // descriptor adjoints in fit[sp].x_bar.  No parameter accumulation here:
  // in training the tangent pass carries the energy term via its seeds.
  for (std::size_t sp = 0; sp < md::kNumSpecies; ++sp) {
    const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
    if (atoms == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.fit[sp];
    const std::size_t rows = num_frames * atoms;
    slot.out_bar.assign(rows, 1.0);
    slot.x_bar.resize(rows * dwidth);
    nn::mlp_backward_batch(model.fitting_net(sp), slot.x, rows, slot.cache,
                           slot.out_bar, slot.x_bar, {});
  }

  // Descriptor reverse: Tbar[p][c] = sum_b Dbar[p][b] T[b][c]
  //                               + [p < m2] sum_a Dbar[a][p] T[a][c].
  workspace.t_bar.resize(num_frames * n * m1_ * 4);
  for (std::size_t f = 0; f < num_frames; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto sp = static_cast<std::size_t>(types[i]);
      const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
      const double* dbar = workspace.fit[sp].x_bar.data() +
                           (f * atoms + atom_slot_[i]) * dwidth;
      const double* tblock = workspace.t.data() + (f * n + i) * m1_ * 4;
      double* tbar = workspace.t_bar.data() + (f * n + i) * m1_ * 4;
      for (std::size_t p = 0; p < m1_; ++p) {
        for (std::size_t c = 0; c < 4; ++c) {
          double acc = 0.0;
          for (std::size_t b = 0; b < m2_; ++b) acc += dbar[p * m2_ + b] * tblock[b * 4 + c];
          if (p < m2_) {
            for (std::size_t a = 0; a < m1_; ++a) acc += dbar[a * m2_ + p] * tblock[a * 4 + c];
          }
          tbar[p * 4 + c] = acc;
        }
      }
    }
  }

  // Embedding reverse plus force assembly.  Per pair:
  //   gbar[m] = nu * sum_c Tbar[m][c] R[c]       (seeds the net's backward)
  //   Rbar[c] = nu * sum_m Tbar[m][c] g[m]
  //   sbar    = sbar_embed + Rbar[0] + sum_k Rbar[k+1] u[k]
  //   ubar_k  = s Rbar[k+1]
  //   dbar    = (ubar - (ubar.u) u)/r + sbar s'(r) u
  // with dbar flowing +into atom j and -into the center atom.
  workspace.coord_bar.assign(num_frames * 3 * n, 0.0);
  for (std::size_t net = 0; net < kNets; ++net) {
    const std::size_t total = workspace.net_counts[net];
    if (total == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.embed[net];
    const std::span<const double> g_all = slot.cache.out();
    slot.out_bar.resize(total * m1_);
    std::size_t row = 0;
    for (std::size_t f = 0; f < num_frames; ++f) {
      const FrameGeometry& geometry = *frames[f];
      const std::uint32_t begin = geometry.net_offsets[net];
      const std::uint32_t end = geometry.net_offsets[net + 1];
      const double* tbar_frame = workspace.t_bar.data() + f * n * m1_ * 4;
      for (std::uint32_t p = begin; p < end; ++p, ++row) {
        const double s = geometry.s[p];
        const double row4[4] = {s, s * geometry.ux[p], s * geometry.uy[p],
                                s * geometry.uz[p]};
        const double* tbar = tbar_frame + geometry.center[p] * m1_ * 4;
        double* gbar = slot.out_bar.data() + row * m1_;
        for (std::size_t m = 0; m < m1_; ++m) {
          double acc = 0.0;
          for (std::size_t c = 0; c < 4; ++c) acc += tbar[m * 4 + c] * row4[c];
          gbar[m] = nu * acc;
        }
      }
    }
    slot.x_bar.resize(total);
    nn::mlp_backward_batch(model.embedding_net(net), slot.x, total, slot.cache,
                           slot.out_bar, slot.x_bar, {});
    row = 0;
    for (std::size_t f = 0; f < num_frames; ++f) {
      const FrameGeometry& geometry = *frames[f];
      const std::uint32_t begin = geometry.net_offsets[net];
      const std::uint32_t end = geometry.net_offsets[net + 1];
      const double* tbar_frame = workspace.t_bar.data() + f * n * m1_ * 4;
      double* coord_bar = workspace.coord_bar.data() + f * 3 * n;
      for (std::uint32_t p = begin; p < end; ++p, ++row) {
        const double u[3] = {geometry.ux[p], geometry.uy[p], geometry.uz[p]};
        const double* tbar = tbar_frame + geometry.center[p] * m1_ * 4;
        const double* g = g_all.data() + row * m1_;
        double rbar[4];
        for (std::size_t c = 0; c < 4; ++c) {
          double acc = 0.0;
          for (std::size_t m = 0; m < m1_; ++m) acc += tbar[m * 4 + c] * g[m];
          rbar[c] = nu * acc;
        }
        const double sbar = slot.x_bar[row] + rbar[0] + rbar[1] * u[0] +
                            rbar[2] * u[1] + rbar[3] * u[2];
        const double s = geometry.s[p];
        const double ubar[3] = {s * rbar[1], s * rbar[2], s * rbar[3]};
        const double ubar_dot_u = ubar[0] * u[0] + ubar[1] * u[1] + ubar[2] * u[2];
        for (std::size_t k = 0; k < 3; ++k) {
          const double dbar = (ubar[k] - ubar_dot_u * u[k]) / geometry.r[p] +
                              sbar * geometry.ds_dr[p] * u[k];
          coord_bar[3 * geometry.j[p] + k] += dbar;
          coord_bar[3 * geometry.center[p] + k] -= dbar;
        }
      }
    }
  }
}

void FastGraph::tangent_pass(std::span<const FrameGeometry* const> frames,
                             FastWorkspace& workspace, std::span<double> grad) const {
  obs::ScopedTimer timer(tangent_seconds());
  const DeepPotModel& model = *model_;
  const std::vector<md::Species>& types = model.types();
  const std::size_t num_frames = frames.size();
  const std::size_t n = model.num_atoms();
  const double nu = model.sel_norm();
  const std::size_t dwidth = m1_ * m2_;

  workspace.u_dot.resize(3 * workspace.net_row_offset.back());

  // Geometry tangents along lambda (ddot = lambda_j - lambda_i) and the
  // embedding JVP:  rdot = u.ddot, udot = (ddot - u rdot)/r, sdot = s'(r) rdot.
  for (std::size_t net = 0; net < kNets; ++net) {
    const std::size_t total = workspace.net_counts[net];
    if (total == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.embed[net];
    slot.x_dot.resize(total);
    std::size_t row = workspace.net_row_offset[net];
    std::size_t local = 0;
    for (std::size_t f = 0; f < num_frames; ++f) {
      const FrameGeometry& geometry = *frames[f];
      const std::uint32_t begin = geometry.net_offsets[net];
      const std::uint32_t end = geometry.net_offsets[net + 1];
      const double* lambda = workspace.lambda.data() + f * 3 * n;
      for (std::uint32_t p = begin; p < end; ++p, ++row, ++local) {
        const double u[3] = {geometry.ux[p], geometry.uy[p], geometry.uz[p]};
        double ddot[3];
        for (std::size_t k = 0; k < 3; ++k) {
          ddot[k] = lambda[3 * geometry.j[p] + k] -
                    lambda[3 * geometry.center[p] + k];
        }
        const double rdot = ddot[0] * u[0] + ddot[1] * u[1] + ddot[2] * u[2];
        double* udot = workspace.u_dot.data() + 3 * row;
        for (std::size_t k = 0; k < 3; ++k) {
          udot[k] = (ddot[k] - u[k] * rdot) / geometry.r[p];
        }
        slot.x_dot[local] = geometry.ds_dr[p] * rdot;
      }
    }
    nn::mlp_jvp_batch(model.embedding_net(net), slot.x_dot, total, slot.cache);
  }

  // Tdot[m][c] = nu * sum_j (gdot[m] R[c] + g[m] Rdot[c]),
  // Rdot = [sdot, sdot u + s udot].
  workspace.t_dot.assign(num_frames * n * m1_ * 4, 0.0);
  for (std::size_t net = 0; net < kNets; ++net) {
    if (workspace.net_counts[net] == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.embed[net];
    const std::span<const double> g_all = slot.cache.out();
    const std::span<const double> gdot_all = slot.cache.out_dot();
    std::size_t row = workspace.net_row_offset[net];
    std::size_t local = 0;
    for (std::size_t f = 0; f < num_frames; ++f) {
      const FrameGeometry& geometry = *frames[f];
      const std::uint32_t begin = geometry.net_offsets[net];
      const std::uint32_t end = geometry.net_offsets[net + 1];
      double* t_dot_frame = workspace.t_dot.data() + f * n * m1_ * 4;
      for (std::uint32_t p = begin; p < end; ++p, ++row, ++local) {
        const double s = geometry.s[p];
        const double u[3] = {geometry.ux[p], geometry.uy[p], geometry.uz[p]};
        const double sdot = slot.x_dot[local];
        const double* udot = workspace.u_dot.data() + 3 * row;
        const double row4[4] = {s, s * u[0], s * u[1], s * u[2]};
        const double row_dot[4] = {sdot, sdot * u[0] + s * udot[0],
                                   sdot * u[1] + s * udot[1],
                                   sdot * u[2] + s * udot[2]};
        const double* g = g_all.data() + local * m1_;
        const double* gdot = gdot_all.data() + local * m1_;
        double* tdot = t_dot_frame + geometry.center[p] * m1_ * 4;
        for (std::size_t m = 0; m < m1_; ++m) {
          for (std::size_t c = 0; c < 4; ++c) {
            tdot[m * 4 + c] += nu * (gdot[m] * row4[c] + g[m] * row_dot[c]);
          }
        }
      }
    }
  }

  // Ddot[a][b] = sum_c (Tdot[a][c] T[b][c] + T[a][c] Tdot[b][c]) feeds the
  // fitting JVP; the fitting tangent-reverse yields the fit parameter
  // segments of the combined gradient and the descriptor tangent-adjoints
  // Dbardot.  The output tangent-adjoint seed is e_coef[f] per row -- the
  // tangent of the loss's energy seed -- which is how the energy-term
  // gradient rides this pass (DESIGN.md section 13).
  for (std::size_t sp = 0; sp < md::kNumSpecies; ++sp) {
    const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
    workspace.fit[sp].x_dot.resize(num_frames * atoms * dwidth);
  }
  for (std::size_t f = 0; f < num_frames; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto sp = static_cast<std::size_t>(types[i]);
      const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
      double* dst = workspace.fit[sp].x_dot.data() +
                    (f * atoms + atom_slot_[i]) * dwidth;
      const double* tblock = workspace.t.data() + (f * n + i) * m1_ * 4;
      const double* tdot = workspace.t_dot.data() + (f * n + i) * m1_ * 4;
      for (std::size_t a = 0; a < m1_; ++a) {
        for (std::size_t b = 0; b < m2_; ++b) {
          double sum = 0.0;
          for (std::size_t c = 0; c < 4; ++c) {
            sum += tdot[a * 4 + c] * tblock[b * 4 + c] +
                   tblock[a * 4 + c] * tdot[b * 4 + c];
          }
          dst[a * m2_ + b] = sum;
        }
      }
    }
  }
  for (std::size_t sp = 0; sp < md::kNumSpecies; ++sp) {
    const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
    if (atoms == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.fit[sp];
    const std::size_t rows = num_frames * atoms;
    nn::mlp_jvp_batch(model.fitting_net(sp), slot.x_dot, rows, slot.cache);
    slot.out_bar_dot.resize(rows);
    for (std::size_t f = 0; f < num_frames; ++f) {
      std::fill_n(slot.out_bar_dot.begin() +
                      static_cast<std::ptrdiff_t>(f * atoms),
                  atoms, workspace.e_coef[f]);
    }
    slot.x_bar_dot.resize(rows * dwidth);
    const std::span<double> grad_segment = grad.subspan(
        fit_param_offset_[sp], model.fitting_net(sp).num_params());
    nn::mlp_vjp_tangent_batch(model.fitting_net(sp), slot.x, slot.x_dot, rows,
                              slot.cache, slot.out_bar_dot, slot.x_bar_dot,
                              grad_segment);
  }

  // Tangent of the descriptor reverse (product rule on the Tbar formula):
  // Tbardot[p][c] = sum_b (Dbardot[p][b] T[b][c] + Dbar[p][b] Tdot[b][c])
  //             + [p < m2] sum_a (Dbardot[a][p] T[a][c] + Dbar[a][p] Tdot[a][c]).
  workspace.t_bar_dot.resize(num_frames * n * m1_ * 4);
  for (std::size_t f = 0; f < num_frames; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto sp = static_cast<std::size_t>(types[i]);
      const std::size_t atoms = species_offsets_[sp + 1] - species_offsets_[sp];
      const double* dbar = workspace.fit[sp].x_bar.data() +
                           (f * atoms + atom_slot_[i]) * dwidth;
      const double* dbardot = workspace.fit[sp].x_bar_dot.data() +
                              (f * atoms + atom_slot_[i]) * dwidth;
      const double* tblock = workspace.t.data() + (f * n + i) * m1_ * 4;
      const double* tdot = workspace.t_dot.data() + (f * n + i) * m1_ * 4;
      double* tbardot = workspace.t_bar_dot.data() + (f * n + i) * m1_ * 4;
      for (std::size_t p = 0; p < m1_; ++p) {
        for (std::size_t c = 0; c < 4; ++c) {
          double acc = 0.0;
          for (std::size_t b = 0; b < m2_; ++b) {
            acc += dbardot[p * m2_ + b] * tblock[b * 4 + c] +
                   dbar[p * m2_ + b] * tdot[b * 4 + c];
          }
          if (p < m2_) {
            for (std::size_t a = 0; a < m1_; ++a) {
              acc += dbardot[a * m2_ + p] * tblock[a * 4 + c] +
                     dbar[a * m2_ + p] * tdot[a * 4 + c];
            }
          }
          tbardot[p * 4 + c] = acc;
        }
      }
    }
  }

  // Embedding tangent-reverse, seeded with the tangent of gbar:
  // gbardot[m] = nu * sum_c (Tbardot[m][c] R[c] + Tbar[m][c] Rdot[c]).
  // Coordinate tangent-adjoints are not needed (only parameter derivatives
  // leave this pass), so x_bar_dot stays empty.
  for (std::size_t net = 0; net < kNets; ++net) {
    const std::size_t total = workspace.net_counts[net];
    if (total == 0) continue;
    FastWorkspace::NetSlot& slot = workspace.embed[net];
    slot.out_bar_dot.resize(total * m1_);
    std::size_t row = workspace.net_row_offset[net];
    std::size_t local = 0;
    for (std::size_t f = 0; f < num_frames; ++f) {
      const FrameGeometry& geometry = *frames[f];
      const std::uint32_t begin = geometry.net_offsets[net];
      const std::uint32_t end = geometry.net_offsets[net + 1];
      const double* tbar_frame = workspace.t_bar.data() + f * n * m1_ * 4;
      const double* tbardot_frame =
          workspace.t_bar_dot.data() + f * n * m1_ * 4;
      for (std::uint32_t p = begin; p < end; ++p, ++row, ++local) {
        const double s = geometry.s[p];
        const double u[3] = {geometry.ux[p], geometry.uy[p], geometry.uz[p]};
        const double sdot = slot.x_dot[local];
        const double* udot = workspace.u_dot.data() + 3 * row;
        const double row4[4] = {s, s * u[0], s * u[1], s * u[2]};
        const double row_dot[4] = {sdot, sdot * u[0] + s * udot[0],
                                   sdot * u[1] + s * udot[1],
                                   sdot * u[2] + s * udot[2]};
        const double* tbar = tbar_frame + geometry.center[p] * m1_ * 4;
        const double* tbardot = tbardot_frame + geometry.center[p] * m1_ * 4;
        double* gbardot = slot.out_bar_dot.data() + local * m1_;
        for (std::size_t m = 0; m < m1_; ++m) {
          double acc = 0.0;
          for (std::size_t c = 0; c < 4; ++c) {
            acc += tbardot[m * 4 + c] * row4[c] + tbar[m * 4 + c] * row_dot[c];
          }
          gbardot[m] = nu * acc;
        }
      }
    }
    const std::span<double> grad_segment = grad.subspan(
        embed_param_offset_[net], model.embedding_net(net).num_params());
    nn::mlp_vjp_tangent_batch(model.embedding_net(net), slot.x, slot.x_dot,
                              total, slot.cache, slot.out_bar_dot, {},
                              grad_segment);
  }
}

md::ForceEnergy FastGraph::energy_forces(const FrameGeometry& geometry,
                                         FastWorkspace& workspace) const {
  const FrameGeometry* frame = &geometry;
  primal_pass(std::span<const FrameGeometry* const>(&frame, 1), workspace,
              /*training=*/false);
  md::ForceEnergy out;
  out.energy = workspace.energies[0];
  out.forces.resize(geometry.num_atoms);
  for (std::size_t i = 0; i < geometry.num_atoms; ++i) {
    for (std::size_t k = 0; k < 3; ++k) {
      out.forces[i][k] = -workspace.coord_bar[3 * i + k];
    }
  }
  return out;
}

double FastGraph::loss_and_grad(const FrameGeometry& geometry, double energy_ref,
                                std::span<const md::Vec3> forces_ref,
                                const LossWeights& weights,
                                FastWorkspace& workspace,
                                std::span<double> grad) const {
  const FrameTarget target{&geometry, energy_ref, forces_ref};
  double loss = 0.0;
  loss_and_grad_fused(std::span<const FrameTarget>(&target, 1), weights,
                      workspace, grad, std::span<double>(&loss, 1));
  return loss;
}

void FastGraph::loss_and_grad_fused(std::span<const FrameTarget> frames,
                                    const LossWeights& weights,
                                    FastWorkspace& workspace,
                                    std::span<double> grad,
                                    std::span<double> losses) const {
  const std::size_t num_frames = frames.size();
  const std::size_t n = model_->num_atoms();
  if (num_frames == 0) {
    throw util::ValueError("fast_graph: empty fused frame list");
  }
  if (grad.size() != model_->num_params()) {
    throw util::ValueError("fast_graph: grad span size mismatch");
  }
  if (losses.size() != num_frames) {
    throw util::ValueError("fast_graph: losses span size mismatch");
  }
  workspace.frame_ptrs.resize(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f) {
    if (frames[f].forces_ref.size() != n) {
      throw util::ValueError("fast_graph: reference force count mismatch");
    }
    workspace.frame_ptrs[f] = frames[f].geometry;
  }
  const std::span<const FrameGeometry* const> geometries(workspace.frame_ptrs);

  primal_pass(geometries, workspace, /*training=*/true);

  // Per frame: the force residual F_pred - F_ref is both the force part of
  // the loss and, scaled by -f_coef, the coordinate tangent direction of the
  // combined second-order pass.  The energy part seeds the output
  // tangent-adjoints (e_coef), so one tangent pass accumulates the whole
  // gradient dL/dtheta = e_coef dE/dtheta - f_coef grad_theta(residual .
  // dE/dx) for every fused frame at once.
  const double inv_n = 1.0 / static_cast<double>(n);
  const double inv_3n = 1.0 / (3.0 * static_cast<double>(n));
  const double f_coef = 2.0 * weights.pref_f * inv_3n;
  workspace.lambda.resize(num_frames * 3 * n);
  workspace.e_coef.resize(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f) {
    const std::span<const md::Vec3> forces_ref = frames[f].forces_ref;
    const double* coord_bar = workspace.coord_bar.data() + f * 3 * n;
    double* lambda = workspace.lambda.data() + f * 3 * n;
    double force_ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < 3; ++k) {
        const double residual = -coord_bar[3 * i + k] - forces_ref[i][k];
        lambda[3 * i + k] = -f_coef * residual;
        force_ss += residual * residual;
      }
    }
    const double de = (workspace.energies[f] - frames[f].energy_ref) * inv_n;
    losses[f] = weights.pref_e * de * de + weights.pref_f * force_ss * inv_3n;
    workspace.e_coef[f] = 2.0 * weights.pref_e * de * inv_n;
  }

  std::fill(grad.begin(), grad.end(), 0.0);
  tangent_pass(geometries, workspace, grad);
}

}  // namespace dpho::dp
