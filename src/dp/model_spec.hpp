// The architecture of a DeepPot-SE potential, separated from training policy.
//
// A trained model is fully described by its descriptor and fitting-net
// hyperparameters (plus learned weights); learning rates, loss prefactors and
// step budgets are training-time concerns that have no business travelling
// with a servable potential.  ModelSpec is that architecture slice -- the one
// struct every construction path funnels through:
//
//   * genome      -> core::HyperParams::apply_to -> TrainInput -> from_train_input
//   * input.json  -> from_json (accepts the DeePMD "model" wrapper)
//   * checkpoint  -> from_json (the "spec" block of model.json, or the legacy
//                    full-TrainInput "config" block)
//   * archive     -> dp::ModelArchive entries store exactly this block
//
// dp_train, the real-training evaluator and the dp_serve loader all used to
// carry descriptor/fitting fields through ad-hoc constructor plumbing; they
// now build a ModelSpec and hand it to DeepPotModel.
#pragma once

#include <string>

#include "dp/config.hpp"
#include "util/json.hpp"

namespace dpho::dp {

struct ModelSpec {
  DescriptorConfig descriptor;
  FittingConfig fitting;

  /// The architecture slice of a full training input.
  static ModelSpec from_train_input(const TrainInput& input);

  /// Parses any of the shapes listed above: a bare spec object
  /// ({"descriptor": ..., "fitting": ...}), a DeePMD input.json
  /// ({"model": {"descriptor": ..., "fitting_net": ...}}), or the object
  /// those wrappers contain.  Missing fields keep their defaults; malformed
  /// values throw util::ParseError/ValueError.  The result is validated.
  static ModelSpec from_json(const util::Json& json);

  /// Canonical serialization: {"descriptor": {...}, "fitting": {...}} with
  /// the same field names input.json uses (round-trips through from_json).
  util::Json to_json() const;

  /// Architecture invariants (rcut ordering, axis_neuron bounds, positive
  /// sel and widths); throws util::ValueError on violation.
  void validate() const;

  /// Embedding output width M1 (the last descriptor layer).
  std::size_t m1() const { return descriptor.neuron.back(); }
  /// Axis width M2.
  std::size_t m2() const { return descriptor.axis_neuron; }

  /// One-line architecture summary for logs and catalogs.
  std::string describe() const;

  bool operator==(const ModelSpec&) const = default;
};

}  // namespace dpho::dp
