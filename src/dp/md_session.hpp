// Persistent NNP evaluation session: the zero-allocation MD hot path over a
// trained DeepPot-SE model.
//
// Potential::evaluate() rebuilds topology and geometry from scratch every
// call -- right for scattered training frames, wasteful for MD where step
// t+1's neighborhood is step t's plus a skin.  MdSession keeps a Verlet-skin
// candidate skeleton and all kernel workspace alive across steps:
//
//   * topology (a md::VerletList at rcut + skin) is rebuilt only on skin
//     triggers; between rebuilds each step refreshes r/s/ds_dr/unit vectors
//     in place from the stale pair identities;
//   * the force kernel is the same math as dp::FastGraph's primal pass
//     (embedding forward -> T contraction -> descriptor -> fitting forward/
//     reverse -> embedding reverse + force assembly), restructured over
//     contiguous center-atom chunks so it parallelizes over a ThreadPool;
//   * embedding and fitting nets run in fixed-size recompute tiles, so the
//     MlpBatchCache footprint is tile-bounded instead of growing with the
//     pair count (131k-atom boxes have ~10M candidate pairs).
//
// Determinism contract (repo-wide): the chunk partition and all loop orders
// are pure functions of (model, options, N) -- never of the thread count.
// Each chunk scatters force adjoints into its own full-3N buffer; buffers
// are combined serially in chunk order.  Candidate rows are sorted (center,
// neighbor id) ascending, so a stale-skin walk visits pairs in exactly the
// order a fresh rebuild would: trajectories are bit-identical across thread
// counts AND across skin settings.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dp/model.hpp"
#include "md/box.hpp"
#include "md/neighbor.hpp"
#include "md/session.hpp"
#include "md/system.hpp"
#include "nn/mlp_kernels.hpp"

namespace dpho::dp {

/// md::PotentialSession over a DeepPot-SE model.  Bound to the model's atom
/// count/types and, after the first compute(), to one box length.
class MdSession final : public md::PotentialSession {
 public:
  /// Shares ownership of `model`; `options.pool` (if any) is borrowed and
  /// must outlive the session.
  explicit MdSession(std::shared_ptr<const DeepPotModel> model,
                     const md::SessionOptions& options = {});

  double compute(const md::SystemState& state,
                 std::span<md::Vec3> forces) override;
  double cutoff() const override;
  double skin() const override { return skin_; }
  std::size_t steps() const override { return steps_; }
  std::size_t neighbor_rebuilds() const override;

  std::size_t num_chunks() const { return num_chunks_; }
  /// Live (r < rcut) pairs of the last compute(), summed over chunks.
  std::size_t last_live_pairs() const { return last_live_pairs_; }

 private:
  static constexpr std::size_t kNets = md::kNumSpecies * md::kNumSpecies;
  /// Rows per recompute tile for the embedding and fitting nets: bounds the
  /// per-chunk MlpBatchCache footprint independently of the pair count.
  static constexpr std::size_t kTileRows = 4096;

  struct Chunk {
    // Live pair geometry (net-major, refreshed in place each step).  Arrays
    // are sized to the candidate count at skeleton rebuilds; net_off tracks
    // the live prefix actually filled this step.
    std::vector<std::uint32_t> center, j;
    std::vector<double> r, s, ds_dr, ux, uy, uz;
    std::array<std::uint32_t, kNets + 1> net_off{};

    // Per-atom T blocks of this chunk's atoms (chunk-local, m1 x 4 each).
    std::vector<double> t, t_bar;

    // Fitting batches: chunk atoms grouped by species, ascending atom order.
    struct FitSlot {
      std::vector<double> x, x_bar;  // rows x (m1 * m2)
    };
    std::array<FitSlot, md::kNumSpecies> fit;

    // Tile workspace (shared by embedding and fitting sweeps).
    std::vector<double> tile_x, tile_x_bar, tile_out_bar, tile_ones;
    nn::MlpBatchCache tile_cache;

    // Full-3N coordinate adjoints from this chunk's centers.
    std::vector<double> coord_bar;
    double energy = 0.0;
    std::size_t live_pairs = 0;
  };

  void initialize(const md::SystemState& state);
  void rebuild_skeleton(const md::NeighborList& list);
  void refresh_chunk(std::size_t c, const md::SystemState& state);
  void eval_chunk(std::size_t c, const md::SystemState& state);

  std::shared_ptr<const DeepPotModel> model_;
  md::SessionOptions options_;
  double skin_ = 0.0;
  md::Box box_{1.0};
  std::size_t num_atoms_ = 0;
  bool initialized_ = false;
  std::optional<md::VerletList> verlet_;
  std::size_t seen_rebuilds_ = 0;
  std::size_t steps_ = 0;
  std::size_t last_live_pairs_ = 0;

  std::size_t m1_ = 0;
  std::size_t m2_ = 0;

  // Fixed chunk partition and per-chunk species grouping (functions of the
  // model and options only).
  std::size_t num_chunks_ = 1;
  std::vector<std::size_t> chunk_begin_;
  std::vector<Chunk> chunks_;
  // Per chunk: chunk-local atom ids grouped by species (ascending), offsets,
  // and the chunk-local atom -> batch-row map.
  std::vector<std::vector<std::uint32_t>> species_atoms_;
  std::vector<std::array<std::uint32_t, md::kNumSpecies + 1>> species_off_;
  std::vector<std::vector<std::uint32_t>> atom_slot_;

  // Candidate skeleton: per (chunk, net) buckets of packed (center << 32 | j)
  // pairs, each bucket sorted ascending.  Rebuilt on Verlet triggers.
  std::vector<std::size_t> cand_off_;  // num_chunks_ * kNets + 1
  std::vector<std::size_t> cand_cursor_;
  std::vector<std::uint64_t> cand_;
};

}  // namespace dpho::dp
