#include "dp/trainer.hpp"

#include <cmath>

#include "dp/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dpho::dp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-frame squared errors of a prediction.
struct FrameErrors {
  double energy_sq_per_atom = 0.0;  // (dE/N)^2
  double force_sq = 0.0;            // mean over 3N components of dF^2
};

FrameErrors frame_errors(const DeepPotModel& model, const md::Frame& frame) {
  const md::ForceEnergy prediction = model.energy_forces(frame);
  const auto n = static_cast<double>(frame.positions.size());
  FrameErrors errors;
  const double de = (prediction.energy - frame.energy) / n;
  errors.energy_sq_per_atom = de * de;
  double ss = 0.0;
  for (std::size_t a = 0; a < frame.forces.size(); ++a) {
    for (std::size_t k = 0; k < 3; ++k) {
      const double df = prediction.forces[a][k] - frame.forces[a][k];
      ss += df * df;
    }
  }
  errors.force_sq = ss / (3.0 * n);
  return errors;
}

}  // namespace

Trainer::Trainer(const TrainInput& config, const md::FrameDataset& train,
                 const md::FrameDataset& validation, TrainerOptions options)
    : config_(config),
      train_data_(train),
      validation_data_(validation),
      options_(options),
      model_(config, train.types(), train.mean_energy_per_atom(),
             util::hash_combine(config.training.seed, 0xDEE9)) {
  if (train.empty()) throw util::ValueError("trainer: empty training set");
  if (validation.empty()) throw util::ValueError("trainer: empty validation set");
}

std::pair<double, double> Trainer::validation_rmse() const {
  const std::size_t count =
      std::min(options_.max_validation_frames, validation_data_.size());
  double sum_e = 0.0;
  double sum_f = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const FrameErrors errors = frame_errors(model_, validation_data_.frame(i));
    sum_e += errors.energy_sq_per_atom;
    sum_f += errors.force_sq;
  }
  const auto denom = static_cast<double>(count);
  return {std::sqrt(sum_e / denom), std::sqrt(sum_f / denom)};
}

TrainResult Trainer::train() {
  const auto start_time = Clock::now();
  const std::size_t total_steps = config_.training.numb_steps;
  const nn::ExponentialDecay schedule(config_.scaled_start_lr(),
                                      config_.learning_rate.stop_lr, total_steps,
                                      config_.learning_rate.decay_steps);
  const DeepmdLoss loss(config_.loss, schedule);

  std::vector<double> params = model_.gather_params();
  nn::Adam optimizer(params.size());
  std::vector<double> grad(params.size(), 0.0);
  util::Rng rng(util::hash_combine(config_.training.seed, 0xBA7C));

  TrainResult result;
  ad::Tape tape;
  const auto record_row = [&](std::size_t step) {
    const auto [e_val, f_val] = validation_rmse();
    // Training metrics from the first training frame (cheap proxy, the same
    // role DeePMD's rmse_*_trn columns play).
    const FrameErrors trn = frame_errors(model_, train_data_.frame(0));
    result.lcurve.add(LcurveRow{step, e_val, std::sqrt(trn.energy_sq_per_atom), f_val,
                                std::sqrt(trn.force_sq), schedule.lr(step)});
  };

  for (std::size_t step = 0; step < total_steps; ++step) {
    if (options_.wall_limit_seconds &&
        seconds_since(start_time) > *options_.wall_limit_seconds) {
      throw util::TimeoutError("training exceeded wall budget at step " +
                               std::to_string(step));
    }
    const LossWeights weights = loss.weights_at(step);
    std::fill(grad.begin(), grad.end(), 0.0);
    double batch_loss = 0.0;
    for (std::size_t b = 0; b < config_.training.batch_size; ++b) {
      const std::size_t frame_index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(train_data_.size()) - 1));
      const md::Frame& frame = train_data_.frame(frame_index);
      tape.reset();
      const DeepPotModel::FrameGraph graph = model_.build_graph(tape, frame);
      const ad::Var frame_loss =
          loss.build(tape, graph.energy, frame.energy, graph.forces, frame.forces,
                     frame.positions.size(), weights);
      batch_loss += frame_loss.value();
      const std::vector<ad::Var> dloss = tape.gradient(frame_loss, graph.params);
      const double inv_batch = 1.0 / static_cast<double>(config_.training.batch_size);
      for (std::size_t p = 0; p < grad.size(); ++p) {
        grad[p] += dloss[p].value() * inv_batch;
      }
    }
    if (!std::isfinite(batch_loss)) {
      throw util::ValueError("training diverged: non-finite loss at step " +
                             std::to_string(step));
    }
    optimizer.step(params, grad, schedule.lr(step));
    model_.scatter_params(params);
    if (step % config_.training.disp_freq == 0) record_row(step);
    result.steps_completed = step + 1;
  }
  record_row(total_steps);
  const auto [e_val, f_val] = validation_rmse();
  result.rmse_e_val = e_val;
  result.rmse_f_val = f_val;
  result.wall_seconds = seconds_since(start_time);
  return result;
}

}  // namespace dpho::dp
