#include "dp/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "dp/loss.hpp"
#include "hpc/parallel.hpp"
#include "hpc/thread_pool.hpp"
#include "nn/optimizer.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dpho::dp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-frame squared errors of a prediction.
struct FrameErrors {
  double energy_sq_per_atom = 0.0;  // (dE/N)^2
  double force_sq = 0.0;            // mean over 3N components of dF^2
};

FrameErrors frame_errors(const DeepPotModel& model, const Potential& potential,
                         const md::Frame& frame, const NeighborTopology& topology,
                         BackwardMode mode) {
  // Validation predictions come from the same engine the training uses, so a
  // tape-mode run never mixes engines.  The analytic branch goes through the
  // shared Potential entry point (the exact kernels dp_serve and MD run).
  const md::ForceEnergy prediction = mode == BackwardMode::kTape
                                         ? model.energy_forces_tape(frame, topology)
                                         : potential.evaluate(frame, topology);
  const auto n = static_cast<double>(frame.positions.size());
  FrameErrors errors;
  const double de = (prediction.energy - frame.energy) / n;
  errors.energy_sq_per_atom = de * de;
  double ss = 0.0;
  for (std::size_t a = 0; a < frame.forces.size(); ++a) {
    for (std::size_t k = 0; k < 3; ++k) {
      const double df = prediction.forces[a][k] - frame.forces[a][k];
      ss += df * df;
    }
  }
  errors.force_sq = ss / (3.0 * n);
  return errors;
}

/// One frame's contribution to a training step: loss value plus raw
/// parameter-gradient values, computed on a worker and reduced in frame
/// order by the caller.
struct FrameContribution {
  double loss = 0.0;
  std::vector<double> grad;
};

/// Worker-local tape, reset per frame; reuse keeps node storage warm across
/// the thousands of graphs a training builds.
ad::Tape& worker_tape() {
  static thread_local ad::Tape tape;
  return tape;
}

}  // namespace

std::string to_string(BackwardMode mode) {
  return mode == BackwardMode::kTape ? "tape" : "analytic";
}

BackwardMode parse_backward_mode(std::string_view text) {
  if (text == "tape") return BackwardMode::kTape;
  if (text == "analytic") return BackwardMode::kAnalytic;
  throw util::ValueError("unknown backward mode '" + std::string(text) +
                         "' (expected tape|analytic)");
}

Trainer::Trainer(const TrainInput& config, const md::FrameDataset& train,
                 const md::FrameDataset& validation, TrainerOptions options)
    : config_(config),
      train_data_(train),
      validation_data_(validation),
      options_(options),
      model_(config, train.types(), train.mean_energy_per_atom(),
             util::hash_combine(config.training.seed, 0xDEE9)),
      fast_graph_(model_),
      potential_(Potential::borrow(model_)) {
  if (train.empty()) throw util::ValueError("trainer: empty training set");
  if (validation.empty()) throw util::ValueError("trainer: empty validation set");
}

Trainer::~Trainer() = default;

hpc::ThreadPool* Trainer::gradient_pool() {
  if (options_.pool != nullptr) return options_.pool;
  if (options_.num_threads <= 1) return nullptr;
  if (!owned_pool_) owned_pool_ = std::make_unique<hpc::ThreadPool>(options_.num_threads);
  return owned_pool_.get();
}

std::pair<double, double> Trainer::validation_rmse() const {
  obs::ScopedTimer timer(obs::metrics(), "trainer.validation_seconds");
  const std::size_t count =
      std::min(options_.max_validation_frames, validation_data_.size());
  // Map frames to errors concurrently; accumulate in frame order so the sums
  // match the serial path bit for bit.
  const std::vector<FrameErrors> errors = hpc::parallel_map<FrameErrors>(
      pool_, count, [&](std::size_t i) {
        return frame_errors(model_, potential_, validation_data_.frame(i),
                            validation_topology_.at(i), options_.backward_mode);
      });
  double sum_e = 0.0;
  double sum_f = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    sum_e += errors[i].energy_sq_per_atom;
    sum_f += errors[i].force_sq;
  }
  const auto denom = static_cast<double>(count);
  return {std::sqrt(sum_e / denom), std::sqrt(sum_f / denom)};
}

TrainResult Trainer::train() {
  const auto start_time = Clock::now();
  obs::metrics().counter("trainer.trainings_total").add(1);
  // Records on every exit path, including the wall-limit throw below.
  obs::ScopedTimer wall_timer(obs::metrics(), "trainer.train_wall_seconds");
  obs::Histogram& grad_seconds = obs::metrics().histogram(
      "trainer.grad_seconds", obs::BucketLayout::timing_seconds());
  obs::Counter& steps_total = obs::metrics().counter("trainer.steps_total");
  pool_ = gradient_pool();
  // Frames are static for the whole training: build each topology once
  // (in parallel) instead of once per step.
  train_topology_.warm(model_, train_data_, train_data_.size(), pool_);
  validation_topology_.warm(
      model_, validation_data_,
      std::min(options_.max_validation_frames, validation_data_.size()), pool_);

  const std::size_t total_steps = config_.training.numb_steps;
  const nn::ExponentialDecay schedule(config_.scaled_start_lr(),
                                      config_.learning_rate.stop_lr, total_steps,
                                      config_.learning_rate.decay_steps);
  const DeepmdLoss loss(config_.loss, schedule);

  std::vector<double> params = model_.gather_params();
  nn::Adam optimizer(params.size());
  std::vector<double> grad(params.size(), 0.0);
  util::Rng rng(util::hash_combine(config_.training.seed, 0xBA7C));

  TrainResult result;
  const auto record_row = [&](std::size_t step) {
    const auto [e_val, f_val] = validation_rmse();
    // Training metrics from the first training frame (cheap proxy, the same
    // role DeePMD's rmse_*_trn columns play).
    const FrameErrors trn = frame_errors(model_, potential_, train_data_.frame(0),
                                         train_topology_.at(0),
                                         options_.backward_mode);
    result.lcurve.add(LcurveRow{step, e_val, std::sqrt(trn.energy_sq_per_atom), f_val,
                                std::sqrt(trn.force_sq), schedule.lr(step)});
    obs::events().emit("trainer.row",
                       {{"step", static_cast<std::int64_t>(step)},
                        {"rmse_e_val", e_val},
                        {"rmse_f_val", f_val},
                        {"lr", schedule.lr(step)}});
  };

  const std::size_t batch_size = config_.training.batch_size;
  std::vector<std::size_t> batch_frames(batch_size);
  // The analytic path fuses frames: the batch is split into fixed groups of
  // fuse_frames consecutive batch slots, each group running one multi-frame
  // kernel pass into its own preallocated gradient buffer.  Grouping is a
  // function of batch index only, so it is thread-count independent.
  const std::size_t fuse =
      std::clamp<std::size_t>(options_.fuse_frames, 1, batch_size);
  const std::size_t num_groups = (batch_size + fuse - 1) / fuse;
  if (options_.backward_mode == BackwardMode::kAnalytic) {
    frame_targets_.resize(batch_size);
    frame_losses_.resize(batch_size);
    group_grads_.resize(num_groups);
    for (std::vector<double>& g : group_grads_) g.resize(params.size());
  }
  for (std::size_t step = 0; step < total_steps; ++step) {
    if (options_.wall_limit_seconds &&
        seconds_since(start_time) > *options_.wall_limit_seconds) {
      throw util::TimeoutError("training exceeded wall budget at step " +
                               std::to_string(step));
    }
    const LossWeights weights = loss.weights_at(step);
    // Draw the whole batch's frame indices up front -- the same RNG stream
    // the serial loop consumed per frame -- so gradient workers never touch
    // the RNG and the sampled frames are thread-count independent.
    for (std::size_t b = 0; b < batch_size; ++b) {
      batch_frames[b] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(train_data_.size()) - 1));
    }

    // Data-parallel forward/backward: the analytic engine runs one fused
    // multi-frame kernel pass per group in a per-worker arena; tape mode
    // builds each frame graph on its worker's tape (the slow reference
    // oracle).  Either way the reduction below walks a fixed order, so the
    // lcurve is bit-identical at any thread count.
    obs::ScopedTimer grad_timer(grad_seconds);
    std::fill(grad.begin(), grad.end(), 0.0);
    double batch_loss = 0.0;
    const double inv_batch = 1.0 / static_cast<double>(batch_size);
    if (options_.backward_mode == BackwardMode::kAnalytic) {
      for (std::size_t b = 0; b < batch_size; ++b) {
        const md::Frame& frame = train_data_.frames()[batch_frames[b]];
        frame_targets_[b] =
            FrameTarget{&train_topology_.geometry_at(batch_frames[b]),
                        frame.energy, frame.forces};
      }
      const auto run_group = [&](std::size_t g) {
        const std::size_t begin = g * fuse;
        const std::size_t count = std::min(fuse, batch_size - begin);
        fast_graph_.loss_and_grad_fused(
            std::span<const FrameTarget>(frame_targets_).subspan(begin, count),
            weights, workspaces_.local(), group_grads_[g],
            std::span<double>(frame_losses_).subspan(begin, count));
      };
      if (pool_ == nullptr || pool_->size() <= 1 || num_groups <= 1) {
        for (std::size_t g = 0; g < num_groups; ++g) run_group(g);
      } else {
        pool_->parallel_for(num_groups, run_group);
      }
      grad_timer.stop();
      for (std::size_t b = 0; b < batch_size; ++b) batch_loss += frame_losses_[b];
      for (std::size_t g = 0; g < num_groups; ++g) {
        for (std::size_t p = 0; p < grad.size(); ++p) {
          grad[p] += group_grads_[g][p] * inv_batch;
        }
      }
    } else {
      const std::vector<FrameContribution> contributions =
          hpc::parallel_map<FrameContribution>(pool_, batch_size, [&](std::size_t b) {
            const md::Frame& frame = train_data_.frames()[batch_frames[b]];
            FrameContribution contribution;
            ad::Tape& tape = worker_tape();
            tape.reset();
            const DeepPotModel::FrameGraph graph =
                model_.build_graph(tape, frame, train_topology_.at(batch_frames[b]));
            const ad::Var frame_loss =
                loss.build(tape, graph.energy, frame.energy, graph.forces,
                           frame.forces, frame.positions.size(), weights);
            const std::vector<ad::Var> dloss = tape.gradient(frame_loss, graph.params);
            contribution.loss = frame_loss.value();
            contribution.grad.resize(dloss.size());
            for (std::size_t p = 0; p < dloss.size(); ++p) {
              contribution.grad[p] = dloss[p].value();
            }
            return contribution;
          });
      grad_timer.stop();
      for (std::size_t b = 0; b < batch_size; ++b) {
        batch_loss += contributions[b].loss;
        for (std::size_t p = 0; p < grad.size(); ++p) {
          grad[p] += contributions[b].grad[p] * inv_batch;
        }
      }
    }
    if (!std::isfinite(batch_loss)) {
      throw util::ValueError("training diverged: non-finite loss at step " +
                             std::to_string(step));
    }
    optimizer.step(params, grad, schedule.lr(step));
    model_.scatter_params(params);
    if (step % config_.training.disp_freq == 0) record_row(step);
    steps_total.add(1);
    result.steps_completed = step + 1;
  }
  record_row(total_steps);
  const auto [e_val, f_val] = validation_rmse();
  result.rmse_e_val = e_val;
  result.rmse_f_val = f_val;
  result.wall_seconds = seconds_since(start_time);
  return result;
}

}  // namespace dpho::dp
