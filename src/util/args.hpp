// Minimal command-line flag parser for the tools and examples.
//
// Supports "--name value", "--name=value", bare "--flag" booleans, and
// positional arguments, with typed accessors and a generated usage string.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dpho::util {

class ArgParser {
 public:
  /// Declares a flag; `help` feeds usage(). Declare before parse().
  ArgParser& add_flag(const std::string& name, const std::string& help,
                      bool takes_value = true);

  /// Parses argv; throws ParseError on unknown flags or missing values.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  double get(const std::string& name, double fallback) const;
  std::int64_t get(const std::string& name, std::int64_t fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// "usage: <program> [--flag ...]" plus one line per declared flag.
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    bool takes_value = true;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dpho::util
