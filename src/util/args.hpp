// Minimal command-line flag parser for the tools and examples.
//
// Supports "--name value", "--name=value", bare "--flag" booleans, and
// positional arguments, with typed accessors and a generated usage string.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dpho::util {

class ArgParser {
 public:
  /// Declares a flag; `help` feeds usage(). Declare before parse().
  ArgParser& add_flag(const std::string& name, const std::string& help,
                      bool takes_value = true);

  /// Parses argv; throws ParseError on unknown flags or missing values.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  double get(const std::string& name, double fallback) const;
  std::int64_t get(const std::string& name, std::int64_t fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// "usage: <program> [--flag ...]" plus one line per declared flag.
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    bool takes_value = true;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The execution-backend flags every heavy tool shares (dpho_hpo, dp_train,
/// dp_serve): worker threads, metrics export, and -- for tools that can farm
/// work out to subprocess clusters -- the cluster selection trio.  One
/// declaration + one parser means one set of flag names, defaults and error
/// messages across the suite; each tool maps the result onto its own config
/// struct (core::EvalBackendConfig, hpc::ClusterBackendConfig, serve options)
/// since util cannot depend on those layers.
struct BackendFlags {
  std::string cluster = "sim";       // sim | process
  std::size_t workers = 0;           // 0 = derived from the node count
  std::string worker_binary;         // empty = resolve next to the executable
  std::size_t threads = 2;           // worker threads for payload evaluation
  std::string metrics_out;           // JSONL event timeline; empty = disabled
  std::size_t metrics_interval = 0;  // snapshot cadence; 0 = off
};

/// Which of the shared flags a tool exposes, and its defaults.
struct BackendFlagOptions {
  /// Include --cluster/--workers/--worker-binary (tools that can run on a
  /// process cluster).  Tools without a cluster backend leave this false and
  /// get only --threads/--metrics-out/--metrics-interval.
  bool cluster = false;
  std::size_t default_threads = 2;
};

/// Declares the shared backend flags on `parser`.
void add_backend_flags(ArgParser& parser, const BackendFlagOptions& options = {});

/// Reads the shared backend flags back after parse(), validating values with
/// tool-independent error messages.  Throws ParseError on a bad cluster name
/// or negative count.
BackendFlags parse_backend_flags(const ArgParser& parser,
                                 const BackendFlagOptions& options = {});

}  // namespace dpho::util
