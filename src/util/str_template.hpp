// Python string.Template-style substitution.
//
// The evaluation workflow reads a JSON-formatted input template and performs
// variable substitution with decoded gene values (paper section 2.2.4 step 3b),
// mirroring Python's string.Template: `$name`, `${name}`, and `$$` escape.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dpho::util {

/// A parsed substitution template.
class StrTemplate {
 public:
  explicit StrTemplate(std::string text) : text_(std::move(text)) {}

  /// Substitutes every placeholder; throws ParseError when a placeholder has
  /// no mapping (like Template.substitute).
  std::string substitute(const std::map<std::string, std::string>& mapping) const;

  /// Substitutes known placeholders and leaves unknown ones untouched
  /// (like Template.safe_substitute).
  std::string safe_substitute(const std::map<std::string, std::string>& mapping) const;

  /// Placeholder identifiers appearing in the template, in order of first use.
  std::vector<std::string> placeholders() const;

 private:
  std::string render(const std::map<std::string, std::string>& mapping, bool strict) const;

  std::string text_;
};

}  // namespace dpho::util
