// Minimal JSON value type with parser and serializer.
//
// Used for DeePMD-style input.json configuration files (paper section 2.2.4)
// and for experiment result records.  Supports the JSON data model with
// doubles for all numbers; preserves object insertion order so emitted
// configuration files diff cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace dpho::util {

class Json;

using JsonArray = std::vector<Json>;

/// Order-preserving string->Json map (small, linear lookup is fine for
/// configuration-sized objects).
class JsonObject {
 public:
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;
  Json* find(const std::string& key);
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  bool operator==(const JsonObject&) const;

 private:
  std::vector<std::pair<std::string, Json>> items_;
};

/// A JSON value: null, bool, number (double), string, array or object.
class Json {
 public:
  using Value =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw ValueError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object element access; creates members (converting null to object).
  Json& operator[](const std::string& key);
  /// Const object lookup; throws ValueError when missing.
  const Json& at(const std::string& key) const;
  /// Object lookup with default.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;
  bool contains(const std::string& key) const;

  /// Serialize; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws ParseError on any malformed input.
  static Json parse(const std::string& text);

  bool operator==(const Json&) const = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Value value_;
};

}  // namespace dpho::util
