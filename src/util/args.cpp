#include "util/args.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace dpho::util {

ArgParser& ArgParser::add_flag(const std::string& name, const std::string& help,
                               bool takes_value) {
  if (name.rfind("--", 0) != 0) throw ValueError("flags must start with --");
  specs_[name] = Spec{help, takes_value};
  return *this;
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string name = token;
    std::optional<std::string> inline_value;
    const std::size_t equals = token.find('=');
    if (equals != std::string::npos) {
      name = token.substr(0, equals);
      inline_value = token.substr(equals + 1);
    }
    const auto spec = specs_.find(name);
    if (spec == specs_.end()) throw ParseError("unknown flag: " + name);
    if (!spec->second.takes_value) {
      if (inline_value) throw ParseError("flag takes no value: " + name);
      values_[name] = "1";
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) throw ParseError("missing value for " + name);
      values_[name] = argv[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const { return values_.contains(name); }

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto found = values_.find(name);
  return found == values_.end() ? fallback : found->second;
}

double ArgParser::get(const std::string& name, double fallback) const {
  const auto found = values_.find(name);
  if (found == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(found->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw ParseError("flag " + name + " expects a number, got " + found->second);
  }
  return value;
}

std::int64_t ArgParser::get(const std::string& name, std::int64_t fallback) const {
  const auto found = values_.find(name);
  if (found == values_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(found->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw ParseError("flag " + name + " expects an integer, got " + found->second);
  }
  return value;
}

std::string ArgParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program;
  for (const auto& [name, spec] : specs_) {
    out << " [" << name << (spec.takes_value ? " <value>" : "") << "]";
  }
  out << "\n";
  for (const auto& [name, spec] : specs_) {
    out << "  " << name << (spec.takes_value ? " <value>" : "") << "  " << spec.help
        << "\n";
  }
  return out.str();
}

}  // namespace dpho::util
