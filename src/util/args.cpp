#include "util/args.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace dpho::util {

ArgParser& ArgParser::add_flag(const std::string& name, const std::string& help,
                               bool takes_value) {
  if (name.rfind("--", 0) != 0) throw ValueError("flags must start with --");
  specs_[name] = Spec{help, takes_value};
  return *this;
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string name = token;
    std::optional<std::string> inline_value;
    const std::size_t equals = token.find('=');
    if (equals != std::string::npos) {
      name = token.substr(0, equals);
      inline_value = token.substr(equals + 1);
    }
    const auto spec = specs_.find(name);
    if (spec == specs_.end()) throw ParseError("unknown flag: " + name);
    if (!spec->second.takes_value) {
      if (inline_value) throw ParseError("flag takes no value: " + name);
      values_[name] = "1";
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) throw ParseError("missing value for " + name);
      values_[name] = argv[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const { return values_.contains(name); }

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto found = values_.find(name);
  return found == values_.end() ? fallback : found->second;
}

double ArgParser::get(const std::string& name, double fallback) const {
  const auto found = values_.find(name);
  if (found == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(found->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw ParseError("flag " + name + " expects a number, got " + found->second);
  }
  return value;
}

std::int64_t ArgParser::get(const std::string& name, std::int64_t fallback) const {
  const auto found = values_.find(name);
  if (found == values_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(found->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw ParseError("flag " + name + " expects an integer, got " + found->second);
  }
  return value;
}

void add_backend_flags(ArgParser& parser, const BackendFlagOptions& options) {
  if (options.cluster) {
    parser.add_flag("--cluster",
                    "evaluation backend: sim (default) or process (real workers)");
    parser.add_flag("--workers",
                    "process cluster: worker subprocesses, default 0 (= nodes)");
    parser.add_flag("--worker-binary",
                    "process cluster: dpho_worker path, default next to the tool");
  }
  parser.add_flag("--threads", "worker threads, default " +
                                   std::to_string(options.default_threads));
  parser.add_flag("--metrics-out",
                  "write the JSONL event timeline here (enables metrics export)");
  parser.add_flag("--metrics-interval",
                  "progress units between metrics snapshots, default 0 (off)");
}

namespace {

std::size_t count_flag(const ArgParser& parser, const std::string& name,
                       std::size_t fallback) {
  const std::int64_t value =
      parser.get(name, static_cast<std::int64_t>(fallback));
  if (value < 0) {
    throw ParseError("flag " + name + " expects a non-negative count, got " +
                     std::to_string(value));
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

BackendFlags parse_backend_flags(const ArgParser& parser,
                                 const BackendFlagOptions& options) {
  BackendFlags flags;
  flags.threads = options.default_threads;
  if (options.cluster) {
    flags.cluster = parser.get("--cluster", std::string("sim"));
    if (flags.cluster != "sim" && flags.cluster != "process") {
      throw ParseError("flag --cluster expects sim or process, got " +
                       flags.cluster);
    }
    flags.workers = count_flag(parser, "--workers", 0);
    flags.worker_binary = parser.get("--worker-binary", std::string());
  }
  flags.threads = count_flag(parser, "--threads", options.default_threads);
  flags.metrics_out = parser.get("--metrics-out", std::string());
  flags.metrics_interval = count_flag(parser, "--metrics-interval", 0);
  return flags;
}

std::string ArgParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program;
  for (const auto& [name, spec] : specs_) {
    out << " [" << name << (spec.takes_value ? " <value>" : "") << "]";
  }
  out << "\n";
  for (const auto& [name, spec] : specs_) {
    out << "  " << name << (spec.takes_value ? " <value>" : "") << "  " << spec.help
        << "\n";
  }
  return out.str();
}

}  // namespace dpho::util
