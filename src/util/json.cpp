#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace dpho::util {

Json& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Json{});
  return items_.back().second;
}

const Json* JsonObject::find(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* JsonObject::find(const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonObject::operator==(const JsonObject& other) const {
  return items_ == other.items_;
}

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  throw ValueError("json value is not a bool");
}

double Json::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  throw ValueError("json value is not a number");
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  const double rounded = std::nearbyint(d);
  if (std::abs(d - rounded) > 1e-9) throw ValueError("json number is not integral");
  return static_cast<std::int64_t>(rounded);
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  throw ValueError("json value is not a string");
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  throw ValueError("json value is not an array");
}

JsonArray& Json::as_array() {
  if (JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  throw ValueError("json value is not an array");
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  throw ValueError("json value is not an object");
}

JsonObject& Json::as_object() {
  if (JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  throw ValueError("json value is not an object");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  const Json* found = as_object().find(key);
  if (found == nullptr) throw ValueError("json object missing key: " + key);
  return *found;
}

double Json::number_or(const std::string& key, double fallback) const {
  if (!is_object()) return fallback;
  const Json* found = as_object().find(key);
  return (found != nullptr && found->is_number()) ? found->as_number() : fallback;
}

std::string Json::string_or(const std::string& key, const std::string& fallback) const {
  if (!is_object()) return fallback;
  const Json* found = as_object().find(key);
  return (found != nullptr && found->is_string()) ? found->as_string() : fallback;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void format_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null, mirroring Python's json with allow_nan
    // disabled semantics we actually want for robust round-trips.
    out += "null";
    return;
  }
  const double rounded = std::nearbyint(d);
  if (d == rounded && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to shortest representation that round-trips.
  for (int precision = 1; precision <= 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, d);
    if (std::strtod(shorter, nullptr) == d) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      object[key] = parse_value();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        break;
      }
      fail("expected ',' or '}' in object");
    }
    return Json(std::move(object));
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        break;
      }
      fail("expected ',' or ']' in array");
    }
    return Json(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode (basic multilingual plane only; surrogates passed raw).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number: " + token);
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    format_number(as_number(), out);
  } else if (is_string()) {
    escape_string(as_string(), out);
  } else if (is_array()) {
    const JsonArray& array = as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Json& item : array) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      item.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const JsonObject& object = as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      escape_string(key, out);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      value.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace dpho::util
