// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of dpho take an explicit 64-bit seed so that
// experiments ("Summit runs") are bit-for-bit reproducible.  The generator is
// xoshiro256++ seeded through splitmix64, which is fast, high quality, and
// trivially portable -- no dependence on the standard library's unspecified
// distribution algorithms for the distributions we implement ourselves.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dpho::util {

/// Complete serializable state of an Rng: restoring it resumes the stream
/// bit-for-bit (including the Box-Muller cache), which the checkpoint layer
/// relies on for crash-safe run resumption.
struct RngState {
  std::array<std::uint64_t, 4> state{};
  std::uint64_t seed = 0;          // retained so spawn() streams stay stable
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// xoshiro256++ engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// std::shuffle and friends.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Derive an independent child generator; stream `i` is decorrelated from
  /// stream `j` for i != j and from the parent.
  Rng spawn(std::uint64_t stream);

  /// Fisher-Yates shuffle of an index range [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Snapshot of the full generator state for checkpointing.
  RngState save_state() const;

  /// Resumes the stream exactly where `save_state()` captured it.
  void restore_state(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_ = 0;  // retained for spawn()
};

/// splitmix64 step; exposed for hashing genomes into per-evaluation seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless one-shot mix of a value (useful to hash several ids together).
std::uint64_t hash_mix(std::uint64_t value);

/// Combine two hashes into one (order-dependent).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

}  // namespace dpho::util
