#include "util/str_template.hpp"

#include <cctype>
#include <vector>

#include "util/error.hpp"

namespace dpho::util {

namespace {

bool is_identifier_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::string StrTemplate::render(const std::map<std::string, std::string>& mapping,
                                bool strict) const {
  std::string out;
  out.reserve(text_.size());
  for (std::size_t i = 0; i < text_.size();) {
    const char c = text_[i];
    if (c != '$') {
      out.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= text_.size()) {
      if (strict) throw ParseError("dangling '$' at end of template");
      out.push_back('$');
      break;
    }
    const char next = text_[i + 1];
    if (next == '$') {  // $$ -> literal $
      out.push_back('$');
      i += 2;
      continue;
    }
    std::string name;
    std::size_t consumed = 0;
    if (next == '{') {
      const std::size_t close = text_.find('}', i + 2);
      if (close == std::string::npos) {
        if (strict) throw ParseError("unterminated '${' placeholder");
        out.push_back('$');
        ++i;
        continue;
      }
      name = text_.substr(i + 2, close - (i + 2));
      consumed = close - i + 1;
    } else if (is_identifier_start(next)) {
      std::size_t end = i + 1;
      while (end < text_.size() && is_identifier_char(text_[end])) ++end;
      name = text_.substr(i + 1, end - (i + 1));
      consumed = end - i;
    } else {
      if (strict) throw ParseError("invalid placeholder after '$'");
      out.push_back('$');
      ++i;
      continue;
    }
    const auto found = mapping.find(name);
    if (found != mapping.end()) {
      out += found->second;
    } else if (strict) {
      throw ParseError("no substitution for placeholder '" + name + "'");
    } else {
      out += text_.substr(i, consumed);
    }
    i += consumed;
  }
  return out;
}

std::string StrTemplate::substitute(
    const std::map<std::string, std::string>& mapping) const {
  return render(mapping, /*strict=*/true);
}

std::string StrTemplate::safe_substitute(
    const std::map<std::string, std::string>& mapping) const {
  return render(mapping, /*strict=*/false);
}

std::vector<std::string> StrTemplate::placeholders() const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < text_.size();) {
    if (text_[i] != '$' || i + 1 >= text_.size()) {
      ++i;
      continue;
    }
    const char next = text_[i + 1];
    if (next == '$') {
      i += 2;
      continue;
    }
    std::string name;
    if (next == '{') {
      const std::size_t close = text_.find('}', i + 2);
      if (close == std::string::npos) break;
      name = text_.substr(i + 2, close - (i + 2));
      i = close + 1;
    } else if (is_identifier_start(next)) {
      std::size_t end = i + 1;
      while (end < text_.size() && is_identifier_char(text_[end])) ++end;
      name = text_.substr(i + 1, end - (i + 1));
      i = end;
    } else {
      ++i;
      continue;
    }
    bool seen = false;
    for (const auto& existing : names) {
      if (existing == name) {
        seen = true;
        break;
      }
    }
    if (!seen) names.push_back(name);
  }
  return names;
}

}  // namespace dpho::util
