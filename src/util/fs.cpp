#include "util/fs.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dpho::util {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& contents) {
  if (path.has_parent_path()) fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path.string());
  out << contents;
  if (!out) throw IoError("short write: " + path.string());
}

fs::path make_run_dir(const fs::path& base, const std::string& name) {
  const fs::path dir = base / name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw IoError("cannot create run dir " + dir.string() + ": " + ec.message());
  return dir;
}

namespace {
std::atomic<unsigned> g_tempdir_counter{0};
}

TempDir::TempDir(const std::string& prefix) {
  const unsigned id = g_tempdir_counter.fetch_add(1);
  path_ = fs::temp_directory_path() /
          (prefix + "-" + std::to_string(::getpid()) + "-" + std::to_string(id));
  fs::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; never throw from a destructor
}

}  // namespace dpho::util
