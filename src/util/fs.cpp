#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dpho::util {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& contents) {
  if (path.has_parent_path()) fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path.string());
  out << contents;
  if (!out) throw IoError("short write: " + path.string());
}

namespace {
std::atomic<unsigned> g_atomic_write_counter{0};
}

void atomic_write_file(const fs::path& path, const std::string& contents) {
  if (path.has_parent_path()) fs::create_directories(path.parent_path());
  const fs::path dir = path.has_parent_path() ? path.parent_path() : fs::path(".");
  const fs::path tmp =
      path.string() + ".tmp-" + std::to_string(::getpid()) + "-" +
      std::to_string(g_atomic_write_counter.fetch_add(1));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw IoError("cannot open temp file for writing: " + tmp.string());
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw IoError("short write: " + tmp.string());
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw IoError("fsync failed: " + tmp.string());
  }
  ::close(fd);

  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    throw IoError("atomic rename to " + path.string() + " failed: " + ec.message());
  }
  // Make the rename durable: fsync the containing directory.
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

fs::path make_run_dir(const fs::path& base, const std::string& name) {
  const fs::path dir = base / name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw IoError("cannot create run dir " + dir.string() + ": " + ec.message());
  return dir;
}

namespace {
std::atomic<unsigned> g_tempdir_counter{0};
}

TempDir::TempDir(const std::string& prefix) {
  const unsigned id = g_tempdir_counter.fetch_add(1);
  path_ = fs::temp_directory_path() /
          (prefix + "-" + std::to_string(::getpid()) + "-" + std::to_string(id));
  fs::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; never throw from a destructor
}

}  // namespace dpho::util
