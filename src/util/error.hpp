// Common exception hierarchy for the dpho library.
#pragma once

#include <stdexcept>
#include <string>

namespace dpho::util {

/// Base class for every error thrown by dpho code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input (bad JSON, bad template, bad config value).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A value violated a documented precondition.
class ValueError : public Error {
 public:
  explicit ValueError(const std::string& what) : Error("value error: " + what) {}
};

/// I/O failure (missing file, unwritable directory, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// A simulated or real evaluation exceeded its wall-clock budget.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error("timeout: " + what) {}
};

}  // namespace dpho::util
