// Small CSV/TSV reader and writer.
//
// Experiment results (per-generation populations, parallel-coordinates axes,
// lcurve-style training statistics) are exchanged as delimited text so that
// downstream plotting tools can consume them directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dpho::util {

/// Streaming writer that quotes fields when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delimiter = ',')
      : out_(out), delimiter_(delimiter) {}

  /// Writes one row; strings containing the delimiter, quotes or newlines are
  /// quoted per RFC 4180.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with round-trip precision.
  static std::string format(double value);

 private:
  std::ostream& out_;
  char delimiter_;
};

/// Whole-document reader (small files only).
class CsvReader {
 public:
  /// Parses delimited text into rows of fields, honouring RFC 4180 quoting.
  static std::vector<std::vector<std::string>> parse(const std::string& text,
                                                     char delimiter = ',');
};

}  // namespace dpho::util
