// Descriptive statistics used by the analysis and benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dpho::util {

/// Summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1), 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance, 0 for n < 2
double stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]; throws ValueError on empty input.
double quantile(std::span<const double> xs, double q);

/// Full summary; throws ValueError on empty input.
Summary summarize(std::span<const double> xs);

/// Pearson correlation; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fixed-bin 2-D histogram, used to print the Figure-1 style level plots.
class Histogram2d {
 public:
  Histogram2d(double x_lo, double x_hi, std::size_t x_bins, double y_lo, double y_hi,
              std::size_t y_bins);

  /// Adds a point; out-of-range points are counted in `overflow()`.
  void add(double x, double y);

  std::size_t at(std::size_t xi, std::size_t yi) const;
  std::size_t x_bins() const { return x_bins_; }
  std::size_t y_bins() const { return y_bins_; }
  std::size_t total() const { return total_; }
  std::size_t overflow() const { return overflow_; }

  /// Renders a coarse character-art level plot (highest density = '#').
  std::string render() const;

 private:
  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::size_t x_bins_, y_bins_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace dpho::util
