#include "util/uuid.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpho::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Uuid Uuid::random(Rng& rng) {
  Uuid id;
  for (std::size_t i = 0; i < 16; i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t b = 0; b < 8; ++b) {
      id.bytes_[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  id.bytes_[6] = static_cast<std::uint8_t>((id.bytes_[6] & 0x0f) | 0x40);  // version 4
  id.bytes_[8] = static_cast<std::uint8_t>((id.bytes_[8] & 0x3f) | 0x80);  // variant 1
  return id;
}

Uuid Uuid::parse(const std::string& text) {
  if (text.size() != 36) throw ParseError("uuid must be 36 chars: " + text);
  Uuid id;
  std::size_t byte = 0;
  for (std::size_t i = 0; i < text.size();) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (text[i] != '-') throw ParseError("uuid missing '-' at position " + std::to_string(i));
      ++i;
      continue;
    }
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) throw ParseError("uuid has non-hex digit: " + text);
    id.bytes_[byte++] = static_cast<std::uint8_t>((hi << 4) | lo);
    i += 2;
  }
  return id;
}

std::string Uuid::str() const {
  std::string out;
  out.reserve(36);
  for (std::size_t i = 0; i < 16; ++i) {
    if (i == 4 || i == 6 || i == 8 || i == 10) out.push_back('-');
    out.push_back(kHexDigits[bytes_[i] >> 4]);
    out.push_back(kHexDigits[bytes_[i] & 0x0f]);
  }
  return out;
}

bool Uuid::is_nil() const {
  for (auto b : bytes_) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace dpho::util
