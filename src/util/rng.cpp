#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dpho::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t value) {
  std::uint64_t s = value;
  return splitmix64(s);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  // 64-bit variant of boost::hash_combine.
  return a ^ (hash_mix(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits mapped to [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw ValueError("uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = 0;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw ValueError("categorical requires weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw ValueError("categorical weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) throw ValueError("categorical weights must not all be zero");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::spawn(std::uint64_t stream) {
  return Rng(hash_combine(hash_combine(seed_, 0x5bd1e995u), stream));
}

RngState Rng::save_state() const {
  RngState snapshot;
  snapshot.state = state_;
  snapshot.seed = seed_;
  snapshot.cached_normal = cached_normal_;
  snapshot.has_cached_normal = has_cached_normal_;
  return snapshot;
}

void Rng::restore_state(const RngState& state) {
  state_ = state.state;
  seed_ = state.seed;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace dpho::util
