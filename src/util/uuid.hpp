// RFC-4122 version-4 UUIDs.
//
// Each EA individual receives a UUID on creation; the evaluation workflow
// creates a per-individual run directory named after it (paper section 2.2.4).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace dpho::util {

class Rng;

/// 128-bit version-4 UUID.
class Uuid {
 public:
  /// The nil UUID (all zero).
  Uuid() = default;

  /// Draws a random version-4 UUID from the given generator.
  static Uuid random(Rng& rng);

  /// Parses the canonical 8-4-4-4-12 hex form; throws ParseError otherwise.
  static Uuid parse(const std::string& text);

  /// Canonical lowercase 8-4-4-4-12 representation.
  std::string str() const;

  bool is_nil() const;

  friend bool operator==(const Uuid&, const Uuid&) = default;
  friend auto operator<=>(const Uuid&, const Uuid&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

}  // namespace dpho::util
