#include "util/csv.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace dpho::util {

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const std::string& field : fields) {
    if (!first) out_ << delimiter_;
    first = false;
    const bool needs_quotes = field.find_first_of("\"\r\n") != std::string::npos ||
                              field.find(delimiter_) != std::string::npos;
    if (!needs_quotes) {
      out_ << field;
      continue;
    }
    out_ << '"';
    for (char c : field) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  }
  out_ << '\n';
}

std::string CsvWriter::format(double value) {
  for (int precision = 1; precision <= 17; ++precision) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::vector<std::vector<std::string>> CsvReader::parse(const std::string& text,
                                                       char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(row);
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_started = true;
    } else if (c == delimiter) {
      end_field();
      field_started = true;  // the next field exists even if empty
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      field.push_back(c);
      field_started = true;
    }
  }
  end_row();
  return rows;
}

}  // namespace dpho::util
