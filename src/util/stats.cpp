#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace dpho::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw ValueError("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw ValueError("quantile q must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) throw ValueError("summarize of empty sample");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = quantile(xs, 0.5);
  s.q25 = quantile(xs, 0.25);
  s.q75 = quantile(xs, 0.75);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw ValueError("pearson requires equal-length samples");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram2d::Histogram2d(double x_lo, double x_hi, std::size_t x_bins, double y_lo,
                         double y_hi, std::size_t y_bins)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi), x_bins_(x_bins),
      y_bins_(y_bins), counts_(x_bins * y_bins, 0) {
  if (x_bins == 0 || y_bins == 0) throw ValueError("histogram needs at least one bin");
  if (!(x_lo < x_hi) || !(y_lo < y_hi)) throw ValueError("histogram bounds inverted");
}

void Histogram2d::add(double x, double y) {
  ++total_;
  if (x < x_lo_ || x >= x_hi_ || y < y_lo_ || y >= y_hi_) {
    ++overflow_;
    return;
  }
  const auto xi = static_cast<std::size_t>((x - x_lo_) / (x_hi_ - x_lo_) *
                                           static_cast<double>(x_bins_));
  const auto yi = static_cast<std::size_t>((y - y_lo_) / (y_hi_ - y_lo_) *
                                           static_cast<double>(y_bins_));
  ++counts_[std::min(yi, y_bins_ - 1) * x_bins_ + std::min(xi, x_bins_ - 1)];
}

std::size_t Histogram2d::at(std::size_t xi, std::size_t yi) const {
  if (xi >= x_bins_ || yi >= y_bins_) throw ValueError("histogram index out of range");
  return counts_[yi * x_bins_ + xi];
}

std::string Histogram2d::render() const {
  static const char kRamp[] = " .:-=+*%@#";
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  out.reserve((x_bins_ + 1) * y_bins_);
  // Render with y increasing upward, matching a conventional scatter plot.
  for (std::size_t row = y_bins_; row-- > 0;) {
    for (std::size_t col = 0; col < x_bins_; ++col) {
      const std::size_t c = at(col, row);
      if (peak == 0 || c == 0) {
        out.push_back(kRamp[0]);
      } else {
        const std::size_t level =
            1 + (c - 1) * (sizeof(kRamp) - 3) / std::max<std::size_t>(peak, 1);
        out.push_back(kRamp[std::min<std::size_t>(level, sizeof(kRamp) - 2)]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace dpho::util
