// Filesystem helpers for run directories and small text files.
#pragma once

#include <filesystem>
#include <string>

namespace dpho::util {

/// Reads an entire file; throws IoError when the file cannot be opened.
std::string read_file(const std::filesystem::path& path);

/// Writes (replacing) an entire file; creates parent directories as needed.
void write_file(const std::filesystem::path& path, const std::string& contents);

/// Crash-safe whole-file replacement: the contents are written to a unique
/// temporary sibling, flushed with fsync, and renamed over `path`; the parent
/// directory is fsynced afterwards so the rename itself is durable.  A reader
/// therefore observes either the previous file or the complete new one --
/// never a torn intermediate -- which is the invariant the checkpoint layer
/// depends on.  Leftover "*.tmp-*" siblings from a crashed writer are inert.
void atomic_write_file(const std::filesystem::path& path, const std::string& contents);

/// Creates a fresh unique directory under `base` (created too, if missing).
std::filesystem::path make_run_dir(const std::filesystem::path& base,
                                   const std::string& name);

/// A directory deleted on destruction; used by tests and the workspace layer.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "dpho");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace dpho::util
