#include "md/system.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::md {

std::string to_string(Species species) {
  switch (species) {
    case Species::kAl: return "Al";
    case Species::kK: return "K";
    case Species::kCl: return "Cl";
  }
  throw util::ValueError("invalid species enum");
}

Species species_from_string(const std::string& name) {
  if (name == "Al") return Species::kAl;
  if (name == "K") return Species::kK;
  if (name == "Cl") return Species::kCl;
  throw util::ValueError("unknown species: " + name);
}

const SpeciesInfo& species_info(Species species) {
  // Shannon ionic radii; formal charges x 0.7 (charge-scaled rigid-ion model).
  static const SpeciesInfo kTable[kNumSpecies] = {
      /*Al*/ {26.9815385, +3.0 * 0.7, 0.535},
      /*K */ {39.0983, +1.0 * 0.7, 1.38},
      /*Cl*/ {35.453, -1.0 * 0.7, 1.81},
  };
  return kTable[static_cast<std::size_t>(species)];
}

double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

SystemSpec::SystemSpec(std::size_t n_al, std::size_t n_k, std::size_t n_cl,
                       double box_length)
    : n_al_(n_al), n_k_(n_k), n_cl_(n_cl), box_length_(box_length) {
  if (box_length <= 0.0) throw util::ValueError("box length must be positive");
  if (total_atoms() == 0) throw util::ValueError("system must contain atoms");
}

SystemSpec SystemSpec::paper_system() { return SystemSpec(32, 16, 112, 17.84); }

SystemSpec SystemSpec::scaled_system(std::size_t kcl_units) {
  if (kcl_units == 0) throw util::ValueError("scaled_system needs >= 1 unit");
  const std::size_t n_k = kcl_units;
  const std::size_t n_al = 2 * kcl_units;
  const std::size_t n_cl = 6 * kcl_units + kcl_units;  // 3 per AlCl3 + 1 per KCl
  const std::size_t atoms = n_al + n_k + n_cl;
  // Match the paper's number density: 160 atoms in 17.84^3 A^3.
  const double density = 160.0 / (17.84 * 17.84 * 17.84);
  const double box = std::cbrt(static_cast<double>(atoms) / density);
  return SystemSpec(n_al, n_k, n_cl, box);
}

double SystemSpec::net_charge() const {
  return static_cast<double>(n_al_) * species_info(Species::kAl).charge_e +
         static_cast<double>(n_k_) * species_info(Species::kK).charge_e +
         static_cast<double>(n_cl_) * species_info(Species::kCl).charge_e;
}

SystemState SystemSpec::create_initial_state(double temperature_k,
                                             util::Rng& rng) const {
  SystemState state;
  state.box_length = box_length_;
  const std::size_t n = total_atoms();

  state.types.reserve(n);
  for (std::size_t i = 0; i < n_al_; ++i) state.types.push_back(Species::kAl);
  for (std::size_t i = 0; i < n_k_; ++i) state.types.push_back(Species::kK);
  for (std::size_t i = 0; i < n_cl_; ++i) state.types.push_back(Species::kCl);
  // Shuffle species over lattice sites so cations/anions are intermixed.
  const auto perm = rng.permutation(n);
  std::vector<Species> shuffled(n);
  for (std::size_t i = 0; i < n; ++i) shuffled[i] = state.types[perm[i]];
  state.types = std::move(shuffled);

  // Jittered simple-cubic lattice covering the box.
  auto cells = static_cast<std::size_t>(std::ceil(std::cbrt(static_cast<double>(n))));
  if (cells == 0) cells = 1;
  const double spacing = box_length_ / static_cast<double>(cells);
  state.positions.reserve(n);
  std::size_t placed = 0;
  for (std::size_t x = 0; x < cells && placed < n; ++x) {
    for (std::size_t y = 0; y < cells && placed < n; ++y) {
      for (std::size_t z = 0; z < cells && placed < n; ++z) {
        const double jitter = 0.1 * spacing;
        state.positions.push_back(
            Vec3{(static_cast<double>(x) + 0.5) * spacing + rng.uniform(-jitter, jitter),
                 (static_cast<double>(y) + 0.5) * spacing + rng.uniform(-jitter, jitter),
                 (static_cast<double>(z) + 0.5) * spacing + rng.uniform(-jitter, jitter)});
        ++placed;
      }
    }
  }

  // Maxwell-Boltzmann velocities; remove center-of-mass drift, then rescale
  // to the exact requested kinetic temperature.
  state.velocities.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mass = species_info(state.types[i]).mass_amu;
    const double sigma = std::sqrt(kBoltzmannEv * temperature_k * kForceToAccel / mass);
    state.velocities[i] = Vec3{rng.normal(0.0, sigma), rng.normal(0.0, sigma),
                               rng.normal(0.0, sigma)};
  }
  Vec3 momentum{0.0, 0.0, 0.0};
  double total_mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double mass = species_info(state.types[i]).mass_amu;
    momentum = momentum + state.velocities[i] * mass;
    total_mass += mass;
  }
  const Vec3 drift = momentum * (1.0 / total_mass);
  for (auto& v : state.velocities) v = v - drift;
  const double temp_now = kinetic_temperature(state);
  if (temp_now > 0.0) {
    const double scale = std::sqrt(temperature_k / temp_now);
    for (auto& v : state.velocities) v = v * scale;
  }
  return state;
}

double kinetic_energy(const SystemState& state) {
  // KE = 1/2 m v^2; with v in A/fs and m in amu the product is in
  // amu A^2/fs^2, converted to eV by dividing by kForceToAccel.
  double twice_ke = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double mass = species_info(state.types[i]).mass_amu;
    twice_ke += mass * dot(state.velocities[i], state.velocities[i]);
  }
  return 0.5 * twice_ke / kForceToAccel;
}

double kinetic_temperature(const SystemState& state) {
  if (state.size() == 0) return 0.0;
  const double dof = 3.0 * static_cast<double>(state.size());
  return 2.0 * kinetic_energy(state) / (dof * kBoltzmannEv);
}

}  // namespace dpho::md
