#include "md/session.hpp"

#include <algorithm>
#include <cmath>

#include "hpc/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dpho::md {

namespace {

obs::Histogram& step_seconds() {
  static obs::Histogram& h = obs::metrics().histogram(
      "md.session.step_seconds", obs::BucketLayout::timing_seconds());
  return h;
}

obs::Histogram& rebuild_seconds() {
  static obs::Histogram& h = obs::metrics().histogram(
      "md.session.rebuild_seconds", obs::BucketLayout::timing_seconds());
  return h;
}

obs::Counter& steps_counter() {
  static obs::Counter& c = obs::metrics().counter("md.session.steps_total");
  return c;
}

obs::Counter& rebuilds_counter() {
  static obs::Counter& c = obs::metrics().counter("md.session.rebuilds_total");
  return c;
}

}  // namespace

std::vector<std::size_t> make_chunk_partition(std::size_t num_atoms,
                                              const SessionOptions& options) {
  const std::size_t grain = std::max<std::size_t>(1, options.chunk_atoms);
  std::size_t chunks = (num_atoms + grain - 1) / grain;
  chunks = std::clamp<std::size_t>(chunks, 1,
                                   std::max<std::size_t>(1, options.max_chunks));
  std::vector<std::size_t> begin(chunks + 1, 0);
  const std::size_t base = num_atoms / chunks;
  const std::size_t extra = num_atoms % chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    begin[c + 1] = begin[c] + base + (c < extra ? 1 : 0);
  }
  return begin;
}

ReferenceSession::ReferenceSession(const ReferencePotential& potential,
                                   const SessionOptions& options)
    : potential_(potential), options_(options) {
  if (options.skin < 0.0) throw util::ValueError("session skin must be >= 0");
}

std::size_t ReferenceSession::neighbor_rebuilds() const {
  return verlet_ ? verlet_->rebuild_count() : 0;
}

void ReferenceSession::initialize(const SystemState& state) {
  num_atoms_ = state.size();
  if (num_atoms_ == 0) throw util::ValueError("session needs >= 1 atom");
  box_ = Box(state.box_length);
  // Clamp the skin so cutoff + skin stays a legal neighbor cutoff; the bare
  // cutoff must fit on its own (VerletList throws otherwise).
  skin_ = std::max(
      0.0, std::min(options_.skin, box_.max_cutoff() - cutoff() - 1e-9));
  verlet_.emplace(box_, potential_.cutoff(), skin_, options_.neighbor_build);
  chunk_begin_ = make_chunk_partition(num_atoms_, options_);
  num_chunks_ = chunk_begin_.size() - 1;
  chunk_energy_.assign(num_chunks_, 0.0);
  skel_offsets_.assign(num_atoms_ + 1, 0);
  initialized_ = true;
}

void ReferenceSession::rebuild_skeleton(const NeighborList& list) {
  const obs::ScopedTimer timer(rebuild_seconds());
  rebuilds_counter().add(1);
  std::size_t total = 0;
  skel_offsets_[0] = 0;
  for (std::size_t i = 0; i < num_atoms_; ++i) {
    total += list.neighbors_of(i).size();
    skel_offsets_[i + 1] = total;
  }
  if (skel_index_.capacity() < total) {
    // Headroom so later rebuilds (density fluctuations) stay allocation-free.
    skel_index_.reserve(total + total / 8 + 64);
  }
  skel_index_.resize(total);
  for (std::size_t i = 0; i < num_atoms_; ++i) {
    std::size_t cursor = skel_offsets_[i];
    for (const Neighbor& nb : list.neighbors_of(i)) {
      skel_index_[cursor++] = static_cast<std::uint32_t>(nb.index);
    }
    // Canonical candidate order: ascending neighbor id.  This is what makes
    // a stale-skin walk bitwise-match a fresh rebuild (cell enumeration order
    // would otherwise depend on which cell each atom currently occupies).
    std::sort(skel_index_.begin() + static_cast<std::ptrdiff_t>(skel_offsets_[i]),
              skel_index_.begin() + static_cast<std::ptrdiff_t>(cursor));
  }
}

void ReferenceSession::eval_chunk(std::size_t c, const SystemState& state,
                                  std::span<Vec3> forces) {
  const double rc = potential_.cutoff();
  const double rc_sq = rc * rc;
  double energy = 0.0;
  for (std::size_t i = chunk_begin_[c]; i < chunk_begin_[c + 1]; ++i) {
    const Vec3 ri = state.positions[i];
    const Species si = state.types[i];
    Vec3 f{0.0, 0.0, 0.0};
    const std::size_t row_end = skel_offsets_[i + 1];
    for (std::size_t k = skel_offsets_[i]; k < row_end; ++k) {
      const std::size_t j = skel_index_[k];
      const Vec3 d = box_.displacement(ri, state.positions[j]);
      const double dist_sq = dot(d, d);
      if (dist_sq >= rc_sq || dist_sq == 0.0) continue;
      const double r = std::sqrt(dist_sq);
      const Species sj = state.types[j];
      // Full-neighbor form: each pair is seen from both centers, so each
      // occurrence carries half the pair energy (exact: *0.5 is a power of
      // two) and the full force on this center.
      energy += 0.5 * potential_.pair_energy(si, sj, r);
      f = f + d * (-potential_.pair_force(si, sj, r) / r);
    }
    forces[i] = f;
  }
  chunk_energy_[c] = energy;
}

double ReferenceSession::compute(const SystemState& state,
                                 std::span<Vec3> forces) {
  const obs::ScopedTimer timer(step_seconds());
  if (!initialized_) initialize(state);
  if (state.size() != num_atoms_ || state.box_length != box_.length()) {
    throw util::ValueError("session is bound to a fixed atom count and box");
  }
  if (forces.size() != num_atoms_) {
    throw util::ValueError("forces span size does not match atom count");
  }
  const NeighborList& list = verlet_->update(state.positions);
  if (verlet_->rebuild_count() != seen_rebuilds_) {
    rebuild_skeleton(list);
    seen_rebuilds_ = verlet_->rebuild_count();
  }

  struct DispatchCtx {
    ReferenceSession* self;
    const SystemState* state;
    Vec3* forces;
  } ctx{this, &state, forces.data()};
  if (options_.pool != nullptr && num_chunks_ > 1) {
    options_.pool->parallel_for_static(
        num_chunks_,
        [](void* raw, std::size_t c) {
          auto* d = static_cast<DispatchCtx*>(raw);
          d->self->eval_chunk(c, *d->state,
                              std::span<Vec3>(d->forces, d->state->size()));
        },
        &ctx);
  } else {
    for (std::size_t c = 0; c < num_chunks_; ++c) eval_chunk(c, state, forces);
  }

  // Fixed-order reduction: chunk partials combine serially in chunk order,
  // independent of which thread ran which chunk.
  double energy = 0.0;
  for (const double e : chunk_energy_) energy += e;
  ++steps_;
  steps_counter().add(1);
  return energy;
}

}  // namespace dpho::md
