#include "md/potential.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dpho::md {

namespace {

// Per-species dispersion strength sqrt-combined into C_ij = c_i * c_j, chosen
// to give Tosi-Fumi-like magnitudes (C_ClCl ~ 120 eV A^6).
constexpr double kDispersion[kNumSpecies] = {/*Al*/ 2.0, /*K*/ 6.0, /*Cl*/ 11.0};
// Chosen so the Born repulsion balances the (charge-scaled) Coulomb
// attraction near physical bond distances (Al-Cl ~ 2.1 A, K-Cl ~ 2.9 A);
// weaker values let counter-ions collapse and destabilize the melt.
constexpr double kBornPrefactor = 0.8;  // eV
constexpr double kBornRho = 0.32;        // Angstrom

std::size_t pair_index(Species a, Species b) {
  return static_cast<std::size_t>(a) * kNumSpecies + static_cast<std::size_t>(b);
}

}  // namespace

ReferencePotential::ReferencePotential(double cutoff, double wolf_alpha)
    : cutoff_(cutoff), wolf_alpha_(wolf_alpha) {
  if (cutoff <= 0.0) throw util::ValueError("potential cutoff must be positive");
  for (std::size_t a = 0; a < kNumSpecies; ++a) {
    for (std::size_t b = 0; b < kNumSpecies; ++b) {
      const auto sa = static_cast<Species>(a);
      const auto sb = static_cast<Species>(b);
      PairParams p;
      p.bmh_a = kBornPrefactor;
      p.bmh_sigma = species_info(sa).radius_ang + species_info(sb).radius_ang;
      p.bmh_rho = kBornRho;
      p.dispersion_c = kDispersion[a] * kDispersion[b];
      p.charge_product = species_info(sa).charge_e * species_info(sb).charge_e;
      pair_params_[pair_index(sa, sb)] = p;
    }
  }
  // Precompute shifted-force constants per pair type.
  for (std::size_t a = 0; a < kNumSpecies; ++a) {
    for (std::size_t b = 0; b < kNumSpecies; ++b) {
      const auto sa = static_cast<Species>(a);
      const auto sb = static_cast<Species>(b);
      shift_energy_[pair_index(sa, sb)] = raw_pair_energy(sa, sb, cutoff_);
      shift_slope_[pair_index(sa, sb)] =
          raw_pair_energy_derivative(sa, sb, cutoff_);
    }
  }
}

const PairParams& ReferencePotential::params(Species a, Species b) const {
  return pair_params_[pair_index(a, b)];
}

namespace {
// Short-range damping of the r^-6 dispersion: C/(r^6 + d^6) stays finite at
// contact, so the Born wall always dominates below the ionic radii (the raw
// -C/r^6 would otherwise swallow the repulsion and let ions collapse).
constexpr double kDispersionDamp6 = 1.5 * 1.5 * 1.5 * 1.5 * 1.5 * 1.5;  // d=1.5 A
}  // namespace

double ReferencePotential::raw_pair_energy(Species a, Species b, double r) const {
  const PairParams& p = params(a, b);
  const double born = p.bmh_a * std::exp((p.bmh_sigma - r) / p.bmh_rho);
  const double dispersion =
      -p.dispersion_c / (std::pow(r, 6) + kDispersionDamp6);
  const double coulomb =
      kCoulombEvAng * p.charge_product * std::erfc(wolf_alpha_ * r) / r;
  return born + dispersion + coulomb;
}

double ReferencePotential::raw_pair_energy_derivative(Species a, Species b,
                                                      double r) const {
  const PairParams& p = params(a, b);
  const double born = -p.bmh_a / p.bmh_rho * std::exp((p.bmh_sigma - r) / p.bmh_rho);
  const double denom = std::pow(r, 6) + kDispersionDamp6;
  const double dispersion = 6.0 * p.dispersion_c * std::pow(r, 5) / (denom * denom);
  const double erfc_term = std::erfc(wolf_alpha_ * r);
  const double gauss_term = 2.0 * wolf_alpha_ / std::sqrt(std::numbers::pi) *
                            std::exp(-wolf_alpha_ * wolf_alpha_ * r * r);
  const double coulomb = kCoulombEvAng * p.charge_product *
                         (-erfc_term / (r * r) - gauss_term / r);
  return born + dispersion + coulomb;
}

double ReferencePotential::pair_energy(Species a, Species b, double r) const {
  if (r >= cutoff_) return 0.0;
  const std::size_t idx = pair_index(a, b);
  return raw_pair_energy(a, b, r) - shift_energy_[idx] -
         (r - cutoff_) * shift_slope_[idx];
}

double ReferencePotential::pair_force(Species a, Species b, double r) const {
  if (r >= cutoff_) return 0.0;
  const std::size_t idx = pair_index(a, b);
  return -(raw_pair_energy_derivative(a, b, r) - shift_slope_[idx]);
}

ForceEnergy ReferencePotential::compute(const SystemState& state,
                                        const NeighborList& neighbors) const {
  ForceEnergy out;
  compute(state, neighbors, out);
  return out;
}

void ReferencePotential::compute(const SystemState& state,
                                 const NeighborList& neighbors,
                                 ForceEnergy& out) const {
  if (neighbors.cutoff() < cutoff_ - 1e-12) {
    throw util::ValueError("neighbor list cutoff smaller than potential cutoff");
  }
  // Displacements are recomputed from the *current* positions so the list may
  // be a stale Verlet list (pair identities complete, distances outdated).
  const Box box(state.box_length);
  out.forces.assign(state.size(), Vec3{0.0, 0.0, 0.0});
  double energy = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    for (const Neighbor& nb : neighbors.neighbors_of(i)) {
      if (nb.index < i) continue;  // each pair once
      const Vec3 d = box.displacement(state.positions[i], state.positions[nb.index]);
      const double r = norm(d);
      if (r >= cutoff_) continue;
      const Species si = state.types[i];
      const Species sj = state.types[nb.index];
      energy += pair_energy(si, sj, r);
      // F_i = U'(r) * d / r with d = r_j - r_i (see derivation in tests).
      const double magnitude = -pair_force(si, sj, r) / r;
      const Vec3 fi = d * magnitude;
      out.forces[i] = out.forces[i] + fi;
      out.forces[nb.index] = out.forces[nb.index] - fi;
    }
  }
  out.energy = energy;
}

ForceEnergy ReferencePotential::compute(const SystemState& state) const {
  const Box box(state.box_length);
  const NeighborList neighbors(box, state.positions, cutoff_);
  return compute(state, neighbors);
}

}  // namespace dpho::md
