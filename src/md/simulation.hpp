// End-to-end reference-data generation: equilibrate, sample, label.
//
// This is the stand-in for the paper's CADES/CP2K FPMD campaign
// (section 2.1.3): run thermostatted MD of the molten salt and emit labelled
// frames (positions, total energy, forces) ready for potential training.
#pragma once

#include <cstddef>

#include "md/dataset.hpp"
#include "md/integrator.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace dpho::md {

/// Configuration of a data-generation run.
struct SimulationConfig {
  SystemSpec spec = SystemSpec::paper_system();
  double temperature_k = 498.0;
  double dt_fs = 1.0;
  std::size_t equilibration_steps = 200;
  std::size_t sample_interval = 5;  // steps between recorded frames
  std::size_t num_frames = 100;
  double langevin_friction = 0.02;  // 1/fs
  std::uint64_t seed = 42;
  /// Which thermostat the run applies after each Verlet step.  kNone samples
  /// a (drifting) NVE trajectory; kBerendsen is the deterministic weak
  /// coupling with relaxation time `berendsen_tau_fs`.
  Thermostat thermostat = Thermostat::kLangevin;
  double berendsen_tau_fs = 100.0;  // fs
  /// Verlet skin in Angstrom, clamped down so cutoff + skin fits the box.
  double verlet_skin = 0.8;
  /// Force-evaluation threads (>1 spawns a pool for the session chunks).
  /// Results are bit-identical at any thread count.
  std::size_t num_threads = 1;
};

/// Thermostatted MD driver that records labelled frames.  Forces run through
/// a persistent ReferenceSession (Verlet skin reuse, zero-allocation steps);
/// the per-step force and wrapped-position buffers are preallocated members.
class Simulation {
 public:
  explicit Simulation(const SimulationConfig& config);

  /// Runs equilibration + production and returns the labelled frames.
  FrameDataset run();

  /// Current instantaneous state (after run(), the final configuration).
  const SystemState& state() const { return state_; }

 private:
  SimulationConfig config_;
  ReferencePotential potential_;
  SystemState state_;
  std::vector<Vec3> forces_;   // per-step force buffer, reused
  std::vector<Vec3> wrapped_;  // per-sample wrapped positions, reused
};

/// Convenience wrapper used by examples and the evaluation backend:
/// generates a shuffled dataset and splits off 25% for validation.
struct LabelledData {
  FrameDataset train;
  FrameDataset validation;
};
LabelledData generate_reference_data(const SimulationConfig& config,
                                     double validation_fraction = 0.25);

}  // namespace dpho::md
