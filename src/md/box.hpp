// Cubic periodic simulation box with minimum-image displacement.
#pragma once

#include "md/system.hpp"

namespace dpho::md {

/// Cubic box with periodic boundary conditions on all three axes.
class Box {
 public:
  explicit Box(double length);

  double length() const { return length_; }
  double volume() const { return length_ * length_ * length_; }
  /// Largest physically meaningful interaction cutoff (half the edge).
  double max_cutoff() const { return 0.5 * length_; }

  /// Minimum-image displacement r_j - r_i.
  Vec3 displacement(const Vec3& ri, const Vec3& rj) const;

  /// Minimum-image distance.
  double distance(const Vec3& ri, const Vec3& rj) const;

  /// Wraps a position into [0, L)^3.
  Vec3 wrap(const Vec3& r) const;

 private:
  double length_;
  double inv_length_;
};

}  // namespace dpho::md
