// Structural and dynamical analysis of trajectories.
//
// Used to verify that the synthetic reference system really behaves like the
// molten salt it stands in for (section 2.1.3): pair distribution functions
// g(r) with liquid-like ordering and diffusive mean-squared displacements.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "md/dataset.hpp"
#include "md/system.hpp"

namespace dpho::md {

/// Radial distribution function g(r) for one (or any) species pair.
struct Rdf {
  double r_max = 0.0;
  double bin_width = 0.0;
  std::vector<double> r;    // bin centers
  std::vector<double> g;    // g(r) values

  /// First maximum of g(r) beyond `min_r` (typical nearest-neighbor peak).
  struct Peak {
    double r = 0.0;
    double height = 0.0;
  };
  std::optional<Peak> first_peak(double min_r = 0.5) const;

  /// Mean of g(r) over the outer quarter of the range (should be ~1 for a
  /// homogeneous liquid).
  double tail_mean() const;
};

/// Computes g(r) over all frames of a dataset.  Pass std::nullopt for either
/// species to include all atoms on that side.
Rdf radial_distribution(const FrameDataset& frames, std::optional<Species> first,
                        std::optional<Species> second, double r_max,
                        std::size_t bins = 100);

/// Mean-squared displacement vs frame lag, averaged over atoms and time
/// origins.  Positions must be unwrapped or sampled densely enough that no
/// atom moves more than half a box between consecutive frames (the routine
/// unwraps using minimum-image increments).
std::vector<double> mean_squared_displacement(const FrameDataset& frames,
                                              std::size_t max_lag);

}  // namespace dpho::md
