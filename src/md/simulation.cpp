#include "md/simulation.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace dpho::md {

Simulation::Simulation(const SimulationConfig& config)
    : config_(config),
      potential_(std::min(8.5, 0.5 * config.spec.box_length() - 1e-9)),
      state_() {
  util::Rng rng(config_.seed);
  state_ = config_.spec.create_initial_state(config_.temperature_k, rng);
}

FrameDataset Simulation::run() {
  util::Rng rng(util::hash_combine(config_.seed, 0xd1f7));
  const Box box(state_.box_length);
  // Verlet list with whatever skin the box affords (0 = rebuild every step).
  const double skin =
      std::max(0.0, std::min(0.8, box.max_cutoff() - potential_.cutoff() - 1e-9));
  VerletList verlet(box, potential_.cutoff(), skin);
  const ForceProvider provider = [this, &verlet](const SystemState& s) {
    return potential_.compute(s, verlet.update(s.positions));
  };
  VelocityVerlet integrator(config_.dt_fs);
  LangevinThermostat thermostat(config_.temperature_k, config_.langevin_friction,
                                rng.spawn(1));

  ForceEnergy current = provider(state_);
  for (std::size_t step = 0; step < config_.equilibration_steps; ++step) {
    current = integrator.step(state_, provider, current);
    thermostat.apply(state_, config_.dt_fs);
  }
  util::log_info() << "md: equilibrated at T=" << kinetic_temperature(state_) << " K";

  FrameDataset dataset(state_.types);
  std::size_t produced = 0;
  std::size_t step = 0;
  while (produced < config_.num_frames) {
    current = integrator.step(state_, provider, current);
    thermostat.apply(state_, config_.dt_fs);
    ++step;
    if (step % config_.sample_interval == 0) {
      Frame frame;
      frame.positions = state_.positions;
      for (auto& r : frame.positions) r = box.wrap(r);
      frame.forces = current.forces;
      frame.energy = current.energy;
      frame.box_length = state_.box_length;
      dataset.add(std::move(frame));
      ++produced;
    }
  }
  return dataset;
}

LabelledData generate_reference_data(const SimulationConfig& config,
                                     double validation_fraction) {
  Simulation simulation(config);
  FrameDataset dataset = simulation.run();
  util::Rng rng(util::hash_combine(config.seed, 0x5eed));
  dataset.shuffle(rng);
  auto [train, validation] = dataset.split(validation_fraction);
  return LabelledData{std::move(train), std::move(validation)};
}

}  // namespace dpho::md
