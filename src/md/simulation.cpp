#include "md/simulation.hpp"

#include <algorithm>
#include <memory>

#include "hpc/thread_pool.hpp"
#include "md/session.hpp"
#include "util/log.hpp"

namespace dpho::md {

Simulation::Simulation(const SimulationConfig& config)
    : config_(config),
      potential_(std::min(8.5, 0.5 * config.spec.box_length() - 1e-9)),
      state_() {
  util::Rng rng(config_.seed);
  state_ = config_.spec.create_initial_state(config_.temperature_k, rng);
}

FrameDataset Simulation::run() {
  util::Rng rng(util::hash_combine(config_.seed, 0xd1f7));
  const Box box(state_.box_length);
  // Persistent evaluation session: Verlet skin reuse across steps, chunked
  // (optionally multi-threaded) force kernel, zero allocations per step.
  SessionOptions session_options;
  session_options.skin = std::max(0.0, config_.verlet_skin);
  std::unique_ptr<hpc::ThreadPool> pool;
  if (config_.num_threads > 1) {
    pool = std::make_unique<hpc::ThreadPool>(config_.num_threads);
    session_options.pool = pool.get();
  }
  ReferenceSession session(potential_, session_options);
  VelocityVerlet integrator(config_.dt_fs);
  LangevinThermostat langevin(config_.temperature_k, config_.langevin_friction,
                              rng.spawn(1));
  BerendsenThermostat berendsen(config_.temperature_k, config_.berendsen_tau_fs);
  const auto apply_thermostat = [&] {
    switch (config_.thermostat) {
      case Thermostat::kNone:
        break;
      case Thermostat::kLangevin:
        langevin.apply(state_, config_.dt_fs);
        break;
      case Thermostat::kBerendsen:
        berendsen.apply(state_, config_.dt_fs);
        break;
    }
  };

  forces_.assign(state_.size(), Vec3{0.0, 0.0, 0.0});
  double energy = session.compute(state_, forces_);
  for (std::size_t step = 0; step < config_.equilibration_steps; ++step) {
    energy = integrator.step(state_, session, forces_);
    apply_thermostat();
  }
  util::log_info() << "md: equilibrated at T=" << kinetic_temperature(state_) << " K";

  FrameDataset dataset(state_.types);
  std::size_t produced = 0;
  std::size_t step = 0;
  while (produced < config_.num_frames) {
    energy = integrator.step(state_, session, forces_);
    apply_thermostat();
    ++step;
    if (step % config_.sample_interval == 0) {
      wrapped_.assign(state_.positions.begin(), state_.positions.end());
      for (auto& r : wrapped_) r = box.wrap(r);
      Frame frame;
      frame.positions = wrapped_;
      frame.forces.assign(forces_.begin(), forces_.end());
      frame.energy = energy;
      frame.box_length = state_.box_length;
      dataset.add(std::move(frame));
      ++produced;
    }
  }
  return dataset;
}

LabelledData generate_reference_data(const SimulationConfig& config,
                                     double validation_fraction) {
  Simulation simulation(config);
  FrameDataset dataset = simulation.run();
  util::Rng rng(util::hash_combine(config.seed, 0x5eed));
  dataset.shuffle(rng);
  auto [train, validation] = dataset.split(validation_fraction);
  return LabelledData{std::move(train), std::move(validation)};
}

}  // namespace dpho::md
