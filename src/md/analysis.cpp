#include "md/analysis.hpp"

#include <cmath>
#include <numbers>

#include "md/box.hpp"
#include "util/error.hpp"

namespace dpho::md {

std::optional<Rdf::Peak> Rdf::first_peak(double min_r) const {
  for (std::size_t i = 1; i + 1 < g.size(); ++i) {
    if (r[i] < min_r) continue;
    if (g[i] > 1.0 && g[i] >= g[i - 1] && g[i] >= g[i + 1]) {
      return Peak{r[i], g[i]};
    }
  }
  return std::nullopt;
}

double Rdf::tail_mean() const {
  if (g.empty()) return 0.0;
  const std::size_t start = 3 * g.size() / 4;
  double total = 0.0;
  for (std::size_t i = start; i < g.size(); ++i) total += g[i];
  return total / static_cast<double>(g.size() - start);
}

Rdf radial_distribution(const FrameDataset& frames, std::optional<Species> first,
                        std::optional<Species> second, double r_max,
                        std::size_t bins) {
  if (frames.empty()) throw util::ValueError("rdf: empty dataset");
  if (bins == 0 || r_max <= 0.0) throw util::ValueError("rdf: bad binning");

  Rdf rdf;
  rdf.r_max = r_max;
  rdf.bin_width = r_max / static_cast<double>(bins);
  rdf.r.resize(bins);
  rdf.g.assign(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    rdf.r[b] = (static_cast<double>(b) + 0.5) * rdf.bin_width;
  }

  const auto& types = frames.types();
  std::vector<std::size_t> centers, others;
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (!first || types[i] == *first) centers.push_back(i);
    if (!second || types[i] == *second) others.push_back(i);
  }
  if (centers.empty() || others.empty()) {
    throw util::ValueError("rdf: no atoms of the requested species");
  }

  std::vector<double> counts(bins, 0.0);
  double volume = 0.0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const Frame& frame = frames.frame(f);
    const Box box(frame.box_length);
    if (r_max > box.max_cutoff() + 1e-9) {
      throw util::ValueError("rdf: r_max exceeds half the box edge");
    }
    volume += box.volume();
    for (std::size_t i : centers) {
      for (std::size_t j : others) {
        if (i == j) continue;
        const double dist = box.distance(frame.positions[i], frame.positions[j]);
        if (dist >= r_max) continue;
        counts[static_cast<std::size_t>(dist / rdf.bin_width)] += 1.0;
      }
    }
  }
  volume /= static_cast<double>(frames.size());

  // Normalize by the ideal-gas shell population.
  const double pair_density = static_cast<double>(centers.size()) *
                              static_cast<double>(others.size()) / volume;
  for (std::size_t b = 0; b < bins; ++b) {
    const double r_lo = static_cast<double>(b) * rdf.bin_width;
    const double r_hi = r_lo + rdf.bin_width;
    const double shell =
        4.0 / 3.0 * std::numbers::pi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = pair_density * shell * static_cast<double>(frames.size());
    rdf.g[b] = ideal > 0.0 ? counts[b] / ideal : 0.0;
  }
  return rdf;
}

std::vector<double> mean_squared_displacement(const FrameDataset& frames,
                                              std::size_t max_lag) {
  if (frames.size() < 2) throw util::ValueError("msd: need at least two frames");
  max_lag = std::min(max_lag, frames.size() - 1);
  const std::size_t n_atoms = frames.num_atoms();

  // Unwrap trajectories via minimum-image displacement increments.
  std::vector<std::vector<Vec3>> unwrapped(frames.size(),
                                           std::vector<Vec3>(n_atoms));
  unwrapped[0] = frames.frame(0).positions;
  for (std::size_t f = 1; f < frames.size(); ++f) {
    const Box box(frames.frame(f).box_length);
    for (std::size_t a = 0; a < n_atoms; ++a) {
      const Vec3 step = box.displacement(frames.frame(f - 1).positions[a],
                                         frames.frame(f).positions[a]);
      unwrapped[f][a] = unwrapped[f - 1][a] + step;
    }
  }

  std::vector<double> msd(max_lag + 1, 0.0);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    double total = 0.0;
    std::size_t samples = 0;
    for (std::size_t origin = 0; origin + lag < frames.size(); ++origin) {
      for (std::size_t a = 0; a < n_atoms; ++a) {
        const Vec3 d = unwrapped[origin + lag][a] - unwrapped[origin][a];
        total += dot(d, d);
        ++samples;
      }
    }
    msd[lag] = total / static_cast<double>(samples);
  }
  return msd;
}

}  // namespace dpho::md
