#include "md/dataset.hpp"

#include <fstream>
#include <sstream>

#include "md/npy.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace dpho::md {

namespace fs = std::filesystem;

void FrameDataset::add(Frame frame) {
  if (frame.positions.size() != types_.size() ||
      frame.forces.size() != types_.size()) {
    throw util::ValueError("frame size does not match dataset atom count");
  }
  frames_.push_back(std::move(frame));
}

void FrameDataset::shuffle(util::Rng& rng) {
  const auto perm = rng.permutation(frames_.size());
  std::vector<Frame> shuffled;
  shuffled.reserve(frames_.size());
  for (std::size_t i : perm) shuffled.push_back(std::move(frames_[i]));
  frames_ = std::move(shuffled);
}

std::pair<FrameDataset, FrameDataset> FrameDataset::split(
    double validation_fraction) const {
  if (validation_fraction < 0.0 || validation_fraction >= 1.0) {
    throw util::ValueError("validation fraction must be in [0,1)");
  }
  const auto n_val = static_cast<std::size_t>(
      validation_fraction * static_cast<double>(frames_.size()));
  const std::size_t n_train = frames_.size() - n_val;
  FrameDataset train(types_);
  FrameDataset validation(types_);
  for (std::size_t i = 0; i < n_train; ++i) train.add(frames_[i]);
  for (std::size_t i = n_train; i < frames_.size(); ++i) validation.add(frames_[i]);
  return {std::move(train), std::move(validation)};
}

void FrameDataset::save(const fs::path& dir) const {
  fs::create_directories(dir);
  // type_map.raw: element name per type id; type.raw: type id per atom.
  util::write_file(dir / "type_map.raw", "Al\nK\nCl\n");
  std::ostringstream type_ids;
  for (Species s : types_) type_ids << static_cast<int>(s) << '\n';
  util::write_file(dir / "type.raw", type_ids.str());

  const std::size_t n_frames = frames_.size();
  const std::size_t n_atoms = types_.size();
  NpyArray coord{{n_frames, n_atoms * 3}, {}};
  NpyArray force{{n_frames, n_atoms * 3}, {}};
  NpyArray energy{{n_frames}, {}};
  NpyArray box{{n_frames, 9}, {}};
  coord.data.reserve(n_frames * n_atoms * 3);
  force.data.reserve(n_frames * n_atoms * 3);
  energy.data.reserve(n_frames);
  box.data.reserve(n_frames * 9);
  for (const Frame& f : frames_) {
    for (const Vec3& r : f.positions) {
      coord.data.insert(coord.data.end(), r.begin(), r.end());
    }
    for (const Vec3& g : f.forces) {
      force.data.insert(force.data.end(), g.begin(), g.end());
    }
    energy.data.push_back(f.energy);
    const double L = f.box_length;
    const double cell[9] = {L, 0, 0, 0, L, 0, 0, 0, L};
    box.data.insert(box.data.end(), cell, cell + 9);
  }
  const fs::path set_dir = dir / "set.000";
  write_npy(set_dir / "coord.npy", coord);
  write_npy(set_dir / "force.npy", force);
  write_npy(set_dir / "energy.npy", energy);
  write_npy(set_dir / "box.npy", box);
}

FrameDataset FrameDataset::load(const fs::path& dir) {
  const std::string type_text = util::read_file(dir / "type.raw");
  std::vector<Species> types;
  std::istringstream type_stream(type_text);
  int id = 0;
  while (type_stream >> id) {
    if (id < 0 || id >= static_cast<int>(kNumSpecies)) {
      throw util::ParseError("type.raw contains invalid type id");
    }
    types.push_back(static_cast<Species>(id));
  }
  FrameDataset dataset(types);

  const fs::path set_dir = dir / "set.000";
  const NpyArray coord = read_npy(set_dir / "coord.npy");
  const NpyArray force = read_npy(set_dir / "force.npy");
  const NpyArray energy = read_npy(set_dir / "energy.npy");
  const NpyArray box = read_npy(set_dir / "box.npy");
  const std::size_t n_frames = energy.rows();
  const std::size_t n_atoms = types.size();
  if (coord.rows() != n_frames || force.rows() != n_frames || box.rows() != n_frames) {
    throw util::ParseError("dataset arrays disagree on frame count");
  }
  if (coord.row_width() != n_atoms * 3 || force.row_width() != n_atoms * 3) {
    throw util::ParseError("dataset arrays disagree on atom count");
  }
  for (std::size_t f = 0; f < n_frames; ++f) {
    Frame frame;
    frame.energy = energy.data[f];
    frame.box_length = box.data[f * 9];
    frame.positions.resize(n_atoms);
    frame.forces.resize(n_atoms);
    for (std::size_t a = 0; a < n_atoms; ++a) {
      for (std::size_t k = 0; k < 3; ++k) {
        frame.positions[a][k] = coord.data[(f * n_atoms + a) * 3 + k];
        frame.forces[a][k] = force.data[(f * n_atoms + a) * 3 + k];
      }
    }
    dataset.add(std::move(frame));
  }
  return dataset;
}

double FrameDataset::mean_energy_per_atom() const {
  if (frames_.empty() || types_.empty()) return 0.0;
  double total = 0.0;
  for (const Frame& f : frames_) total += f.energy;
  return total / static_cast<double>(frames_.size()) /
         static_cast<double>(types_.size());
}

}  // namespace dpho::md
