// Time integration: velocity Verlet with optional thermostats.
#pragma once

#include <functional>
#include <span>

#include "md/potential.hpp"
#include "md/system.hpp"
#include "util/rng.hpp"

namespace dpho::md {

class PotentialSession;

/// Computes potential energy and forces for the current positions.
using ForceProvider = std::function<ForceEnergy(const SystemState&)>;

/// Thermostat selection for the MD driver.
enum class Thermostat { kNone, kLangevin, kBerendsen };

/// Velocity-Verlet integrator (NVE when no thermostat is attached).
class VelocityVerlet {
 public:
  /// `dt` in femtoseconds.
  explicit VelocityVerlet(double dt);

  double dt() const { return dt_; }

  /// Advances one step in place given the force field; returns the potential
  /// energy/forces evaluated at the *new* positions.
  ForceEnergy step(SystemState& state, const ForceProvider& forces,
                   const ForceEnergy& current) const;

  /// Allocation-free step through a persistent session: `forces` holds the
  /// forces at the current positions on entry and the forces at the new
  /// positions on return.  Returns the new potential energy.
  double step(SystemState& state, PotentialSession& session,
              std::span<Vec3> forces) const;

 private:
  double dt_;
};

/// Stochastic Langevin velocity update (applied after each Verlet step).
class LangevinThermostat {
 public:
  /// `friction` in 1/fs; typical molten-salt values 0.01-0.1.
  LangevinThermostat(double temperature_k, double friction, util::Rng rng);

  void apply(SystemState& state, double dt);

 private:
  double temperature_k_;
  double friction_;
  util::Rng rng_;
};

/// Deterministic Berendsen velocity rescaling.
class BerendsenThermostat {
 public:
  /// `tau` in fs; the relaxation time of the weak coupling.
  BerendsenThermostat(double temperature_k, double tau);

  void apply(SystemState& state, double dt);

 private:
  double temperature_k_;
  double tau_;
};

}  // namespace dpho::md
