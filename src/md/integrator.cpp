#include "md/integrator.hpp"

#include <cmath>

#include "md/session.hpp"
#include "util/error.hpp"

namespace dpho::md {

VelocityVerlet::VelocityVerlet(double dt) : dt_(dt) {
  if (dt <= 0.0) throw util::ValueError("time step must be positive");
}

ForceEnergy VelocityVerlet::step(SystemState& state, const ForceProvider& forces,
                                 const ForceEnergy& current) const {
  const std::size_t n = state.size();
  // Half-kick + drift.
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_mass = kForceToAccel / species_info(state.types[i]).mass_amu;
    state.velocities[i] =
        state.velocities[i] + current.forces[i] * (0.5 * dt_ * inv_mass);
    state.positions[i] = state.positions[i] + state.velocities[i] * dt_;
  }
  // New forces, second half-kick.
  ForceEnergy next = forces(state);
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_mass = kForceToAccel / species_info(state.types[i]).mass_amu;
    state.velocities[i] = state.velocities[i] + next.forces[i] * (0.5 * dt_ * inv_mass);
  }
  return next;
}

double VelocityVerlet::step(SystemState& state, PotentialSession& session,
                            std::span<Vec3> forces) const {
  const std::size_t n = state.size();
  // Half-kick + drift.
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_mass = kForceToAccel / species_info(state.types[i]).mass_amu;
    state.velocities[i] =
        state.velocities[i] + forces[i] * (0.5 * dt_ * inv_mass);
    state.positions[i] = state.positions[i] + state.velocities[i] * dt_;
  }
  // New forces in place, second half-kick.
  const double energy = session.compute(state, forces);
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_mass = kForceToAccel / species_info(state.types[i]).mass_amu;
    state.velocities[i] = state.velocities[i] + forces[i] * (0.5 * dt_ * inv_mass);
  }
  return energy;
}

LangevinThermostat::LangevinThermostat(double temperature_k, double friction,
                                       util::Rng rng)
    : temperature_k_(temperature_k), friction_(friction), rng_(rng) {
  if (temperature_k < 0.0) throw util::ValueError("temperature must be >= 0");
  if (friction <= 0.0) throw util::ValueError("friction must be positive");
}

void LangevinThermostat::apply(SystemState& state, double dt) {
  // Exact Ornstein-Uhlenbeck velocity update ("O" part of BAOAB):
  // v <- c1 v + c2 * sqrt(kT/m) * xi,   c1 = exp(-gamma dt).
  const double c1 = std::exp(-friction_ * dt);
  const double c2 = std::sqrt(1.0 - c1 * c1);
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double mass = species_info(state.types[i]).mass_amu;
    const double sigma =
        std::sqrt(kBoltzmannEv * temperature_k_ * kForceToAccel / mass);
    for (std::size_t k = 0; k < 3; ++k) {
      state.velocities[i][k] = c1 * state.velocities[i][k] + c2 * sigma * rng_.normal();
    }
  }
}

BerendsenThermostat::BerendsenThermostat(double temperature_k, double tau)
    : temperature_k_(temperature_k), tau_(tau) {
  if (temperature_k < 0.0) throw util::ValueError("temperature must be >= 0");
  if (tau <= 0.0) throw util::ValueError("tau must be positive");
}

void BerendsenThermostat::apply(SystemState& state, double dt) {
  const double temp_now = kinetic_temperature(state);
  if (temp_now <= 0.0) return;
  const double lambda_sq = 1.0 + dt / tau_ * (temperature_k_ / temp_now - 1.0);
  const double lambda = std::sqrt(std::max(lambda_sq, 0.0));
  for (auto& v : state.velocities) v = v * lambda;
}

}  // namespace dpho::md
