#include "md/neighbor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::md {

NeighborList::NeighborList(const Box& box, const std::vector<Vec3>& positions,
                           double cutoff)
    : cutoff_(cutoff), lists_(positions.size()) {
  if (cutoff <= 0.0) throw util::ValueError("neighbor cutoff must be positive");
  if (cutoff > box.max_cutoff() + 1e-12) {
    throw util::ValueError("neighbor cutoff exceeds half the box edge");
  }
  const auto cells_per_side = static_cast<std::size_t>(box.length() / cutoff);
  if (cells_per_side >= 3) {
    build_cells(box, positions);
    used_cells_ = true;
  } else {
    build_brute_force(box, positions);
  }
}

void NeighborList::build_brute_force(const Box& box,
                                     const std::vector<Vec3>& positions) {
  const double cutoff_sq = cutoff_ * cutoff_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const Vec3 d = box.displacement(positions[i], positions[j]);
      const double dist_sq = dot(d, d);
      if (dist_sq >= cutoff_sq || dist_sq == 0.0) continue;
      const double dist = std::sqrt(dist_sq);
      lists_[i].push_back(Neighbor{j, d, dist});
      lists_[j].push_back(Neighbor{i, Vec3{-d[0], -d[1], -d[2]}, dist});
    }
  }
}

void NeighborList::build_cells(const Box& box, const std::vector<Vec3>& positions) {
  const auto cells = static_cast<long>(box.length() / cutoff_);
  const double cell_size = box.length() / static_cast<double>(cells);
  const auto cell_of = [&](const Vec3& r) {
    const Vec3 w = box.wrap(r);
    long cx = static_cast<long>(w[0] / cell_size);
    long cy = static_cast<long>(w[1] / cell_size);
    long cz = static_cast<long>(w[2] / cell_size);
    cx = std::min(cx, cells - 1);
    cy = std::min(cy, cells - 1);
    cz = std::min(cz, cells - 1);
    return (cx * cells + cy) * cells + cz;
  };

  std::vector<std::vector<std::size_t>> bins(
      static_cast<std::size_t>(cells * cells * cells));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    bins[static_cast<std::size_t>(cell_of(positions[i]))].push_back(i);
  }

  const double cutoff_sq = cutoff_ * cutoff_;
  const auto wrap_cell = [&](long c) { return ((c % cells) + cells) % cells; };
  for (long cx = 0; cx < cells; ++cx) {
    for (long cy = 0; cy < cells; ++cy) {
      for (long cz = 0; cz < cells; ++cz) {
        const auto home =
            static_cast<std::size_t>((cx * cells + cy) * cells + cz);
        for (long dx = -1; dx <= 1; ++dx) {
          for (long dy = -1; dy <= 1; ++dy) {
            for (long dz = -1; dz <= 1; ++dz) {
              const auto other = static_cast<std::size_t>(
                  (wrap_cell(cx + dx) * cells + wrap_cell(cy + dy)) * cells +
                  wrap_cell(cz + dz));
              if (other < home) continue;  // visit each cell pair once
              for (std::size_t a : bins[home]) {
                for (std::size_t b : bins[other]) {
                  if (home == other && b <= a) continue;
                  const Vec3 d = box.displacement(positions[a], positions[b]);
                  const double dist_sq = dot(d, d);
                  if (dist_sq >= cutoff_sq || dist_sq == 0.0) continue;
                  const double dist = std::sqrt(dist_sq);
                  lists_[a].push_back(Neighbor{b, d, dist});
                  lists_[b].push_back(Neighbor{a, Vec3{-d[0], -d[1], -d[2]}, dist});
                }
              }
            }
          }
        }
      }
    }
  }
}

VerletList::VerletList(const Box& box, double cutoff, double skin)
    : box_(box), cutoff_(cutoff), skin_(skin) {
  if (skin < 0.0) throw util::ValueError("verlet skin must be >= 0");
  if (cutoff + skin > box.max_cutoff() + 1e-12) {
    throw util::ValueError("verlet cutoff + skin exceeds half the box edge");
  }
}

bool VerletList::needs_rebuild(const std::vector<Vec3>& positions) const {
  if (!list_ || positions.size() != reference_positions_.size()) return true;
  const double threshold_sq = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 d = box_.displacement(reference_positions_[i], positions[i]);
    if (dot(d, d) > threshold_sq) return true;
  }
  return false;
}

const NeighborList& VerletList::update(const std::vector<Vec3>& positions) {
  if (needs_rebuild(positions)) {
    list_ = std::make_unique<NeighborList>(box_, positions, cutoff_ + skin_);
    reference_positions_ = positions;
    ++rebuilds_;
  }
  return *list_;
}

double NeighborList::mean_neighbors() const {
  if (lists_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : lists_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(lists_.size());
}

}  // namespace dpho::md
