#include "md/neighbor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::md {

NeighborList::NeighborList(const Box& box, const std::vector<Vec3>& positions,
                           double cutoff, NeighborBuild mode) {
  build(box, positions, cutoff, mode);
}

void NeighborList::build(const Box& box, const std::vector<Vec3>& positions,
                         double cutoff, NeighborBuild mode) {
  if (cutoff <= 0.0) throw util::ValueError("neighbor cutoff must be positive");
  if (cutoff > box.max_cutoff() + 1e-12) {
    throw util::ValueError("neighbor cutoff exceeds half the box edge");
  }
  cutoff_ = cutoff;
  pairs_.clear();
  const auto cells_per_side = static_cast<std::size_t>(box.length() / cutoff);
  bool use_cells = cells_per_side >= 3;
  if (mode == NeighborBuild::kBruteForce) use_cells = false;
  if (mode == NeighborBuild::kCells && !use_cells) {
    throw util::ValueError("cell-list build needs a box >= 3 cells wide");
  }
  if (use_cells) {
    build_cells(box, positions);
    used_cells_ = true;
  } else {
    build_brute_force(box, positions);
    used_cells_ = false;
  }
  compress(positions.size());
}

void NeighborList::compress(std::size_t num_atoms) {
  // CSR: count both endpoints of every half-pair, prefix-sum into row
  // offsets, then cursor-fill the flat array.  Emitting pairs in enumeration
  // order keeps each atom's row in exactly the order the old per-atom
  // push_back produced, so downstream summation order is unchanged.
  offsets_.assign(num_atoms + 1, 0);
  for (const HalfPair& pair : pairs_) {
    ++offsets_[pair.i + 1];
    ++offsets_[pair.j + 1];
  }
  for (std::size_t i = 0; i < num_atoms; ++i) offsets_[i + 1] += offsets_[i];
  flat_.resize(offsets_.back());

  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (const HalfPair& pair : pairs_) {
    flat_[cursor_[pair.i]++] =
        Neighbor{pair.j, pair.displacement, pair.distance};
    flat_[cursor_[pair.j]++] = Neighbor{
        pair.i,
        Vec3{-pair.displacement[0], -pair.displacement[1], -pair.displacement[2]},
        pair.distance};
  }
}

void NeighborList::build_brute_force(const Box& box,
                                     const std::vector<Vec3>& positions) {
  const double cutoff_sq = cutoff_ * cutoff_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const Vec3 d = box.displacement(positions[i], positions[j]);
      const double dist_sq = dot(d, d);
      if (dist_sq >= cutoff_sq || dist_sq == 0.0) continue;
      pairs_.push_back(HalfPair{i, j, d, std::sqrt(dist_sq)});
    }
  }
}

void NeighborList::build_cells(const Box& box,
                               const std::vector<Vec3>& positions) {
  const auto cells = static_cast<long>(box.length() / cutoff_);
  const double cell_size = box.length() / static_cast<double>(cells);
  const auto cell_of = [&](const Vec3& r) {
    const Vec3 w = box.wrap(r);
    long cx = static_cast<long>(w[0] / cell_size);
    long cy = static_cast<long>(w[1] / cell_size);
    long cz = static_cast<long>(w[2] / cell_size);
    cx = std::min(cx, cells - 1);
    cy = std::min(cy, cells - 1);
    cz = std::min(cz, cells - 1);
    return (cx * cells + cy) * cells + cz;
  };

  // Counting-sort atoms into flattened CSR bins.  Atoms land in each bin in
  // ascending atom order -- the same order the old per-bin push_back
  // produced -- so the pair enumeration below is unchanged.
  const auto num_cells = static_cast<std::size_t>(cells * cells * cells);
  atom_cell_.resize(positions.size());
  bin_offsets_.assign(num_cells + 1, 0);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto c = static_cast<std::size_t>(cell_of(positions[i]));
    atom_cell_[i] = c;
    ++bin_offsets_[c + 1];
  }
  for (std::size_t c = 0; c < num_cells; ++c) bin_offsets_[c + 1] += bin_offsets_[c];
  bin_atoms_.resize(positions.size());
  bin_cursor_.assign(bin_offsets_.begin(), bin_offsets_.end() - 1);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    bin_atoms_[bin_cursor_[atom_cell_[i]]++] = i;
  }
  const auto bin = [&](std::size_t c) {
    return std::span<const std::size_t>(bin_atoms_)
        .subspan(bin_offsets_[c], bin_offsets_[c + 1] - bin_offsets_[c]);
  };

  const double cutoff_sq = cutoff_ * cutoff_;
  const auto wrap_cell = [&](long c) { return ((c % cells) + cells) % cells; };
  for (long cx = 0; cx < cells; ++cx) {
    for (long cy = 0; cy < cells; ++cy) {
      for (long cz = 0; cz < cells; ++cz) {
        const auto home =
            static_cast<std::size_t>((cx * cells + cy) * cells + cz);
        for (long dx = -1; dx <= 1; ++dx) {
          for (long dy = -1; dy <= 1; ++dy) {
            for (long dz = -1; dz <= 1; ++dz) {
              const auto other = static_cast<std::size_t>(
                  (wrap_cell(cx + dx) * cells + wrap_cell(cy + dy)) * cells +
                  wrap_cell(cz + dz));
              if (other < home) continue;  // visit each cell pair once
              for (std::size_t a : bin(home)) {
                for (std::size_t b : bin(other)) {
                  if (home == other && b <= a) continue;
                  const Vec3 d = box.displacement(positions[a], positions[b]);
                  const double dist_sq = dot(d, d);
                  if (dist_sq >= cutoff_sq || dist_sq == 0.0) continue;
                  pairs_.push_back(HalfPair{a, b, d, std::sqrt(dist_sq)});
                }
              }
            }
          }
        }
      }
    }
  }
}

VerletList::VerletList(const Box& box, double cutoff, double skin,
                       NeighborBuild mode)
    : box_(box), cutoff_(cutoff), skin_(skin), mode_(mode) {
  if (skin < 0.0) throw util::ValueError("verlet skin must be >= 0");
  if (cutoff + skin > box.max_cutoff() + 1e-12) {
    throw util::ValueError("verlet cutoff + skin exceeds half the box edge");
  }
}

bool VerletList::needs_rebuild(const std::vector<Vec3>& positions) const {
  if (!built_ || positions.size() != reference_positions_.size()) return true;
  const double threshold_sq = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 d = box_.displacement(reference_positions_[i], positions[i]);
    if (dot(d, d) > threshold_sq) return true;
  }
  return false;
}

const NeighborList& VerletList::update(const std::vector<Vec3>& positions) {
  if (needs_rebuild(positions)) {
    list_.build(box_, positions, cutoff_ + skin_, mode_);
    built_ = true;
    // assign() reuses reference_positions_' capacity: no allocation once the
    // atom count is stable.
    reference_positions_.assign(positions.begin(), positions.end());
    ++rebuilds_;
  }
  return list_;
}

double NeighborList::mean_neighbors() const {
  if (size() == 0) return 0.0;
  return static_cast<double>(flat_.size()) / static_cast<double>(size());
}

}  // namespace dpho::md
