// Training-data frames and dataset management.
//
// Mirrors the DeePMD on-disk data model: a system directory holds
// `type.raw` (per-atom type ids), `type_map.raw` (id -> element), and one or
// more `set.NNN/` subdirectories with coord.npy [nframes, natoms*3],
// energy.npy [nframes], force.npy [nframes, natoms*3] and box.npy
// [nframes, 9].  Section 2.1.3: frames are shuffled and 25% withheld as the
// validation set.
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "md/system.hpp"
#include "util/rng.hpp"

namespace dpho::md {

/// One labelled configuration.
struct Frame {
  std::vector<Vec3> positions;
  std::vector<Vec3> forces;
  double energy = 0.0;      // total potential energy, eV
  double box_length = 0.0;  // cubic box edge, Angstrom
};

/// A set of frames sharing one atom-type vector.
class FrameDataset {
 public:
  FrameDataset() = default;
  explicit FrameDataset(std::vector<Species> types) : types_(std::move(types)) {}

  const std::vector<Species>& types() const { return types_; }
  std::size_t num_atoms() const { return types_.size(); }
  std::size_t size() const { return frames_.size(); }
  bool empty() const { return frames_.empty(); }

  void add(Frame frame);
  const Frame& frame(std::size_t i) const { return frames_.at(i); }

  /// Unchecked view of every frame, for hot loops that already validated
  /// their indices (the trainer samples a frame per batch slot per step).
  std::span<const Frame> frames() const { return frames_; }

  /// In-place Fisher-Yates shuffle of the frame order.
  void shuffle(util::Rng& rng);

  /// Splits off the last `fraction` of frames as a second dataset
  /// (call shuffle() first for a random split).
  std::pair<FrameDataset, FrameDataset> split(double validation_fraction) const;

  /// Writes the DeePMD-style directory layout described above.
  void save(const std::filesystem::path& dir) const;

  /// Loads a dataset previously written by save().
  static FrameDataset load(const std::filesystem::path& dir);

  /// Mean energy per atom over all frames (used to normalize training).
  double mean_energy_per_atom() const;

 private:
  std::vector<Species> types_;
  std::vector<Frame> frames_;
};

}  // namespace dpho::md
