#include "md/box.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::md {

Box::Box(double length) : length_(length), inv_length_(1.0 / length) {
  if (length <= 0.0) throw util::ValueError("box length must be positive");
}

Vec3 Box::displacement(const Vec3& ri, const Vec3& rj) const {
  Vec3 d = rj - ri;
  for (double& component : d) {
    component -= length_ * std::nearbyint(component * inv_length_);
  }
  return d;
}

double Box::distance(const Vec3& ri, const Vec3& rj) const {
  return norm(displacement(ri, rj));
}

Vec3 Box::wrap(const Vec3& r) const {
  Vec3 wrapped = r;
  for (double& component : wrapped) {
    component -= length_ * std::floor(component * inv_length_);
    if (component >= length_) component = 0.0;  // guard against fp edge
    if (component < 0.0) component = 0.0;
  }
  return wrapped;
}

}  // namespace dpho::md
