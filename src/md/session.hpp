// Persistent MD evaluation sessions: the zero-allocation force hot path.
//
// A PotentialSession owns everything an MD run reuses across steps -- the
// Verlet-skin neighbor list, a sorted candidate-pair skeleton, and all force
// workspace -- so a steady-state step performs zero heap allocations (the
// same contract dp's training kernels set in DESIGN.md section 8).  Topology
// is rebuilt only on skin triggers; between rebuilds each step refreshes
// distances in place from the *stale pair identities* (the Verlet guarantee:
// identities complete, distances outdated).
//
// Determinism contract: results are a pure function of (potential, options,
// state) -- never of the thread count.  The atom range is split into a fixed
// chunk partition (derived from N alone); chunks may run on any pool thread,
// but each chunk writes only the forces of its own contiguous atom range and
// its own energy partial, and partials are combined serially in chunk order.
// Candidate rows are sorted by neighbor id, so a session with a stale skin
// list walks pairs in exactly the order a fresh rebuild would -- trajectories
// are bit-identical across thread counts AND across skin settings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "md/box.hpp"
#include "md/neighbor.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace dpho::hpc {
class ThreadPool;
}

namespace dpho::md {

/// Shared knobs of a persistent evaluation session (reference or NNP).
struct SessionOptions {
  /// Verlet skin in Angstrom; clamped down so cutoff + skin fits the box.
  /// 0 rebuilds the topology every step.
  double skin = 0.8;
  /// Target atoms per chunk of the fixed partition.  The partition depends
  /// only on the atom count (never on the thread count), which is what keeps
  /// trajectories bit-identical at any parallelism.
  std::size_t chunk_atoms = 64;
  std::size_t max_chunks = 16;
  NeighborBuild neighbor_build = NeighborBuild::kAuto;
  /// Borrowed worker pool; nullptr evaluates chunks on the calling thread.
  /// The pool affects wall-clock only, never results.
  hpc::ThreadPool* pool = nullptr;
};

/// Stateful force evaluator bound to one system (fixed atom count, types and
/// box).  compute() is the per-step entry point of the MD loop.
class PotentialSession {
 public:
  virtual ~PotentialSession() = default;

  /// Evaluates energy and forces at `state`'s positions, writing forces into
  /// the caller-owned span (size == state.size()).  Zero heap allocations in
  /// steady state.  Throws ValueError if the state's size or box does not
  /// match the system the session was warmed on.
  virtual double compute(const SystemState& state, std::span<Vec3> forces) = 0;

  /// True interaction cutoff in Angstrom.
  virtual double cutoff() const = 0;
  /// Actual (clamped) Verlet skin; meaningful after the first compute().
  virtual double skin() const = 0;
  /// Number of compute() calls so far.
  virtual std::size_t steps() const = 0;
  /// Number of Verlet rebuilds so far (rebuilds < steps once the skin engages).
  virtual std::size_t neighbor_rebuilds() const = 0;
};

/// PotentialSession over the classical ReferencePotential.
///
/// Forces use the full-neighbor form: every pair is evaluated at both
/// centers (half energy weight each), so a chunk owns all writes to its own
/// atoms' forces and needs no cross-chunk reduction buffers.
class ReferenceSession final : public PotentialSession {
 public:
  explicit ReferenceSession(const ReferencePotential& potential,
                            const SessionOptions& options = {});

  double compute(const SystemState& state, std::span<Vec3> forces) override;
  double cutoff() const override { return potential_.cutoff(); }
  double skin() const override { return skin_; }
  std::size_t steps() const override { return steps_; }
  std::size_t neighbor_rebuilds() const override;

  std::size_t num_chunks() const { return num_chunks_; }

 private:
  void initialize(const SystemState& state);
  void rebuild_skeleton(const NeighborList& list);
  void eval_chunk(std::size_t c, const SystemState& state,
                  std::span<Vec3> forces);

  ReferencePotential potential_;
  SessionOptions options_;
  double skin_ = 0.0;
  Box box_{1.0};
  std::size_t num_atoms_ = 0;
  bool initialized_ = false;
  std::optional<VerletList> verlet_;
  std::size_t seen_rebuilds_ = 0;
  std::size_t steps_ = 0;

  // Fixed chunk partition (function of N only).
  std::size_t num_chunks_ = 1;
  std::vector<std::size_t> chunk_begin_;  // num_chunks_ + 1
  std::vector<double> chunk_energy_;

  // Candidate skeleton: per-atom neighbor ids from the Verlet list, sorted
  // ascending (canonical order; see file comment).  Rebuilt on skin triggers.
  std::vector<std::size_t> skel_offsets_;  // num_atoms_ + 1
  std::vector<std::uint32_t> skel_index_;
};

/// Splits [0, num_atoms) into the session chunk partition; shared by the
/// reference and NNP sessions so both backends chunk identically.
std::vector<std::size_t> make_chunk_partition(std::size_t num_atoms,
                                              const SessionOptions& options);

}  // namespace dpho::md
