// Minimal NumPy .npy (format version 1.0) reader/writer for float64 arrays.
//
// The paper converts FPMD output to "energy, force, box values in Numpy
// arrays" for DeePMD (section 2.1.3); we persist datasets in the same on-disk
// layout so the pipeline shape is faithful and files are inspectable with
// NumPy itself.
#pragma once

#include <cstddef>
#include <filesystem>
#include <vector>

namespace dpho::md {

/// A dense little-endian float64 array with a shape.
struct NpyArray {
  std::vector<std::size_t> shape;
  std::vector<double> data;

  std::size_t rows() const { return shape.empty() ? 0 : shape[0]; }
  std::size_t row_width() const;
  std::size_t size() const { return data.size(); }
};

/// Writes `array` as an .npy v1.0 file ('<f8', C order).
void write_npy(const std::filesystem::path& path, const NpyArray& array);

/// Reads an .npy file; accepts only '<f8' C-order arrays.
NpyArray read_npy(const std::filesystem::path& path);

}  // namespace dpho::md
