// Neighbor search: linked-cell lists with a brute-force fallback and
// reference implementation.
//
// Both the classical reference potential and the DeepPot-SE descriptor need
// "all neighbors of atom i within a radial cutoff".  The cell list is O(N)
// for boxes at least three cells wide; smaller boxes (like the paper's
// 17.84 Angstrom box with an 8+ Angstrom cutoff) automatically fall back to
// the O(N^2) exact scan, which is still cheap at 160 atoms.
//
// Storage is CSR (counts -> prefix-sum offsets -> one flat Neighbor array,
// the lgrtk/CabanaMD layout): the whole topology is two allocations and
// per-atom iteration is a contiguous streaming read, instead of one heap
// vector per atom.  `build()` reuses every internal buffer (pair scratch,
// CSR rows, flattened cell bins), so a warmed list rebuilds without heap
// traffic -- the property the MD sessions' zero-allocation contract rests on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "md/box.hpp"
#include "md/system.hpp"

namespace dpho::md {

/// One neighbor of a central atom.
struct Neighbor {
  std::size_t index = 0;  // neighbor atom id
  Vec3 displacement{};    // minimum-image r_j - r_i
  double distance = 0.0;
};

/// Which enumeration a NeighborList build uses.  kAuto picks cells when the
/// box is at least three cells wide (O(N)) and the exact O(N^2) scan
/// otherwise; the explicit modes exist for the bench's scaling curves and
/// for tests pinning one path.
enum class NeighborBuild { kAuto, kBruteForce, kCells };

/// Full per-atom neighbor lists (i's list contains j and j's contains i),
/// stored as one flat CSR array indexed by per-atom offsets.
class NeighborList {
 public:
  /// Empty list; call build() before use.
  NeighborList() = default;

  /// Builds lists for all atoms within `cutoff`; throws ValueError when the
  /// cutoff exceeds half the box edge.
  NeighborList(const Box& box, const std::vector<Vec3>& positions, double cutoff,
               NeighborBuild mode = NeighborBuild::kAuto);

  /// Rebuilds in place, reusing all internal storage (grow-only capacity).
  /// Enumeration order is identical to a freshly constructed list.  Throws
  /// ValueError for an invalid cutoff, or for mode kCells when the box is
  /// under three cells wide.
  void build(const Box& box, const std::vector<Vec3>& positions, double cutoff,
             NeighborBuild mode = NeighborBuild::kAuto);

  std::span<const Neighbor> neighbors_of(std::size_t i) const {
    return std::span<const Neighbor>(flat_).subspan(offsets_[i],
                                                    offsets_[i + 1] - offsets_[i]);
  }
  std::size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  double cutoff() const { return cutoff_; }

  /// Mean neighbor count, a load metric used by the benches.
  double mean_neighbors() const;

  /// True when the cell-list path (rather than the exact scan) was used.
  bool used_cells() const { return used_cells_; }

 private:
  /// One directed half-pair from the enumeration; the CSR fill emits it into
  /// both endpoint rows, preserving the enumeration order per atom.
  struct HalfPair {
    std::size_t i = 0;
    std::size_t j = 0;
    Vec3 displacement{};  // r_j - r_i
    double distance = 0.0;
  };

  void build_brute_force(const Box& box, const std::vector<Vec3>& positions);
  void build_cells(const Box& box, const std::vector<Vec3>& positions);
  /// counts -> offsets -> flat fill, in the half-pair enumeration order.
  void compress(std::size_t num_atoms);

  double cutoff_ = 0.0;
  bool used_cells_ = false;
  std::vector<std::size_t> offsets_;  // num_atoms + 1
  std::vector<Neighbor> flat_;        // offsets_.back() entries

  // Rebuild scratch, reused across build() calls (grow-only).
  std::vector<HalfPair> pairs_;
  std::vector<std::size_t> cursor_;
  // Flattened cell bins (CSR over cells): the same counting-sort layout as
  // the neighbor rows themselves, so binning allocates nothing once warmed.
  std::vector<std::size_t> bin_offsets_;
  std::vector<std::size_t> bin_cursor_;
  std::vector<std::size_t> bin_atoms_;
  std::vector<std::size_t> atom_cell_;
};

/// Verlet list: a NeighborList built at cutoff + skin, reused across MD steps
/// until any atom has moved more than skin/2 (after which pairs could have
/// entered the true cutoff unseen).  Callers filter pairs by the true cutoff
/// themselves (Neighbor::distance is *stale* between rebuilds; only the pair
/// identities are guaranteed complete).
class VerletList {
 public:
  VerletList(const Box& box, double cutoff, double skin,
             NeighborBuild mode = NeighborBuild::kAuto);

  /// Returns the current pair list, rebuilding in place (no allocation once
  /// warmed) if any atom moved > skin/2 since the last rebuild.
  const NeighborList& update(const std::vector<Vec3>& positions);

  const Box& box() const { return box_; }
  double cutoff() const { return cutoff_; }
  double skin() const { return skin_; }
  std::size_t rebuild_count() const { return rebuilds_; }

 private:
  bool needs_rebuild(const std::vector<Vec3>& positions) const;

  Box box_;
  double cutoff_;
  double skin_;
  NeighborBuild mode_;
  std::size_t rebuilds_ = 0;
  std::vector<Vec3> reference_positions_;
  bool built_ = false;
  NeighborList list_;
};

}  // namespace dpho::md
