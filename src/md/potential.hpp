// Classical reference potential for the molten AlCl3-KCl system.
//
// Stand-in for the paper's CP2K DFT level of theory (section 2.1.3).  The
// model is a rigid-ion Born-Mayer-Huggins short-range repulsion plus r^-6
// dispersion plus Wolf-damped Coulomb electrostatics, with a shifted-force
// cutoff so that both the energy and the force are continuous at the cutoff
// (required for NVE energy conservation, which the tests verify).  Energies
// are eV, distances Angstrom, forces eV/Angstrom.
#pragma once

#include <array>
#include <vector>

#include "md/box.hpp"
#include "md/neighbor.hpp"
#include "md/system.hpp"

namespace dpho::md {

/// Raw (unshifted) pair interaction parameters for one species pair.
struct PairParams {
  double bmh_a = 0.0;       // eV, Born-Mayer prefactor b
  double bmh_sigma = 0.0;   // Angstrom, sum of ionic radii
  double bmh_rho = 0.32;    // Angstrom, softness
  double dispersion_c = 0.0;  // eV Angstrom^6
  double charge_product = 0.0;  // e^2
};

/// Energy + forces of one configuration.
struct ForceEnergy {
  double energy = 0.0;              // total potential energy, eV
  std::vector<Vec3> forces;         // per atom, eV/Angstrom
};

/// The full reference potential.
class ReferencePotential {
 public:
  /// `cutoff` in Angstrom; `wolf_alpha` is the Coulomb damping parameter.
  explicit ReferencePotential(double cutoff = 8.5, double wolf_alpha = 0.2);

  double cutoff() const { return cutoff_; }

  /// Raw pair energy before the shifted-force correction.
  double raw_pair_energy(Species a, Species b, double r) const;
  /// Raw derivative dU/dr.
  double raw_pair_energy_derivative(Species a, Species b, double r) const;

  /// Shifted-force pair energy: zero value and zero derivative at the cutoff.
  double pair_energy(Species a, Species b, double r) const;
  /// Scalar pair force magnitude along +r (i.e. -dU_sf/dr).
  double pair_force(Species a, Species b, double r) const;

  /// Total energy and forces using a caller-provided neighbor list.
  ForceEnergy compute(const SystemState& state, const NeighborList& neighbors) const;

  /// Caller-owned-output overload: identical arithmetic and summation order
  /// as above, but writes into `out` (reusing its capacity) instead of
  /// allocating a fresh ForceEnergy -- the per-step path of the MD sessions.
  void compute(const SystemState& state, const NeighborList& neighbors,
               ForceEnergy& out) const;

  /// Convenience overload that builds the neighbor list itself.
  ForceEnergy compute(const SystemState& state) const;

 private:
  const PairParams& params(Species a, Species b) const;

  double cutoff_;
  double wolf_alpha_;
  std::array<PairParams, kNumSpecies * kNumSpecies> pair_params_{};
  std::array<double, kNumSpecies * kNumSpecies> shift_energy_{};
  std::array<double, kNumSpecies * kNumSpecies> shift_slope_{};
};

/// Coulomb constant e^2 / (4 pi eps0) in eV Angstrom.
inline constexpr double kCoulombEvAng = 14.399645;

}  // namespace dpho::md
