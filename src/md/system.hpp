// Atomistic system specification for the molten-salt reference simulations.
//
// The paper's training data comes from CP2K DFT FPMD of a molten
// AlCl3-KCl mixture (66.7/33.3 mol%), 160 atoms in a 17.84 Angstrom cubic box
// at 498 K (section 2.1.3).  We reproduce that exact composition:
//   32 AlCl3 units + 16 KCl units = 32 Al + 16 K + 112 Cl = 160 atoms,
// net charge zero with formal charges +3/+1/-1.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dpho::md {

/// Chemical species present in the reference system.
enum class Species : std::uint8_t { kAl = 0, kK = 1, kCl = 2 };
inline constexpr std::size_t kNumSpecies = 3;

std::string to_string(Species species);
Species species_from_string(const std::string& name);

/// Per-species physical constants.
struct SpeciesInfo {
  double mass_amu = 0.0;    // atomic mass
  double charge_e = 0.0;    // (scaled) ionic charge in elementary charges
  double radius_ang = 0.0;  // ionic radius, used by the BMH parameterization
};

/// Returns the built-in species table.  Charges are formal charges scaled by
/// 0.7, a common choice for non-polarizable molten-salt force fields that
/// compensates for missing electronic screening.
const SpeciesInfo& species_info(Species species);

/// 3-vector used throughout the md/dp modules.  A named struct (not an alias
/// of std::array) so the arithmetic operators are found by ADL from any
/// namespace.
struct Vec3 {
  std::array<double, 3> v{};

  Vec3() = default;
  Vec3(double x, double y, double z) : v{x, y, z} {}

  double& operator[](std::size_t i) { return v[i]; }
  double operator[](std::size_t i) const { return v[i]; }
  auto begin() { return v.begin(); }
  auto end() { return v.end(); }
  auto begin() const { return v.begin(); }
  auto end() const { return v.end(); }
};

inline Vec3 operator+(const Vec3& a, const Vec3& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}
inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}
inline Vec3 operator*(const Vec3& a, double s) {
  return {a[0] * s, a[1] * s, a[2] * s};
}
inline Vec3 operator*(double s, const Vec3& a) { return a * s; }
inline double dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}
double norm(const Vec3& a);

/// The mutable state of a simulation: types never change, positions and
/// velocities do.
struct SystemState {
  std::vector<Species> types;
  std::vector<Vec3> positions;   // Angstrom
  std::vector<Vec3> velocities;  // Angstrom / fs
  double box_length = 0.0;       // cubic box edge, Angstrom

  std::size_t size() const { return types.size(); }
};

/// Composition + construction of initial configurations.
class SystemSpec {
 public:
  /// The paper's system: 32 Al + 16 K + 112 Cl in a 17.84 Angstrom box.
  static SystemSpec paper_system();

  /// A smaller system with the same 2:1 AlCl3:KCl composition, for tests and
  /// laptop-scale training runs.  `units` is the number of KCl formula units;
  /// atoms = 10 * units (2 AlCl3 + 1 KCl per "motif" = 10 atoms).
  static SystemSpec scaled_system(std::size_t kcl_units);

  SystemSpec(std::size_t n_al, std::size_t n_k, std::size_t n_cl, double box_length);

  std::size_t n_al() const { return n_al_; }
  std::size_t n_k() const { return n_k_; }
  std::size_t n_cl() const { return n_cl_; }
  std::size_t total_atoms() const { return n_al_ + n_k_ + n_cl_; }
  double box_length() const { return box_length_; }

  /// Net charge in elementary charges (zero for valid compositions).
  double net_charge() const;

  /// Places ions on a jittered simple-cubic lattice with species shuffled,
  /// and draws Maxwell-Boltzmann velocities at `temperature_k`.
  SystemState create_initial_state(double temperature_k, util::Rng& rng) const;

 private:
  std::size_t n_al_, n_k_, n_cl_;
  double box_length_;
};

/// Instantaneous kinetic temperature in Kelvin.
double kinetic_temperature(const SystemState& state);

/// Total kinetic energy in eV.
double kinetic_energy(const SystemState& state);

/// Boltzmann constant in eV/K.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Acceleration conversion: (eV/Angstrom)/amu -> Angstrom/fs^2.
inline constexpr double kForceToAccel = 9.648533212e-3;

}  // namespace dpho::md
