#include "md/npy.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dpho::md {

namespace {

constexpr char kMagic[] = "\x93NUMPY";

std::string shape_to_header(const std::vector<std::size_t>& shape) {
  std::ostringstream out;
  out << "{'descr': '<f8', 'fortran_order': False, 'shape': (";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    out << shape[i];
    if (shape.size() == 1 || i + 1 < shape.size()) out << ",";
    if (i + 1 < shape.size()) out << " ";
  }
  out << "), }";
  return out.str();
}

}  // namespace

std::size_t NpyArray::row_width() const {
  if (shape.size() < 2) return 1;
  std::size_t width = 1;
  for (std::size_t i = 1; i < shape.size(); ++i) width *= shape[i];
  return width;
}

void write_npy(const std::filesystem::path& path, const NpyArray& array) {
  std::size_t expected = array.shape.empty() ? 0 : 1;
  for (std::size_t dim : array.shape) expected *= dim;
  if (expected != array.data.size()) {
    throw util::ValueError("npy: shape does not match data size");
  }
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("npy: cannot open for writing: " + path.string());

  std::string header = shape_to_header(array.shape);
  // Pad so that magic(6) + version(2) + len(2) + header is a multiple of 64.
  const std::size_t unpadded = 6 + 2 + 2 + header.size() + 1;  // +1 for '\n'
  const std::size_t padding = (64 - unpadded % 64) % 64;
  header.append(padding, ' ');
  header.push_back('\n');

  out.write(kMagic, 6);
  const char version[2] = {1, 0};
  out.write(version, 2);
  const auto header_len = static_cast<std::uint16_t>(header.size());
  const char len_bytes[2] = {static_cast<char>(header_len & 0xff),
                             static_cast<char>(header_len >> 8)};
  out.write(len_bytes, 2);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(array.data.data()),
            static_cast<std::streamsize>(array.data.size() * sizeof(double)));
  if (!out) throw util::IoError("npy: short write: " + path.string());
}

NpyArray read_npy(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("npy: cannot open for reading: " + path.string());

  char magic[6];
  in.read(magic, 6);
  if (!in || std::memcmp(magic, kMagic, 6) != 0) {
    throw util::ParseError("npy: bad magic in " + path.string());
  }
  char version[2];
  in.read(version, 2);
  if (!in || version[0] != 1) {
    throw util::ParseError("npy: unsupported version in " + path.string());
  }
  char len_bytes[2];
  in.read(len_bytes, 2);
  const std::size_t header_len = static_cast<unsigned char>(len_bytes[0]) |
                                 (static_cast<unsigned char>(len_bytes[1]) << 8);
  std::string header(header_len, '\0');
  in.read(header.data(), static_cast<std::streamsize>(header_len));
  if (!in) throw util::ParseError("npy: truncated header in " + path.string());

  if (header.find("'<f8'") == std::string::npos) {
    throw util::ParseError("npy: only '<f8' arrays supported");
  }
  if (header.find("'fortran_order': False") == std::string::npos) {
    throw util::ParseError("npy: only C-order arrays supported");
  }
  const std::size_t open = header.find('(');
  const std::size_t close = header.find(')', open);
  if (open == std::string::npos || close == std::string::npos) {
    throw util::ParseError("npy: missing shape tuple");
  }
  NpyArray array;
  std::string token;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = header[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      token.push_back(c);
    } else if (!token.empty()) {
      array.shape.push_back(std::stoull(token));
      token.clear();
    }
  }
  std::size_t total = array.shape.empty() ? 0 : 1;
  for (std::size_t dim : array.shape) total *= dim;
  array.data.resize(total);
  in.read(reinterpret_cast<char*>(array.data.data()),
          static_cast<std::streamsize>(total * sizeof(double)));
  if (!in) throw util::ParseError("npy: truncated data in " + path.string());
  return array;
}

}  // namespace dpho::md
