// dpho_report: render a run's observability artifacts as a text report.
//
//   dpho_report [--summary metrics_summary.json] [--timeline metrics.jsonl]
//               [--section deterministic|timing] [--fnv1a FILE] [--out FILE]
//
// With --summary and/or --timeline, prints the combined report (metrics
// tables + histogram bars + per-kind event counts + wave table).  The two
// plumbing modes back tests/golden/regen.sh:
//   --section NAME  print only that section of the summary as indented JSON
//                   (the byte-exact form the golden tests compare), and
//   --fnv1a FILE    print the FNV-1a 64-bit digest of FILE's bytes as hex.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/report.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace {

int usage() {
  std::fputs(
      "usage: dpho_report [--summary metrics_summary.json]"
      " [--timeline metrics.jsonl]\n"
      "                   [--section deterministic|timing] [--fnv1a FILE]"
      " [--out FILE]\n",
      stderr);
  return 2;
}

/// FNV-1a 64-bit; the digest the golden-run tests pin checkpoints with.
std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpho;
  std::string summary_path;
  std::string timeline_path;
  std::string section;
  std::string fnv1a_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const auto take = [&](std::string& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (std::strcmp(argv[i], "--summary") == 0) {
      if (!take(summary_path)) return usage();
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      if (!take(timeline_path)) return usage();
    } else if (std::strcmp(argv[i], "--section") == 0) {
      if (!take(section)) return usage();
    } else if (std::strcmp(argv[i], "--fnv1a") == 0) {
      if (!take(fnv1a_path)) return usage();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (!take(out_path)) return usage();
    } else {
      return usage();
    }
  }
  if (summary_path.empty() && timeline_path.empty() && fnv1a_path.empty()) {
    return usage();
  }

  try {
    std::string report;
    if (!fnv1a_path.empty()) {
      char digest[32];
      std::snprintf(digest, sizeof digest, "%016llx\n",
                    static_cast<unsigned long long>(
                        fnv1a64(util::read_file(fnv1a_path))));
      report += digest;
    }
    if (!summary_path.empty()) {
      const util::Json summary =
          util::Json::parse(util::read_file(summary_path));
      if (!section.empty()) {
        report += summary.at(section).dump(2) + "\n";
      } else {
        report += obs::render_summary(summary);
      }
    }
    if (!timeline_path.empty()) {
      if (!report.empty() && report.back() != '\n') report += "\n";
      report += obs::render_timeline(obs::load_timeline(timeline_path));
    }
    if (out_path.empty()) {
      std::fputs(report.c_str(), stdout);
    } else {
      util::write_file(out_path, report);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpho_report: %s\n", e.what());
    return 1;
  }
}
