// Run-wide metrics: counters, gauges and fixed-bucket histograms behind one
// thread-safe registry with deterministic (byte-reproducible) output.
//
// The paper's headline result is operational: NSGA-II at Summit scale is
// tuned by watching where evaluation time goes -- node idle fraction,
// per-individual training cost, retry churn (section 2.2.5).  This registry
// is the substrate those quantities flow through instead of ad-hoc structs
// in every bench and driver.
//
// Determinism contract.  Every metric belongs to a Section:
//
//   * kDeterministic -- values derived from the simulated timeline or from
//     logical event counts.  Snapshots of this section are byte-identical
//     across repeated runs AND across `--threads N`: counters are integer
//     adds, gauges hold last-written (deterministic) values, and histograms
//     accumulate order-independently -- per-bucket integer counts plus a
//     fixed-point (microunit) sum, so no float-accumulation order leaks in.
//   * kTiming -- wall-clock measurements (ScopedTimer output).  Excluded
//     from the deterministic snapshot; golden tests never see them.
//
// All mutation paths are lock-free atomics (relaxed; metrics impose no
// ordering on payload data), so instrumenting the training inner loop and
// the task farm costs a few atomic adds and stays clean under tsan.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dpho::obs {

/// Which snapshot a metric appears in (see the determinism contract above).
enum class Section : std::uint8_t {
  kDeterministic = 0,
  kTiming,
};

std::string to_string(Section section);

/// Monotonic integer counter.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed bucket boundaries for a histogram: strictly ascending finite upper
/// bounds; an implicit +inf overflow bucket is always appended.  The layout
/// is part of a metric's identity -- re-registering a name with a different
/// layout throws, so merged snapshots always line up bucket for bucket.
struct BucketLayout {
  std::vector<double> upper_bounds;

  /// first, first*factor, first*factor^2, ... (`count` bounds).
  static BucketLayout exponential(double first, double factor, std::size_t count);
  /// first, first+width, first+2*width, ... (`count` bounds).
  static BucketLayout linear(double first, double width, std::size_t count);
  /// The registry-wide default for ScopedTimer seconds: 1 us .. ~4.6 h.
  static BucketLayout timing_seconds();

  /// Index of the bucket a value lands in (values on a boundary land in the
  /// bucket whose upper bound they equal; the last index is the overflow).
  std::size_t bucket_of(double value) const;

  /// Throws util::ValueError unless bounds are finite and strictly ascending.
  void validate() const;

  bool operator==(const BucketLayout&) const = default;
};

/// Immutable copy of a histogram's state.  Merging snapshots is exact and
/// associative: integer bucket counts, an integer microunit sum, and min/max
/// -- no operation depends on accumulation order.
struct HistogramSnapshot {
  BucketLayout layout;
  std::vector<std::uint64_t> counts;  // layout.upper_bounds.size() + 1 buckets
  std::uint64_t count = 0;
  std::int64_t sum_micro = 0;  // sum of llround(value * 1e6)
  double min = 0.0;            // meaningful only when count > 0
  double max = 0.0;

  /// Exact merge; throws util::ValueError on layout mismatch.
  void merge(const HistogramSnapshot& other);

  double sum() const { return static_cast<double>(sum_micro) / 1e6; }
  double mean() const { return count == 0 ? 0.0 : sum() / static_cast<double>(count); }

  util::Json to_json() const;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Thread-safe fixed-bucket histogram.
class Histogram {
 public:
  explicit Histogram(BucketLayout layout);

  void record(double value);

  HistogramSnapshot snapshot() const;
  const BucketLayout& layout() const { return layout_; }
  void reset();

 private:
  BucketLayout layout_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_micro_{0};
  std::atomic<std::uint64_t> min_bits_;  // bit-cast doubles, CAS-updated
  std::atomic<std::uint64_t> max_bits_;
};

/// The run-wide metric namespace.  Handles returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime (and across reset()
/// -- reset zeroes values but keeps registrations), so hot paths can cache
/// them.  Registration takes a mutex; recording is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers on first use; later calls return the same instance.  Throws
  /// util::ValueError when `name` is already registered as a different
  /// metric type, section, or (histograms) bucket layout.
  Counter& counter(const std::string& name,
                   Section section = Section::kDeterministic);
  Gauge& gauge(const std::string& name,
               Section section = Section::kDeterministic);
  Histogram& histogram(const std::string& name, const BucketLayout& layout,
                       Section section = Section::kTiming);

  /// Full snapshot as JSON, keys sorted within each section:
  ///   {"schema": "dpho.metrics.v1",
  ///    "deterministic": {"counters": {...}, "gauges": {...},
  ///                      "histograms": {...}},
  ///    "timing": {...}}                     // omitted when include_timing=false
  util::Json to_json(bool include_timing = true) const;

  /// The byte-reproducible part only (== to_json(false).at("deterministic")).
  util::Json deterministic_json() const;

  /// Zeroes every value; registrations (and cached handles) stay valid.
  void reset();

  /// The process-wide registry instrumented code records into.
  static MetricsRegistry& global();

 private:
  struct Entry {
    Section section = Section::kDeterministic;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Shorthand for the global registry.
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace dpho::obs
