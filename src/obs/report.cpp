#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace dpho::obs {

namespace {

std::string format_number(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
  }
  return buffer;
}

void render_scalar_table(std::ostringstream& out, const std::string& title,
                         const util::Json& object) {
  if (!object.is_object() || object.as_object().empty()) return;
  out << "  " << title << ":\n";
  std::size_t width = 0;
  for (const auto& [name, value] : object.as_object()) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : object.as_object()) {
    out << "    " << name << std::string(width - name.size() + 2, ' ')
        << format_number(value.as_number()) << "\n";
  }
}

void render_histograms(std::ostringstream& out, const util::Json& histograms) {
  if (!histograms.is_object() || histograms.as_object().empty()) return;
  out << "  histograms:\n";
  for (const auto& [name, hist] : histograms.as_object()) {
    const auto count = static_cast<std::uint64_t>(hist.at("count").as_number());
    out << "    " << name << "  count=" << count
        << " sum=" << format_number(hist.at("sum").as_number());
    if (hist.contains("min")) {
      out << " min=" << format_number(hist.at("min").as_number())
          << " max=" << format_number(hist.at("max").as_number());
    }
    out << "\n";
    if (count == 0) continue;
    std::uint64_t peak = 0;
    for (const util::Json& bucket : hist.at("buckets").as_array()) {
      peak = std::max(peak,
                      static_cast<std::uint64_t>(bucket.at("count").as_number()));
    }
    for (const util::Json& bucket : hist.at("buckets").as_array()) {
      const auto n = static_cast<std::uint64_t>(bucket.at("count").as_number());
      if (n == 0) continue;
      const std::string le = bucket.at("le").is_string()
                                 ? bucket.at("le").as_string()
                                 : format_number(bucket.at("le").as_number());
      const auto bar = static_cast<std::size_t>(
          1 + (39 * n) / std::max<std::uint64_t>(peak, 1));
      char label[64];
      std::snprintf(label, sizeof label, "      le %-10s %8llu |", le.c_str(),
                    static_cast<unsigned long long>(n));
      out << label << std::string(bar, '#') << "\n";
    }
  }
}

}  // namespace

std::vector<util::Json> load_timeline(const std::filesystem::path& path) {
  const std::string text = util::read_file(path);
  std::vector<util::Json> events;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    events.push_back(util::Json::parse(line));
  }
  return events;
}

bool is_metrics_document(const util::Json& document) {
  if (!document.is_object()) return false;
  if (document.string_or("schema", "") != "dpho.metrics.v1") return false;
  for (const char* section : {"deterministic", "timing"}) {
    if (!document.contains(section)) return false;
    const util::Json& block = document.at(section);
    if (!block.is_object()) return false;
    for (const char* group : {"counters", "gauges", "histograms"}) {
      if (!block.contains(group) || !block.at(group).is_object()) return false;
    }
  }
  return true;
}

std::string render_summary(const util::Json& summary) {
  std::ostringstream out;
  out << "== metrics summary (" << summary.string_or("schema", "unknown schema")
      << ") ==\n";
  for (const char* section : {"deterministic", "timing"}) {
    if (!summary.contains(section)) continue;
    const util::Json& block = summary.at(section);
    out << "[" << section << "]\n";
    render_scalar_table(out, "counters", block.at("counters"));
    render_scalar_table(out, "gauges", block.at("gauges"));
    render_histograms(out, block.at("histograms"));
  }
  return out.str();
}

std::string render_timeline(const std::vector<util::Json>& events) {
  std::ostringstream out;
  out << "== event timeline (" << events.size() << " events) ==\n";
  std::map<std::string, std::size_t> by_kind;
  for (const util::Json& event : events) {
    ++by_kind[event.string_or("kind", "<missing kind>")];
  }
  std::size_t width = 0;
  for (const auto& [kind, count] : by_kind) width = std::max(width, kind.size());
  for (const auto& [kind, count] : by_kind) {
    out << "  " << kind << std::string(width - kind.size() + 2, ' ') << count
        << "\n";
  }

  bool header = false;
  for (const util::Json& event : events) {
    if (event.string_or("kind", "") != "engine.wave") continue;
    if (!header) {
      out << "\n  wave | evaluations | failures | node_failures | makespan_min\n";
      out << "  -----+-------------+----------+---------------+-------------\n";
      header = true;
    }
    char row[128];
    std::snprintf(row, sizeof row, "  %4lld | %11lld | %8lld | %13lld | %12.2f\n",
                  static_cast<long long>(event.number_or("generation", -1)),
                  static_cast<long long>(event.number_or("evaluations", 0)),
                  static_cast<long long>(event.number_or("failures", 0)),
                  static_cast<long long>(event.number_or("node_failures", 0)),
                  event.number_or("makespan_minutes", 0.0));
    out << row;
  }
  return out.str();
}

}  // namespace dpho::obs
