#include "obs/event_sink.hpp"

#include "util/error.hpp"

namespace dpho::obs {

void EventSink::open(const std::filesystem::path& path) {
  std::lock_guard lock(mutex_);
  if (out_.is_open()) out_.close();
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      throw util::IoError("cannot create timeline directory " +
                          path.parent_path().string() + ": " + ec.message());
    }
  }
  out_.open(path, std::ios::trunc);
  if (!out_) {
    throw util::IoError("cannot open event timeline: " + path.string());
  }
  seq_.store(0, std::memory_order_relaxed);
  opened_at_ = Clock::now();
  enabled_.store(true, std::memory_order_release);
}

void EventSink::close() {
  std::lock_guard lock(mutex_);
  enabled_.store(false, std::memory_order_release);
  if (out_.is_open()) out_.close();
}

void EventSink::emit(
    std::string_view kind,
    std::initializer_list<std::pair<std::string_view, util::Json>> fields) {
  if (!enabled()) return;
  util::JsonObject object;
  for (const auto& [key, value] : fields) object[std::string(key)] = value;
  emit(kind, object);
}

void EventSink::emit(std::string_view kind, const util::JsonObject& fields) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  if (!out_.is_open()) return;  // closed between the check and the lock
  util::Json event;
  event["seq"] = seq_.fetch_add(1, std::memory_order_relaxed);
  event["t_ms"] =
      std::chrono::duration<double, std::milli>(Clock::now() - opened_at_).count();
  event["kind"] = std::string(kind);
  for (const auto& [key, value] : fields) event[std::string(key)] = value;
  out_ << event.dump() << '\n';
  out_.flush();
}

EventSink& EventSink::global() {
  static EventSink sink;
  return sink;
}

}  // namespace dpho::obs
