// JSONL event timeline: one run-wide sequence of structured events.
//
// Generalizes hpc::trace (per-batch Gantt rows) into a single append-only
// timeline covering the whole deployment: engine births and waves, evaluator
// attempts with failure causes, trainer lcurve rows, task-farm submit/
// complete/retry, checkpoint save/load.  One JSON object per line:
//
//   {"seq": 17, "t_ms": 42.8, "kind": "engine.wave", "generation": 3, ...}
//
// `seq` is a process-wide monotonic sequence number; `t_ms` is wall
// milliseconds since the sink opened (diagnostic only -- byte-level
// reproducibility lives in the MetricsRegistry's deterministic snapshot, not
// in the timeline).  The sink is disabled until open(); emit() on a disabled
// sink is a cheap no-op, so instrumentation points need no guards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string_view>
#include <utility>

#include "util/json.hpp"

namespace dpho::obs {

class EventSink {
 public:
  EventSink() = default;
  EventSink(const EventSink&) = delete;
  EventSink& operator=(const EventSink&) = delete;
  ~EventSink() { close(); }

  /// Starts a timeline at `path` (truncating; parent directories are
  /// created).  Throws util::IoError when the file cannot be opened.
  void open(const std::filesystem::path& path);

  /// Flushes and disables the sink; emit() becomes a no-op again.
  void close();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Appends one event.  `fields` are spliced into the event object after
  /// seq/t_ms/kind.  Thread-safe; no-op while disabled.
  void emit(std::string_view kind,
            std::initializer_list<std::pair<std::string_view, util::Json>> fields);
  void emit(std::string_view kind, const util::JsonObject& fields);

  /// Events written since open() (0 while disabled).
  std::uint64_t events_written() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// The process-wide timeline instrumented code emits into.
  static EventSink& global();

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::mutex mutex_;
  std::ofstream out_;
  Clock::time_point opened_at_;
};

/// Shorthand for the global sink.
inline EventSink& events() { return EventSink::global(); }

}  // namespace dpho::obs
