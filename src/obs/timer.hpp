// RAII wall-clock timing into a registry histogram.
//
// ScopedTimer replaces the bench-local "start = now(); ... seconds_since()"
// structs: construction stamps the clock, destruction (or stop()) records
// elapsed seconds into a kTiming histogram.  Timing output is wall-clock and
// therefore never part of a deterministic snapshot (see obs/metrics.hpp).
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace dpho::obs {

class ScopedTimer {
 public:
  /// Times into an already-registered histogram.
  explicit ScopedTimer(Histogram& histogram) : histogram_(&histogram) {}

  /// Registers `name` as a kTiming histogram with the shared seconds layout
  /// (BucketLayout::timing_seconds()) in `registry` and times into it.
  ScopedTimer(MetricsRegistry& registry, const std::string& name)
      : histogram_(&registry.histogram(name, BucketLayout::timing_seconds(),
                                      Section::kTiming)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Seconds elapsed since construction.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Records now and disarms the destructor; idempotent.
  void stop() {
    if (histogram_ == nullptr) return;
    histogram_->record(seconds());
    histogram_ = nullptr;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_ = Clock::now();
};

}  // namespace dpho::obs
