// Text rendering of a run's metrics summary and event timeline.
//
// Backs the dpho_report tool (and its tests): turns metrics_summary.json and
// a JSONL timeline into the post-mortem report the paper's authors assembled
// by hand from Dask logs -- where evaluation time went, what failed and why,
// how busy the allocation was.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dpho::obs {

/// Parses a JSONL timeline file into event objects (one per line; blank
/// lines are skipped).  Throws util::ParseError on malformed lines.
std::vector<util::Json> load_timeline(const std::filesystem::path& path);

/// True when `document` is a structurally valid dpho.metrics.v1 summary:
/// matching schema tag and counters/gauges/histograms objects in both the
/// deterministic and timing sections.  Shared by the bench artifacts (which
/// embed a registry snapshot under a "metrics" key) and the report tool.
bool is_metrics_document(const util::Json& document);

/// Renders a metrics summary document (the dpho.metrics.v1 schema) as an
/// aligned text table: counters, gauges, then histograms with ASCII bars.
std::string render_summary(const util::Json& summary);

/// Renders a timeline: per-kind event counts plus a wave table distilled
/// from engine.wave events (generation, makespan, failures, node losses).
std::string render_timeline(const std::vector<util::Json>& events);

}  // namespace dpho::obs
