#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dpho::obs {

namespace {

/// Fixed-point microunits: an integer sum is exact and order-independent, so
/// concurrent recording cannot leak accumulation order into snapshots.
std::int64_t to_micro(double value) {
  return std::llround(value * 1e6);
}

/// Atomic min/max over bit-cast doubles.  Every recorded value is finite
/// (validated by record()), so plain double comparison on the decoded bits
/// is well-defined.
void atomic_min_double(std::atomic<std::uint64_t>& slot, double value) {
  std::uint64_t observed = slot.load(std::memory_order_relaxed);
  while (value < std::bit_cast<double>(observed) &&
         !slot.compare_exchange_weak(observed, std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& slot, double value) {
  std::uint64_t observed = slot.load(std::memory_order_relaxed);
  while (value > std::bit_cast<double>(observed) &&
         !slot.compare_exchange_weak(observed, std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed)) {
  }
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::string to_string(Section section) {
  switch (section) {
    case Section::kDeterministic: return "deterministic";
    case Section::kTiming: return "timing";
  }
  throw util::ValueError("invalid metrics section");
}

BucketLayout BucketLayout::exponential(double first, double factor,
                                       std::size_t count) {
  if (!(first > 0.0) || !(factor > 1.0)) {
    throw util::ValueError("exponential layout needs first > 0 and factor > 1");
  }
  BucketLayout layout;
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    layout.upper_bounds.push_back(bound);
    bound *= factor;
  }
  layout.validate();
  return layout;
}

BucketLayout BucketLayout::linear(double first, double width, std::size_t count) {
  if (!(width > 0.0)) throw util::ValueError("linear layout needs width > 0");
  BucketLayout layout;
  for (std::size_t i = 0; i < count; ++i) {
    layout.upper_bounds.push_back(first + width * static_cast<double>(i));
  }
  layout.validate();
  return layout;
}

BucketLayout BucketLayout::timing_seconds() {
  // 1 us * 4^k for k in [0, 17): ...  up to ~4.6 hours, 17 buckets + overflow.
  return exponential(1e-6, 4.0, 17);
}

std::size_t BucketLayout::bucket_of(double value) const {
  // First bound >= value; boundary values land in the bucket they bound.
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), value);
  return static_cast<std::size_t>(it - upper_bounds.begin());
}

void BucketLayout::validate() const {
  if (upper_bounds.empty()) {
    throw util::ValueError("bucket layout needs at least one bound");
  }
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    if (!std::isfinite(upper_bounds[i])) {
      throw util::ValueError("bucket bounds must be finite");
    }
    if (i > 0 && !(upper_bounds[i] > upper_bounds[i - 1])) {
      throw util::ValueError("bucket bounds must be strictly ascending");
    }
  }
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (layout != other.layout) {
    throw util::ValueError("cannot merge histograms with different layouts");
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
  sum_micro += other.sum_micro;
}

util::Json HistogramSnapshot::to_json() const {
  util::Json json;
  util::JsonArray buckets;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    util::Json bucket;
    if (i < layout.upper_bounds.size()) {
      bucket["le"] = layout.upper_bounds[i];
    } else {
      bucket["le"] = "inf";
    }
    bucket["count"] = counts[i];
    buckets.push_back(std::move(bucket));
  }
  json["buckets"] = util::Json(std::move(buckets));
  json["count"] = count;
  json["sum"] = sum();
  if (count > 0) {
    json["min"] = min;
    json["max"] = max;
  }
  return json;
}

Histogram::Histogram(BucketLayout layout)
    : layout_(std::move(layout)),
      counts_(layout_.upper_bounds.size() + 1),
      min_bits_(std::bit_cast<std::uint64_t>(kInf)),
      max_bits_(std::bit_cast<std::uint64_t>(-kInf)) {
  layout_.validate();
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::record(double value) {
  if (!std::isfinite(value)) {
    throw util::ValueError("histogram values must be finite");
  }
  counts_[layout_.bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(to_micro(value), std::memory_order_relaxed);
  atomic_min_double(min_bits_, value);
  atomic_max_double(max_bits_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.layout = layout_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micro = sum_micro_.load(std::memory_order_relaxed);
  const double min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  const double max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  snap.min = snap.count > 0 ? min : 0.0;
  snap.max = snap.count > 0 ? max : 0.0;
  return snap;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micro_.store(0, std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<std::uint64_t>(kInf), std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(-kInf), std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name, Section section) {
  std::lock_guard lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.gauge || entry.histogram) {
    throw util::ValueError("metric '" + name + "' is not a counter");
  }
  if (entry.counter) {
    if (entry.section != section) {
      throw util::ValueError("metric '" + name + "' re-registered in another section");
    }
    return *entry.counter;
  }
  entry.section = section;
  entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Section section) {
  std::lock_guard lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.counter || entry.histogram) {
    throw util::ValueError("metric '" + name + "' is not a gauge");
  }
  if (entry.gauge) {
    if (entry.section != section) {
      throw util::ValueError("metric '" + name + "' re-registered in another section");
    }
    return *entry.gauge;
  }
  entry.section = section;
  entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const BucketLayout& layout, Section section) {
  std::lock_guard lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.counter || entry.gauge) {
    throw util::ValueError("metric '" + name + "' is not a histogram");
  }
  if (entry.histogram) {
    if (entry.section != section) {
      throw util::ValueError("metric '" + name + "' re-registered in another section");
    }
    if (entry.histogram->layout() != layout) {
      throw util::ValueError("metric '" + name +
                             "' re-registered with another bucket layout");
    }
    return *entry.histogram;
  }
  entry.section = section;
  entry.histogram = std::make_unique<Histogram>(layout);
  return *entry.histogram;
}

util::Json MetricsRegistry::to_json(bool include_timing) const {
  std::lock_guard lock(mutex_);
  util::Json json;
  json["schema"] = "dpho.metrics.v1";
  for (const Section section : {Section::kDeterministic, Section::kTiming}) {
    if (section == Section::kTiming && !include_timing) continue;
    util::Json counters{util::JsonObject{}};
    util::Json gauges{util::JsonObject{}};
    util::Json histograms{util::JsonObject{}};
    // entries_ is a sorted map, so emitted keys are sorted independently of
    // registration order -- the reproducibility contract golden tests rely on.
    for (const auto& [name, entry] : entries_) {
      if (entry.section != section) continue;
      if (entry.counter) counters[name] = entry.counter->value();
      if (entry.gauge) gauges[name] = entry.gauge->value();
      if (entry.histogram) histograms[name] = entry.histogram->snapshot().to_json();
    }
    util::Json block;
    block["counters"] = std::move(counters);
    block["gauges"] = std::move(gauges);
    block["histograms"] = std::move(histograms);
    json[to_string(section)] = std::move(block);
  }
  return json;
}

util::Json MetricsRegistry::deterministic_json() const {
  return to_json(false).at(to_string(Section::kDeterministic));
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dpho::obs
