// First-order optimizers over a flat parameter vector.
#pragma once

#include <span>
#include <vector>

namespace dpho::nn {

/// Plain stochastic gradient descent.
class Sgd {
 public:
  explicit Sgd(std::size_t num_params) : num_params_(num_params) {}

  /// params -= lr * grad
  void step(std::span<double> params, std::span<const double> grad, double lr);

 private:
  std::size_t num_params_;
};

/// Adam (Kingma & Ba 2015), the optimizer DeePMD-kit trains with.
class Adam {
 public:
  explicit Adam(std::size_t num_params, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  /// One update with the given (externally scheduled) learning rate.
  void step(std::span<double> params, std::span<const double> grad, double lr);

  /// Resets the moment estimates and timestep.
  void reset();

  std::size_t timestep() const { return t_; }

 private:
  double beta1_, beta2_, epsilon_;
  std::vector<double> m_, v_;
  std::size_t t_ = 0;
};

}  // namespace dpho::nn
