#include "nn/optimizer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::nn {

void Sgd::step(std::span<double> params, std::span<const double> grad, double lr) {
  if (params.size() != num_params_ || grad.size() != num_params_) {
    throw util::ValueError("sgd: size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i] -= lr * grad[i];
}

Adam::Adam(std::size_t num_params, double beta1, double beta2, double epsilon)
    : beta1_(beta1), beta2_(beta2), epsilon_(epsilon), m_(num_params, 0.0),
      v_(num_params, 0.0) {}

void Adam::step(std::span<double> params, std::span<const double> grad, double lr) {
  if (params.size() != m_.size() || grad.size() != m_.size()) {
    throw util::ValueError("adam: size mismatch");
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    params[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void Adam::reset() {
  m_.assign(m_.size(), 0.0);
  v_.assign(v_.size(), 0.0);
  t_ = 0;
}

}  // namespace dpho::nn
