// Multi-layer perceptron with two execution paths:
//   * a fast plain-double forward pass for inference, and
//   * a tape-bound forward pass producing ad::Var outputs for training
//     (including force training, which differentiates through a gradient).
//
// Parameters live in one contiguous vector so optimizers can treat the whole
// network (or several networks concatenated) as a flat parameter space, the
// same way DeePMD-kit's trainer sees one TensorFlow variable list.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ad/tape.hpp"
#include "nn/activation.hpp"
#include "util/rng.hpp"

namespace dpho::nn {

/// Shape + activation of one dense layer.
struct LayerSpec {
  std::size_t in = 0;
  std::size_t out = 0;
  Activation activation = Activation::kIdentity;
};

/// A feed-forward network: dense layers, each with its own activation.
class Mlp {
 public:
  /// Builds the layer list from an input width and hidden widths; every hidden
  /// layer uses `hidden_activation`, the final layer `output_activation`.
  Mlp(std::size_t input_width, const std::vector<std::size_t>& widths,
      Activation hidden_activation, Activation output_activation);

  /// Xavier/Glorot-uniform initialization of weights; biases zero.
  void init_xavier(util::Rng& rng);

  std::size_t input_width() const;
  std::size_t output_width() const;
  std::size_t num_params() const { return params_.size(); }

  std::span<double> params() { return params_; }
  std::span<const double> params() const { return params_; }

  /// Fast inference path.  Const and allocation-light; safe to call
  /// concurrently from the trainer's data-parallel gradient workers.
  std::vector<double> forward(std::span<const double> x) const;

  /// Scratch-reusing inference: writes output_width() values into `out` and
  /// ping-pongs layer activations through `scratch` (both resized as needed,
  /// capacity kept).  Once warm this performs zero heap allocations, which
  /// matters because the descriptor calls it once per neighbor per atom.
  void forward(std::span<const double> x, std::vector<double>& out,
               std::vector<double>& scratch) const;

  /// Tape variables mirroring `params()`, in the same flat order.  Bind once
  /// per training step, reuse across every sample in the batch.
  std::vector<ad::Var> bind_params(ad::Tape& tape) const;

  /// As above, appending onto `out` instead of returning a fresh vector, so
  /// per-frame graph builds reuse one caller-owned buffer across all nets.
  void bind_params(ad::Tape& tape, std::vector<ad::Var>& out) const;

  /// Forward pass with tape-bound parameters and tape inputs.
  std::vector<ad::Var> forward(ad::Tape& tape, std::span<const ad::Var> bound_params,
                               std::span<const ad::Var> x) const;

  const std::vector<LayerSpec>& layers() const { return layers_; }

  /// Serialization for model checkpoints (the `dp_train` tool writes these).
  std::vector<double> save_params() const { return params_; }
  void load_params(std::span<const double> params);

 private:
  std::vector<LayerSpec> layers_;
  std::vector<double> params_;
};

}  // namespace dpho::nn
