// Activation functions tunable by the hyperparameter search.
//
// The paper's genome selects the descriptor-network and fitting-network
// activation functions from {"relu", "relu6", "softplus", "sigmoid", "tanh"}
// (section 2.2.1).  Every one of them is implemented for both plain doubles
// (fast inference) and tape variables (training with autodiff).
#pragma once

#include <string>

#include "ad/tape.hpp"

namespace dpho::nn {

enum class Activation { kRelu, kRelu6, kSoftplus, kSigmoid, kTanh, kIdentity };

/// The five candidate activations, in the genome's decode order.
inline constexpr Activation kCandidateActivations[] = {
    Activation::kRelu, Activation::kRelu6, Activation::kSoftplus,
    Activation::kSigmoid, Activation::kTanh};
inline constexpr int kNumCandidateActivations = 5;

/// Parses "relu"/"relu6"/"softplus"/"sigmoid"/"tanh"/"identity"; throws
/// ValueError otherwise.
Activation activation_from_string(const std::string& name);
std::string to_string(Activation activation);

double apply(Activation activation, double x);
ad::Var apply(Activation activation, ad::Var x);

/// Analytical first derivative (for the double-based fast path's tests).
double derivative(Activation activation, double x);

/// Analytical second derivative.  The analytic training path needs it for the
/// force-loss term (differentiating through F = -dE/dx differentiates every
/// activation twice).  Kinked activations (relu, relu6) use the same
/// subgradient convention as the tape: the step functions have derivative 0
/// everywhere, so their second derivative is identically 0.
double second_derivative(Activation activation, double x);

}  // namespace dpho::nn
