#include "nn/schedule.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::nn {

LrScaling lr_scaling_from_string(const std::string& name) {
  if (name == "linear") return LrScaling::kLinear;
  if (name == "sqrt") return LrScaling::kSqrt;
  if (name == "none") return LrScaling::kNone;
  throw util::ValueError("unknown lr scaling: " + name);
}

std::string to_string(LrScaling scaling) {
  switch (scaling) {
    case LrScaling::kLinear: return "linear";
    case LrScaling::kSqrt: return "sqrt";
    case LrScaling::kNone: return "none";
  }
  throw util::ValueError("invalid lr scaling enum");
}

double scaling_factor(LrScaling scaling, std::size_t num_workers) {
  if (num_workers == 0) throw util::ValueError("scaling_factor: zero workers");
  switch (scaling) {
    case LrScaling::kLinear: return static_cast<double>(num_workers);
    case LrScaling::kSqrt: return std::sqrt(static_cast<double>(num_workers));
    case LrScaling::kNone: return 1.0;
  }
  throw util::ValueError("invalid lr scaling enum");
}

ExponentialDecay::ExponentialDecay(double start_lr, double stop_lr,
                                   std::size_t total_steps, std::size_t decay_steps,
                                   bool staircase)
    : start_lr_(start_lr), stop_lr_(stop_lr), staircase_(staircase) {
  if (start_lr <= 0.0 || stop_lr <= 0.0) {
    throw util::ValueError("learning rates must be positive");
  }
  if (total_steps == 0) throw util::ValueError("total_steps must be positive");
  if (decay_steps == 0) {
    // DeePMD default heuristic: about 100 decays over the run, at least 1 step.
    decay_steps = total_steps / 100;
    if (decay_steps == 0) decay_steps = 1;
  }
  decay_steps_ = decay_steps;
  const double exponent =
      static_cast<double>(decay_steps_) / static_cast<double>(total_steps);
  rate_ = std::pow(stop_lr_ / start_lr_, exponent);
}

double ExponentialDecay::lr(std::size_t step) const {
  double cycles = static_cast<double>(step) / static_cast<double>(decay_steps_);
  if (staircase_) cycles = std::floor(cycles);
  return start_lr_ * std::pow(rate_, cycles);
}

}  // namespace dpho::nn
