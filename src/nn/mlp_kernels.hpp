// Hand-derived batched forward/backward kernels for nn::Mlp.
//
// The tape autodiff in ad/tape.hpp allocates one heap node per scalar
// multiply, which makes it a fine differentiation *oracle* but a poor
// training hot path: a DeepPot-SE gradient step touches every embedding net
// once per neighbor per atom per frame.  These kernels replace the tape on
// that path with four analytic passes over contiguous batches:
//
//   forward   y_l = sigma(W_l y_{l-1} + b_l)            caches y, s', (s'')
//   vjp       zbar_l = s'(z_l) . ybar_l                 param grads W,b
//             ybar_{l-1} = W_l^T zbar_l                 input grads
//   jvp       zdot_l = W_l ydot_{l-1}                   directional derivative
//             ydot_l = s'(z_l) . zdot_l                 (parameter tangent 0)
//   vjp_tangent                                          d/de of the vjp:
//             zbardot_l = s''(z_l).zdot_l.ybar_l + s'(z_l).ybardot_l
//             Wdot_l   += zbardot_l x_l^T + zbar_l xdot_l^T
//
// The vjp_tangent pass is the forward-over-reverse rule that gives the
// force-loss second-order term: with the input tangent xdot set from a
// coordinate direction v, the accumulated parameter tangent-adjoints equal
// grad_theta(v . grad_x E) -- a mixed Hessian-vector product -- without ever
// materializing a Hessian (see DESIGN.md section 10).
//
// All buffers live in a caller-owned MlpBatchCache that only ever grows, so
// steady-state training performs zero allocations in these kernels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/mlp.hpp"

namespace dpho::nn {

/// Per-layer caches for one Mlp over one batch.  A cache is bound to
/// whatever (mlp, batch) pair was last passed to mlp_forward_batch; the
/// later passes must use the same pair.  Reusable across batches and nets of
/// identical architecture; buffers grow monotonically.
struct MlpBatchCache {
  std::size_t batch = 0;
  bool has_curvature = false;  // spp valid for the current batch
  // Indexed [layer], each sized batch * layer.out, sample-major rows.
  std::vector<std::vector<double>> y;     // post-activation outputs
  std::vector<std::vector<double>> sp;    // sigma'(z)
  std::vector<std::vector<double>> spp;   // sigma''(z); becomes s''(z).ybar
                                          // after the vjp pass
  std::vector<std::vector<double>> zbar;  // primal pre-activation adjoints
  std::vector<std::vector<double>> zdot;  // tangent pre-activations
  std::vector<std::vector<double>> ydot;  // tangent post-activations
  // Ping-pong rows for adjoint propagation (batch * max width each).
  std::vector<double> bar_a;
  std::vector<double> bar_b;

  /// Output of the last forward pass (batch * output_width).
  std::span<const double> out() const { return y.back(); }
  /// Output tangent of the last jvp pass.
  std::span<const double> out_dot() const { return ydot.back(); }
};

/// Whether the forward pass should also cache sigma''(z) (required before
/// mlp_vjp_tangent_batch; skip for inference / first-order-only work).
enum class Curvature : bool { kNone = false, kCache = true };

/// Batched forward: x is batch rows of mlp.input_width() values.  Fills
/// cache.y and cache.sp (and cache.spp under Curvature::kCache).
void mlp_forward_batch(const Mlp& mlp, std::span<const double> x,
                       std::size_t batch, MlpBatchCache& cache,
                       Curvature curvature);

/// Batched reverse pass (vector-Jacobian product).  `out_bar` holds the
/// adjoint of each output row.  Accumulates (+=) flat parameter gradients
/// into `param_grad` when non-empty (mlp.num_params() entries) and writes
/// input adjoints into `x_bar` when non-empty (batch * input_width).
/// Caches zbar, and folds ybar into cache.spp (required by the tangent pass,
/// so run the vjp before mlp_vjp_tangent_batch even when only tangents are
/// wanted).  Requires a prior mlp_forward_batch on this cache.
void mlp_backward_batch(const Mlp& mlp, std::span<const double> x,
                        std::size_t batch, MlpBatchCache& cache,
                        std::span<const double> out_bar, std::span<double> x_bar,
                        std::span<double> param_grad);

/// Batched forward tangent (Jacobian-vector product) with zero parameter
/// tangent: xdot is the directional derivative of x.  Fills cache.zdot and
/// cache.ydot.  Requires a prior mlp_forward_batch (uses cache.sp).
void mlp_jvp_batch(const Mlp& mlp, std::span<const double> xdot,
                   std::size_t batch, MlpBatchCache& cache);

/// Tangent of the reverse pass (forward-over-reverse).  `out_bar_dot` is the
/// tangent of out_bar (empty == zeros).  Accumulates (+=) parameter
/// tangent-adjoints into `param_hvp` when non-empty and writes input
/// tangent-adjoints into `x_bar_dot` when non-empty.  Requires prior
/// mlp_forward_batch (Curvature::kCache), mlp_backward_batch, and
/// mlp_jvp_batch on this cache.
void mlp_vjp_tangent_batch(const Mlp& mlp, std::span<const double> x,
                           std::span<const double> xdot, std::size_t batch,
                           MlpBatchCache& cache,
                           std::span<const double> out_bar_dot,
                           std::span<double> x_bar_dot,
                           std::span<double> param_hvp);

}  // namespace dpho::nn
