// Runtime-dispatched dense-layer primitives for the batched MLP kernels.
//
// Every hot loop in nn/mlp_kernels.cpp is one of five dense row operations
// over sample-major SoA batches.  This header exposes them behind a function
// table that is resolved once at first use:
//
//   * an AVX2/FMA implementation (src/nn/simd_avx2.cpp, compiled with
//     -mavx2 -mfma when DPHO_ENABLE_SIMD is ON) selected when the running
//     CPU reports both features, and
//   * a portable scalar fallback that reproduces the original kernel loops
//     exactly.
//
// Dispatch can be forced to scalar with the environment variable
// DPHO_SIMD=off (read once at first use) or flipped at runtime with
// set_enabled() -- which is how the SIMD parity tests and the
// bench_model_kernels SIMD-on/off matrix drive both paths in one process.
//
// Determinism: the AVX2 forward kernels split dot products across vector
// lanes, so their reduction order differs from scalar and results can differ
// from the scalar path by FMA-contraction-sized rounding (the parity tests
// pin the tolerance).  Within either path, results are bit-reproducible and
// independent of thread count: dispatch state is process-global and the
// kernels carry no per-thread state.
#pragma once

#include <cstddef>

namespace dpho::nn::simd {

/// The dense-layer operation table one dispatch level provides.  All batches
/// are sample-major: x is batch rows of `in` values, z is batch rows of
/// `out` values, weights are row-major [out][in].
struct Ops {
  /// z[s,o] = (bias ? bias[o] : 0) + sum_i w[o,i] x[s,i]
  void (*dense_forward)(const double* w, const double* bias, const double* x,
                        std::size_t batch, std::size_t in, std::size_t out,
                        double* z);
  /// ybar[s,i] = sum_o w[o,i] zbar[s,o]   (overwrites ybar)
  void (*dense_backward_input)(const double* w, const double* zbar,
                               std::size_t batch, std::size_t in,
                               std::size_t out, double* ybar);
  /// wgrad[o,i] += sum_s zbar[s,o] x[s,i];  bgrad[o] += sum_s zbar[s,o]
  void (*dense_param_grad)(const double* x, const double* zbar,
                           std::size_t batch, std::size_t in, std::size_t out,
                           double* wgrad, double* bgrad);
  /// whvp[o,i] += sum_s (zbardot[s,o] x[s,i] + zbar[s,o] xdot[s,i]);
  /// bhvp[o] += sum_s zbardot[s,o]   (the d/de of dense_param_grad)
  void (*dense_param_grad_tangent)(const double* x, const double* xdot,
                                   const double* zbar, const double* zbardot,
                                   std::size_t batch, std::size_t in,
                                   std::size_t out, double* whvp, double* bhvp);
  const char* name;  // "avx2-fma" or "scalar"
};

/// The currently dispatched table (resolved lazily on first call).
const Ops& active();

/// True when an AVX2/FMA table was compiled in AND the running CPU supports
/// it (independent of whether it is currently enabled).
bool available();

/// True when the active table is the vector one.
bool enabled();

/// Force the vector (true) or scalar (false) table.  Enabling is a no-op
/// when available() is false; returns the resulting enabled() state.  Not
/// intended for use while kernels are running on other threads.
bool set_enabled(bool on);

/// Name of the active table ("avx2-fma" / "scalar").
const char* level_name();

/// The scalar table (always present; the parity oracle).
const Ops& scalar_ops();

/// The AVX2 table, or nullptr when not compiled in (DPHO_ENABLE_SIMD=OFF).
/// Internal to the dispatcher and the tests; callers must check the CPU via
/// available() before using it.
const Ops* avx2_ops();

}  // namespace dpho::nn::simd
