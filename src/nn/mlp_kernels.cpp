#include "nn/mlp_kernels.hpp"

#include <algorithm>

#include "nn/activation.hpp"
#include "util/error.hpp"

namespace dpho::nn {

namespace {

std::size_t max_width(const Mlp& mlp) {
  std::size_t w = mlp.input_width();
  for (const LayerSpec& layer : mlp.layers()) w = std::max(w, layer.out);
  return w;
}

void size_layer_buffers(std::vector<std::vector<double>>& buffers,
                        const std::vector<LayerSpec>& layers, std::size_t batch) {
  buffers.resize(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    buffers[l].resize(batch * layers[l].out);
  }
}

/// ybar_prev[s,i] = sum_o W[o,i] * zbar[s,o]  (adjoint through the weights).
void propagate_bar(const double* weights, std::size_t in, std::size_t out,
                   std::size_t batch, const double* zbar, double* ybar_prev) {
  std::fill(ybar_prev, ybar_prev + batch * in, 0.0);
  for (std::size_t s = 0; s < batch; ++s) {
    const double* zrow = zbar + s * out;
    double* yrow = ybar_prev + s * in;
    for (std::size_t o = 0; o < out; ++o) {
      const double z = zrow[o];
      if (z == 0.0) continue;
      const double* wrow = weights + o * in;
      for (std::size_t i = 0; i < in; ++i) yrow[i] += z * wrow[i];
    }
  }
}

}  // namespace

void mlp_forward_batch(const Mlp& mlp, std::span<const double> x,
                       std::size_t batch, MlpBatchCache& cache,
                       Curvature curvature) {
  const auto& layers = mlp.layers();
  if (x.size() != batch * mlp.input_width()) {
    throw util::ValueError("mlp_forward_batch: input size mismatch");
  }
  cache.batch = batch;
  cache.has_curvature = curvature == Curvature::kCache;
  size_layer_buffers(cache.y, layers, batch);
  size_layer_buffers(cache.sp, layers, batch);
  if (cache.has_curvature) {
    size_layer_buffers(cache.spp, layers, batch);
  }
  cache.bar_a.resize(batch * max_width(mlp));
  cache.bar_b.resize(batch * max_width(mlp));

  const double* params = mlp.params().data();
  std::size_t offset = 0;
  const double* in_rows = x.data();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerSpec& layer = layers[l];
    const double* weights = params + offset;
    const double* biases = weights + layer.in * layer.out;
    double* y = cache.y[l].data();
    double* sp = cache.sp[l].data();
    double* spp = curvature == Curvature::kCache ? cache.spp[l].data() : nullptr;
    for (std::size_t s = 0; s < batch; ++s) {
      const double* xs = in_rows + s * layer.in;
      double* ys = y + s * layer.out;
      double* sps = sp + s * layer.out;
      for (std::size_t o = 0; o < layer.out; ++o) {
        double z = biases[o];
        const double* wrow = weights + o * layer.in;
        for (std::size_t i = 0; i < layer.in; ++i) z += wrow[i] * xs[i];
        ys[o] = apply(layer.activation, z);
        sps[o] = derivative(layer.activation, z);
        if (spp != nullptr) {
          spp[s * layer.out + o] = second_derivative(layer.activation, z);
        }
      }
    }
    in_rows = y;
    offset += layer.in * layer.out + layer.out;
  }
}

void mlp_backward_batch(const Mlp& mlp, std::span<const double> x,
                        std::size_t batch, MlpBatchCache& cache,
                        std::span<const double> out_bar, std::span<double> x_bar,
                        std::span<double> param_grad) {
  const auto& layers = mlp.layers();
  if (cache.batch != batch || cache.y.size() != layers.size()) {
    throw util::ValueError("mlp_backward_batch: stale cache, run forward first");
  }
  if (out_bar.size() != batch * mlp.output_width()) {
    throw util::ValueError("mlp_backward_batch: out_bar size mismatch");
  }
  if (!param_grad.empty() && param_grad.size() != mlp.num_params()) {
    throw util::ValueError("mlp_backward_batch: param_grad size mismatch");
  }
  size_layer_buffers(cache.zbar, layers, batch);
  const bool fold_curvature = cache.has_curvature;

  // Parameter offsets are front-to-back; walk layers back-to-front.
  std::vector<std::size_t> offsets(layers.size());
  std::size_t offset = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    offsets[l] = offset;
    offset += layers[l].in * layers[l].out + layers[l].out;
  }

  const double* params = mlp.params().data();
  const double* ybar = out_bar.data();
  for (std::size_t l = layers.size(); l-- > 0;) {
    const LayerSpec& layer = layers[l];
    const double* sp = cache.sp[l].data();
    double* spp = fold_curvature ? cache.spp[l].data() : nullptr;
    double* zbar = cache.zbar[l].data();
    for (std::size_t k = 0; k < batch * layer.out; ++k) {
      zbar[k] = sp[k] * ybar[k];
      // s''(z) . ybar, the curvature factor the tangent pass multiplies by
      // zdot; folding it here keeps that pass free of ybar storage.
      if (spp != nullptr) spp[k] *= ybar[k];
    }
    const double* xin = l == 0 ? x.data() : cache.y[l - 1].data();
    if (!param_grad.empty()) {
      const std::size_t base = offsets[l];
      double* wgrad = param_grad.data() + base;
      double* bgrad = wgrad + layer.in * layer.out;
      for (std::size_t s = 0; s < batch; ++s) {
        const double* xs = xin + s * layer.in;
        const double* zrow = zbar + s * layer.out;
        for (std::size_t o = 0; o < layer.out; ++o) {
          const double z = zrow[o];
          bgrad[o] += z;
          if (z == 0.0) continue;
          double* wrow = wgrad + o * layer.in;
          for (std::size_t i = 0; i < layer.in; ++i) wrow[i] += z * xs[i];
        }
      }
    }
    if (l > 0 || !x_bar.empty()) {
      double* dest = l == 0 ? x_bar.data() : cache.bar_a.data();
      propagate_bar(params + offsets[l], layer.in, layer.out, batch, zbar, dest);
      ybar = dest;
    }
  }
}

void mlp_jvp_batch(const Mlp& mlp, std::span<const double> xdot,
                   std::size_t batch, MlpBatchCache& cache) {
  const auto& layers = mlp.layers();
  if (cache.batch != batch || cache.sp.size() != layers.size()) {
    throw util::ValueError("mlp_jvp_batch: stale cache, run forward first");
  }
  if (xdot.size() != batch * mlp.input_width()) {
    throw util::ValueError("mlp_jvp_batch: xdot size mismatch");
  }
  size_layer_buffers(cache.zdot, layers, batch);
  size_layer_buffers(cache.ydot, layers, batch);

  const double* params = mlp.params().data();
  std::size_t offset = 0;
  const double* in_rows = xdot.data();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerSpec& layer = layers[l];
    const double* weights = params + offset;
    const double* sp = cache.sp[l].data();
    double* zdot = cache.zdot[l].data();
    double* ydot = cache.ydot[l].data();
    for (std::size_t s = 0; s < batch; ++s) {
      const double* xs = in_rows + s * layer.in;
      double* zrow = zdot + s * layer.out;
      for (std::size_t o = 0; o < layer.out; ++o) {
        double z = 0.0;  // parameter tangents are zero: no Wdot x term
        const double* wrow = weights + o * layer.in;
        for (std::size_t i = 0; i < layer.in; ++i) z += wrow[i] * xs[i];
        zrow[o] = z;
        ydot[s * layer.out + o] = sp[s * layer.out + o] * z;
      }
    }
    in_rows = ydot;
    offset += layer.in * layer.out + layer.out;
  }
}

void mlp_vjp_tangent_batch(const Mlp& mlp, std::span<const double> x,
                           std::span<const double> xdot, std::size_t batch,
                           MlpBatchCache& cache,
                           std::span<const double> out_bar_dot,
                           std::span<double> x_bar_dot,
                           std::span<double> param_hvp) {
  const auto& layers = mlp.layers();
  if (cache.batch != batch || !cache.has_curvature ||
      cache.zbar.size() != layers.size() || cache.zdot.size() != layers.size()) {
    throw util::ValueError(
        "mlp_vjp_tangent_batch: cache needs forward (with curvature), "
        "backward, and jvp passes first");
  }
  if (!out_bar_dot.empty() && out_bar_dot.size() != batch * mlp.output_width()) {
    throw util::ValueError("mlp_vjp_tangent_batch: out_bar_dot size mismatch");
  }
  if (!param_hvp.empty() && param_hvp.size() != mlp.num_params()) {
    throw util::ValueError("mlp_vjp_tangent_batch: param_hvp size mismatch");
  }

  std::vector<std::size_t> offsets(layers.size());
  std::size_t offset = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    offsets[l] = offset;
    offset += layers[l].in * layers[l].out + layers[l].out;
  }

  const double* params = mlp.params().data();
  // ybardot propagates in bar_b; zbardot is built in bar_a.  Both are sized
  // for the widest layer by the forward pass.
  const double* ybardot = out_bar_dot.empty() ? nullptr : out_bar_dot.data();
  for (std::size_t l = layers.size(); l-- > 0;) {
    const LayerSpec& layer = layers[l];
    const double* sp = cache.sp[l].data();
    const double* sppybar = cache.spp[l].data();  // s''(z) . ybar (folded)
    const double* zbar = cache.zbar[l].data();
    const double* zdot = cache.zdot[l].data();
    double* zbardot = cache.bar_a.data();
    // zbardot = s''(z).ybar.zdot + s'(z).ybardot  (d/de of zbar = s'(z).ybar)
    for (std::size_t k = 0; k < batch * layer.out; ++k) {
      zbardot[k] = sppybar[k] * zdot[k] + (ybardot != nullptr ? sp[k] * ybardot[k] : 0.0);
    }
    const double* xin = l == 0 ? x.data() : cache.y[l - 1].data();
    const double* xin_dot = l == 0 ? xdot.data() : cache.ydot[l - 1].data();
    if (!param_hvp.empty()) {
      const std::size_t base = offsets[l];
      double* whvp = param_hvp.data() + base;
      double* bhvp = whvp + layer.in * layer.out;
      for (std::size_t s = 0; s < batch; ++s) {
        const double* xs = xin + s * layer.in;
        const double* xds = xin_dot + s * layer.in;
        const double* zdrow = zbardot + s * layer.out;
        const double* zrow = zbar + s * layer.out;
        for (std::size_t o = 0; o < layer.out; ++o) {
          const double zd = zdrow[o];
          const double z = zrow[o];
          bhvp[o] += zd;
          double* wrow = whvp + o * layer.in;
          // d/de (zbar x^T) = zbardot x^T + zbar xdot^T
          for (std::size_t i = 0; i < layer.in; ++i) {
            wrow[i] += zd * xs[i] + z * xds[i];
          }
        }
      }
    }
    if (l > 0 || !x_bar_dot.empty()) {
      double* dest = l == 0 ? x_bar_dot.data() : cache.bar_b.data();
      propagate_bar(params + offsets[l], layer.in, layer.out, batch, zbardot, dest);
      ybardot = dest;
    }
  }
}

}  // namespace dpho::nn
