#include "nn/mlp_kernels.hpp"

#include <algorithm>

#include "nn/activation.hpp"
#include "nn/simd.hpp"
#include "util/error.hpp"

namespace dpho::nn {

namespace {

std::size_t max_width(const Mlp& mlp) {
  std::size_t w = mlp.input_width();
  for (const LayerSpec& layer : mlp.layers()) w = std::max(w, layer.out);
  return w;
}

void size_layer_buffers(std::vector<std::vector<double>>& buffers,
                        const std::vector<LayerSpec>& layers, std::size_t batch) {
  buffers.resize(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    buffers[l].resize(batch * layers[l].out);
  }
}

}  // namespace

void mlp_forward_batch(const Mlp& mlp, std::span<const double> x,
                       std::size_t batch, MlpBatchCache& cache,
                       Curvature curvature) {
  const auto& layers = mlp.layers();
  if (x.size() != batch * mlp.input_width()) {
    throw util::ValueError("mlp_forward_batch: input size mismatch");
  }
  cache.batch = batch;
  cache.has_curvature = curvature == Curvature::kCache;
  size_layer_buffers(cache.y, layers, batch);
  size_layer_buffers(cache.sp, layers, batch);
  if (cache.has_curvature) {
    size_layer_buffers(cache.spp, layers, batch);
  }
  cache.bar_a.resize(batch * max_width(mlp));
  cache.bar_b.resize(batch * max_width(mlp));

  const simd::Ops& ops = simd::active();
  const double* params = mlp.params().data();
  std::size_t offset = 0;
  const double* in_rows = x.data();
  // bar_a doubles as the pre-activation scratch z here; the backward pass
  // only uses it after this pass has fully consumed it.
  double* z = cache.bar_a.data();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerSpec& layer = layers[l];
    const double* weights = params + offset;
    const double* biases = weights + layer.in * layer.out;
    ops.dense_forward(weights, biases, in_rows, batch, layer.in, layer.out, z);
    double* y = cache.y[l].data();
    double* sp = cache.sp[l].data();
    double* spp = curvature == Curvature::kCache ? cache.spp[l].data() : nullptr;
    for (std::size_t k = 0; k < batch * layer.out; ++k) {
      y[k] = apply(layer.activation, z[k]);
      sp[k] = derivative(layer.activation, z[k]);
      if (spp != nullptr) spp[k] = second_derivative(layer.activation, z[k]);
    }
    in_rows = y;
    offset += layer.in * layer.out + layer.out;
  }
}

void mlp_backward_batch(const Mlp& mlp, std::span<const double> x,
                        std::size_t batch, MlpBatchCache& cache,
                        std::span<const double> out_bar, std::span<double> x_bar,
                        std::span<double> param_grad) {
  const auto& layers = mlp.layers();
  if (cache.batch != batch || cache.y.size() != layers.size()) {
    throw util::ValueError("mlp_backward_batch: stale cache, run forward first");
  }
  if (out_bar.size() != batch * mlp.output_width()) {
    throw util::ValueError("mlp_backward_batch: out_bar size mismatch");
  }
  if (!param_grad.empty() && param_grad.size() != mlp.num_params()) {
    throw util::ValueError("mlp_backward_batch: param_grad size mismatch");
  }
  size_layer_buffers(cache.zbar, layers, batch);
  const bool fold_curvature = cache.has_curvature;

  const simd::Ops& ops = simd::active();
  const double* params = mlp.params().data();
  const double* ybar = out_bar.data();
  // Parameter offsets are front-to-back; walking layers back-to-front, peel
  // each layer's block off the total instead of materializing an offset
  // table (this path must stay allocation-free for the MD sessions).
  std::size_t offset = mlp.num_params();
  for (std::size_t l = layers.size(); l-- > 0;) {
    const LayerSpec& layer = layers[l];
    offset -= layer.in * layer.out + layer.out;
    const double* sp = cache.sp[l].data();
    double* spp = fold_curvature ? cache.spp[l].data() : nullptr;
    double* zbar = cache.zbar[l].data();
    for (std::size_t k = 0; k < batch * layer.out; ++k) {
      zbar[k] = sp[k] * ybar[k];
      // s''(z) . ybar, the curvature factor the tangent pass multiplies by
      // zdot; folding it here keeps that pass free of ybar storage.
      if (spp != nullptr) spp[k] *= ybar[k];
    }
    const double* xin = l == 0 ? x.data() : cache.y[l - 1].data();
    if (!param_grad.empty()) {
      double* wgrad = param_grad.data() + offset;
      double* bgrad = wgrad + layer.in * layer.out;
      ops.dense_param_grad(xin, zbar, batch, layer.in, layer.out, wgrad, bgrad);
    }
    if (l > 0 || !x_bar.empty()) {
      double* dest = l == 0 ? x_bar.data() : cache.bar_a.data();
      ops.dense_backward_input(params + offset, zbar, batch, layer.in,
                               layer.out, dest);
      ybar = dest;
    }
  }
}

void mlp_jvp_batch(const Mlp& mlp, std::span<const double> xdot,
                   std::size_t batch, MlpBatchCache& cache) {
  const auto& layers = mlp.layers();
  if (cache.batch != batch || cache.sp.size() != layers.size()) {
    throw util::ValueError("mlp_jvp_batch: stale cache, run forward first");
  }
  if (xdot.size() != batch * mlp.input_width()) {
    throw util::ValueError("mlp_jvp_batch: xdot size mismatch");
  }
  size_layer_buffers(cache.zdot, layers, batch);
  size_layer_buffers(cache.ydot, layers, batch);

  const simd::Ops& ops = simd::active();
  const double* params = mlp.params().data();
  std::size_t offset = 0;
  const double* in_rows = xdot.data();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerSpec& layer = layers[l];
    const double* weights = params + offset;
    const double* sp = cache.sp[l].data();
    double* zdot = cache.zdot[l].data();
    double* ydot = cache.ydot[l].data();
    // Parameter tangents are zero, so there is no Wdot x term: the tangent
    // pre-activation is a bias-free forward through the primal weights.
    ops.dense_forward(weights, nullptr, in_rows, batch, layer.in, layer.out,
                      zdot);
    for (std::size_t k = 0; k < batch * layer.out; ++k) {
      ydot[k] = sp[k] * zdot[k];
    }
    in_rows = ydot;
    offset += layer.in * layer.out + layer.out;
  }
}

void mlp_vjp_tangent_batch(const Mlp& mlp, std::span<const double> x,
                           std::span<const double> xdot, std::size_t batch,
                           MlpBatchCache& cache,
                           std::span<const double> out_bar_dot,
                           std::span<double> x_bar_dot,
                           std::span<double> param_hvp) {
  const auto& layers = mlp.layers();
  if (cache.batch != batch || !cache.has_curvature ||
      cache.zbar.size() != layers.size() || cache.zdot.size() != layers.size()) {
    throw util::ValueError(
        "mlp_vjp_tangent_batch: cache needs forward (with curvature), "
        "backward, and jvp passes first");
  }
  if (!out_bar_dot.empty() && out_bar_dot.size() != batch * mlp.output_width()) {
    throw util::ValueError("mlp_vjp_tangent_batch: out_bar_dot size mismatch");
  }
  if (!param_hvp.empty() && param_hvp.size() != mlp.num_params()) {
    throw util::ValueError("mlp_vjp_tangent_batch: param_hvp size mismatch");
  }

  std::vector<std::size_t> offsets(layers.size());
  std::size_t offset = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    offsets[l] = offset;
    offset += layers[l].in * layers[l].out + layers[l].out;
  }

  const simd::Ops& ops = simd::active();
  const double* params = mlp.params().data();
  // ybardot propagates in bar_b; zbardot is built in bar_a.  Both are sized
  // for the widest layer by the forward pass.
  const double* ybardot = out_bar_dot.empty() ? nullptr : out_bar_dot.data();
  for (std::size_t l = layers.size(); l-- > 0;) {
    const LayerSpec& layer = layers[l];
    const double* sp = cache.sp[l].data();
    const double* sppybar = cache.spp[l].data();  // s''(z) . ybar (folded)
    const double* zbar = cache.zbar[l].data();
    const double* zdot = cache.zdot[l].data();
    double* zbardot = cache.bar_a.data();
    // zbardot = s''(z).ybar.zdot + s'(z).ybardot  (d/de of zbar = s'(z).ybar)
    for (std::size_t k = 0; k < batch * layer.out; ++k) {
      zbardot[k] = sppybar[k] * zdot[k] + (ybardot != nullptr ? sp[k] * ybardot[k] : 0.0);
    }
    const double* xin = l == 0 ? x.data() : cache.y[l - 1].data();
    const double* xin_dot = l == 0 ? xdot.data() : cache.ydot[l - 1].data();
    if (!param_hvp.empty()) {
      const std::size_t base = offsets[l];
      double* whvp = param_hvp.data() + base;
      double* bhvp = whvp + layer.in * layer.out;
      // d/de (zbar x^T) = zbardot x^T + zbar xdot^T
      ops.dense_param_grad_tangent(xin, xin_dot, zbar, zbardot, batch, layer.in,
                                   layer.out, whvp, bhvp);
    }
    if (l > 0 || !x_bar_dot.empty()) {
      double* dest = l == 0 ? x_bar_dot.data() : cache.bar_b.data();
      ops.dense_backward_input(params + offsets[l], zbardot, batch, layer.in,
                               layer.out, dest);
      ybardot = dest;
    }
  }
}

}  // namespace dpho::nn
