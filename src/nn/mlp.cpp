#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dpho::nn {

Mlp::Mlp(std::size_t input_width, const std::vector<std::size_t>& widths,
         Activation hidden_activation, Activation output_activation) {
  if (input_width == 0) throw util::ValueError("mlp input width must be positive");
  if (widths.empty()) throw util::ValueError("mlp needs at least one layer");
  std::size_t in = input_width;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const bool last = (i + 1 == widths.size());
    layers_.push_back(LayerSpec{in, widths[i], last ? output_activation : hidden_activation});
    in = widths[i];
  }
  std::size_t total = 0;
  for (const LayerSpec& layer : layers_) total += layer.in * layer.out + layer.out;
  params_.assign(total, 0.0);
}

void Mlp::init_xavier(util::Rng& rng) {
  std::size_t offset = 0;
  for (const LayerSpec& layer : layers_) {
    const double bound = std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
    for (std::size_t i = 0; i < layer.in * layer.out; ++i) {
      params_[offset + i] = rng.uniform(-bound, bound);
    }
    offset += layer.in * layer.out;
    for (std::size_t i = 0; i < layer.out; ++i) params_[offset + i] = 0.0;
    offset += layer.out;
  }
}

std::size_t Mlp::input_width() const { return layers_.front().in; }

std::size_t Mlp::output_width() const { return layers_.back().out; }

std::vector<double> Mlp::forward(std::span<const double> x) const {
  if (x.size() != input_width()) throw util::ValueError("mlp forward: bad input width");
  // One reservation at the widest layer keeps the ping-pong buffers from
  // reallocating mid-pass (this runs once per neighbor per atom in the
  // descriptor, so the allocator pressure is material).
  std::size_t max_width = x.size();
  for (const LayerSpec& layer : layers_) max_width = std::max(max_width, layer.out);
  std::vector<double> current;
  current.reserve(max_width);
  current.assign(x.begin(), x.end());
  std::vector<double> next;
  next.reserve(max_width);
  std::size_t offset = 0;
  for (const LayerSpec& layer : layers_) {
    next.assign(layer.out, 0.0);
    const double* weights = params_.data() + offset;
    const double* biases = params_.data() + offset + layer.in * layer.out;
    for (std::size_t o = 0; o < layer.out; ++o) {
      double sum = biases[o];
      const double* row = weights + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) sum += row[i] * current[i];
      next[o] = apply(layer.activation, sum);
    }
    current.swap(next);
    offset += layer.in * layer.out + layer.out;
  }
  return current;
}

void Mlp::forward(std::span<const double> x, std::vector<double>& out,
                  std::vector<double>& scratch) const {
  if (x.size() != input_width()) throw util::ValueError("mlp forward: bad input width");
  std::size_t max_width = x.size();
  for (const LayerSpec& layer : layers_) max_width = std::max(max_width, layer.out);
  scratch.resize(2 * max_width);
  double* current = scratch.data();
  double* next = scratch.data() + max_width;
  std::copy(x.begin(), x.end(), current);
  std::size_t offset = 0;
  for (const LayerSpec& layer : layers_) {
    const double* weights = params_.data() + offset;
    const double* biases = weights + layer.in * layer.out;
    for (std::size_t o = 0; o < layer.out; ++o) {
      double sum = biases[o];
      const double* row = weights + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) sum += row[i] * current[i];
      next[o] = apply(layer.activation, sum);
    }
    std::swap(current, next);
    offset += layer.in * layer.out + layer.out;
  }
  out.assign(current, current + output_width());
}

std::vector<ad::Var> Mlp::bind_params(ad::Tape& tape) const {
  std::vector<ad::Var> bound;
  bound.reserve(params_.size());
  for (double p : params_) bound.push_back(tape.input(p));
  return bound;
}

void Mlp::bind_params(ad::Tape& tape, std::vector<ad::Var>& out) const {
  out.reserve(out.size() + params_.size());
  for (double p : params_) out.push_back(tape.input(p));
}

std::vector<ad::Var> Mlp::forward(ad::Tape& tape, std::span<const ad::Var> bound_params,
                                  std::span<const ad::Var> x) const {
  if (bound_params.size() != params_.size()) {
    throw util::ValueError("mlp forward: bound parameter count mismatch");
  }
  if (x.size() != input_width()) throw util::ValueError("mlp forward: bad input width");
  std::size_t max_width = x.size();
  for (const LayerSpec& layer : layers_) max_width = std::max(max_width, layer.out);
  std::vector<ad::Var> current;
  current.reserve(max_width);
  current.assign(x.begin(), x.end());
  std::vector<ad::Var> next;
  next.reserve(max_width);
  std::size_t offset = 0;
  for (const LayerSpec& layer : layers_) {
    next.clear();
    next.reserve(layer.out);
    const auto weights = bound_params.subspan(offset, layer.in * layer.out);
    const auto biases = bound_params.subspan(offset + layer.in * layer.out, layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      ad::Var sum = biases[o];
      for (std::size_t i = 0; i < layer.in; ++i) {
        sum = sum + weights[o * layer.in + i] * current[i];
      }
      next.push_back(apply(layer.activation, sum));
    }
    current.swap(next);
    offset += layer.in * layer.out + layer.out;
  }
  (void)tape;
  return current;
}

void Mlp::load_params(std::span<const double> params) {
  if (params.size() != params_.size()) {
    throw util::ValueError("mlp load: parameter count mismatch");
  }
  params_.assign(params.begin(), params.end());
}

}  // namespace dpho::nn
