#include "nn/activation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::nn {

Activation activation_from_string(const std::string& name) {
  if (name == "relu") return Activation::kRelu;
  if (name == "relu6") return Activation::kRelu6;
  if (name == "softplus") return Activation::kSoftplus;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  if (name == "identity" || name == "none" || name == "linear") {
    return Activation::kIdentity;
  }
  throw util::ValueError("unknown activation: " + name);
}

std::string to_string(Activation activation) {
  switch (activation) {
    case Activation::kRelu: return "relu";
    case Activation::kRelu6: return "relu6";
    case Activation::kSoftplus: return "softplus";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kIdentity: return "identity";
  }
  throw util::ValueError("invalid activation enum");
}

double apply(Activation activation, double x) {
  switch (activation) {
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kRelu6: return x <= 0.0 ? 0.0 : (x >= 6.0 ? 6.0 : x);
    case Activation::kSoftplus:
      if (x > 30.0) return x;
      if (x < -30.0) return std::exp(x);
      return std::log1p(std::exp(x));
    case Activation::kSigmoid:
      if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
      return std::exp(x) / (1.0 + std::exp(x));
    case Activation::kTanh: return std::tanh(x);
    case Activation::kIdentity: return x;
  }
  throw util::ValueError("invalid activation enum");
}

ad::Var apply(Activation activation, ad::Var x) {
  switch (activation) {
    case Activation::kRelu: return relu(x);
    case Activation::kRelu6: return relu6(x);
    case Activation::kSoftplus: return softplus(x);
    case Activation::kSigmoid: return sigmoid(x);
    case Activation::kTanh: return tanh(x);
    case Activation::kIdentity: return x;
  }
  throw util::ValueError("invalid activation enum");
}

double second_derivative(Activation activation, double x) {
  switch (activation) {
    case Activation::kRelu:
    case Activation::kRelu6:
    case Activation::kIdentity:
      return 0.0;
    case Activation::kSoftplus: {
      // softplus'' = sigmoid' = s (1 - s)
      const double s = apply(Activation::kSigmoid, x);
      return s * (1.0 - s);
    }
    case Activation::kSigmoid: {
      // sigmoid'' = s (1 - s) (1 - 2s)
      const double s = apply(Activation::kSigmoid, x);
      return s * (1.0 - s) * (1.0 - 2.0 * s);
    }
    case Activation::kTanh: {
      // tanh'' = -2 t (1 - t^2)
      const double t = std::tanh(x);
      return -2.0 * t * (1.0 - t * t);
    }
  }
  throw util::ValueError("invalid activation enum");
}

double derivative(Activation activation, double x) {
  switch (activation) {
    case Activation::kRelu: return x > 0.0 ? 1.0 : 0.0;
    case Activation::kRelu6: return (x > 0.0 && x < 6.0) ? 1.0 : 0.0;
    case Activation::kSoftplus: return apply(Activation::kSigmoid, x);
    case Activation::kSigmoid: {
      const double s = apply(Activation::kSigmoid, x);
      return s * (1.0 - s);
    }
    case Activation::kTanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::kIdentity: return 1.0;
  }
  throw util::ValueError("invalid activation enum");
}

}  // namespace dpho::nn
