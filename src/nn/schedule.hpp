// Learning-rate schedules and the DeePMD loss-prefactor schedule.
//
// DeePMD-kit decays the learning rate exponentially from start_lr toward
// stop_lr over the training-step budget, and couples the energy/force loss
// prefactors to that decay: the force prefactor dominates early and decays
// toward its limit, while the energy prefactor grows (paper section 2.2.1).
//
// The hyperparameter search also tunes `scale_by_worker`, the function used
// to scale the starting learning rate by the number of data-parallel workers
// (Horovod ranks / GPUs): one of {"linear", "sqrt", "none"}.
#pragma once

#include <cstddef>
#include <string>

namespace dpho::nn {

/// Learning-rate scaling scheme for distributed data-parallel training.
enum class LrScaling { kLinear, kSqrt, kNone };

/// Decode order used by the genome: {"linear", "sqrt", "none"}.
inline constexpr LrScaling kCandidateScalings[] = {LrScaling::kLinear, LrScaling::kSqrt,
                                                   LrScaling::kNone};
inline constexpr int kNumCandidateScalings = 3;

LrScaling lr_scaling_from_string(const std::string& name);
std::string to_string(LrScaling scaling);

/// Multiplier applied to start_lr for `num_workers` data-parallel workers.
double scaling_factor(LrScaling scaling, std::size_t num_workers);

/// Exponential decay: lr(step) = start * rate^(step/decay_steps), with rate
/// chosen so lr(total_steps) == stop.  `staircase` floors the exponent like
/// TensorFlow's exponential_decay(staircase=True), which DeePMD-kit uses.
class ExponentialDecay {
 public:
  ExponentialDecay(double start_lr, double stop_lr, std::size_t total_steps,
                   std::size_t decay_steps = 0, bool staircase = true);

  double lr(std::size_t step) const;
  double start_lr() const { return start_lr_; }
  double stop_lr() const { return stop_lr_; }
  double decay_rate() const { return rate_; }
  std::size_t decay_steps() const { return decay_steps_; }

 private:
  double start_lr_;
  double stop_lr_;
  double rate_;
  std::size_t decay_steps_;
  bool staircase_;
};

/// DeePMD loss prefactors: pref(t) = limit*(1 - lr(t)/lr0) + start*(lr(t)/lr0).
class LossPrefactorSchedule {
 public:
  LossPrefactorSchedule(double start_pref, double limit_pref)
      : start_(start_pref), limit_(limit_pref) {}

  /// `lr_ratio` = lr(step) / lr(0), in (0, 1].
  double at(double lr_ratio) const { return limit_ * (1.0 - lr_ratio) + start_ * lr_ratio; }

  double start_pref() const { return start_; }
  double limit_pref() const { return limit_; }

 private:
  double start_;
  double limit_;
};

}  // namespace dpho::nn
