#include "nn/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace dpho::nn::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar fallback: plain loops, identical arithmetic (and skip conditions) to
// the original mlp_kernels inner loops, so a scalar build reproduces the
// pre-SIMD numbers bit for bit.

void scalar_dense_forward(const double* w, const double* bias, const double* x,
                          std::size_t batch, std::size_t in, std::size_t out,
                          double* z) {
  for (std::size_t s = 0; s < batch; ++s) {
    const double* xs = x + s * in;
    double* zs = z + s * out;
    for (std::size_t o = 0; o < out; ++o) {
      double acc = bias != nullptr ? bias[o] : 0.0;
      const double* wrow = w + o * in;
      for (std::size_t i = 0; i < in; ++i) acc += wrow[i] * xs[i];
      zs[o] = acc;
    }
  }
}

void scalar_dense_backward_input(const double* w, const double* zbar,
                                 std::size_t batch, std::size_t in,
                                 std::size_t out, double* ybar) {
  std::memset(ybar, 0, batch * in * sizeof(double));
  for (std::size_t s = 0; s < batch; ++s) {
    const double* zrow = zbar + s * out;
    double* yrow = ybar + s * in;
    for (std::size_t o = 0; o < out; ++o) {
      const double z = zrow[o];
      if (z == 0.0) continue;
      const double* wrow = w + o * in;
      for (std::size_t i = 0; i < in; ++i) yrow[i] += z * wrow[i];
    }
  }
}

void scalar_dense_param_grad(const double* x, const double* zbar,
                             std::size_t batch, std::size_t in, std::size_t out,
                             double* wgrad, double* bgrad) {
  for (std::size_t s = 0; s < batch; ++s) {
    const double* xs = x + s * in;
    const double* zrow = zbar + s * out;
    for (std::size_t o = 0; o < out; ++o) {
      const double z = zrow[o];
      bgrad[o] += z;
      if (z == 0.0) continue;
      double* wrow = wgrad + o * in;
      for (std::size_t i = 0; i < in; ++i) wrow[i] += z * xs[i];
    }
  }
}

void scalar_dense_param_grad_tangent(const double* x, const double* xdot,
                                     const double* zbar, const double* zbardot,
                                     std::size_t batch, std::size_t in,
                                     std::size_t out, double* whvp,
                                     double* bhvp) {
  for (std::size_t s = 0; s < batch; ++s) {
    const double* xs = x + s * in;
    const double* xds = xdot + s * in;
    const double* zdrow = zbardot + s * out;
    const double* zrow = zbar + s * out;
    for (std::size_t o = 0; o < out; ++o) {
      const double zd = zdrow[o];
      const double z = zrow[o];
      bhvp[o] += zd;
      double* wrow = whvp + o * in;
      for (std::size_t i = 0; i < in; ++i) wrow[i] += zd * xs[i] + z * xds[i];
    }
  }
}

constexpr Ops kScalarOps = {scalar_dense_forward, scalar_dense_backward_input,
                            scalar_dense_param_grad,
                            scalar_dense_param_grad_tangent, "scalar"};

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool env_disables_simd() {
  const char* env = std::getenv("DPHO_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "scalar") == 0;
}

std::atomic<const Ops*> g_active{nullptr};

const Ops* resolve_initial() {
  if (avx2_ops() != nullptr && cpu_supports_avx2_fma() && !env_disables_simd()) {
    return avx2_ops();
  }
  return &kScalarOps;
}

}  // namespace

const Ops& scalar_ops() { return kScalarOps; }

#if !defined(DPHO_SIMD_AVX2)
const Ops* avx2_ops() { return nullptr; }
#endif

const Ops& active() {
  const Ops* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    const Ops* resolved = resolve_initial();
    // Several threads may race the first resolution; they all compute the
    // same answer, so the losing CAS just keeps the winner's value.
    g_active.compare_exchange_strong(ops, resolved, std::memory_order_acq_rel);
    ops = g_active.load(std::memory_order_acquire);
  }
  return *ops;
}

bool available() { return avx2_ops() != nullptr && cpu_supports_avx2_fma(); }

bool enabled() { return &active() != &kScalarOps; }

bool set_enabled(bool on) {
  if (on && available()) {
    g_active.store(avx2_ops(), std::memory_order_release);
  } else {
    g_active.store(&kScalarOps, std::memory_order_release);
  }
  return enabled();
}

const char* level_name() { return active().name; }

}  // namespace dpho::nn::simd
