// AVX2/FMA dense-layer kernels.  This translation unit is the only one built
// with -mavx2 -mfma (see src/nn/CMakeLists.txt); everything else stays at the
// baseline ISA and reaches these through the simd::active() dispatch table,
// which only selects this table after __builtin_cpu_supports() confirms the
// running CPU has both features.
//
// Accumulation-order note: the forward kernel reduces each dot product in
// four interleaved lanes, so its rounding differs from the scalar fallback
// (the SIMD parity tests pin the tolerance).  The accumulate kernels
// (backward-input, param-grad, param-grad-tangent) keep the scalar loops'
// per-element accumulation order -- outer sample loop, inner contiguous i --
// and differ only by FMA contraction.
#include "nn/simd.hpp"

#if defined(DPHO_SIMD_AVX2)

#include <immintrin.h>

namespace dpho::nn::simd {

namespace {

/// Horizontal sum of one 4-lane accumulator.
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_hadd_pd(pair, pair));
}

void avx2_dense_forward(const double* w, const double* bias, const double* x,
                        std::size_t batch, std::size_t in, std::size_t out,
                        double* z) {
  for (std::size_t s = 0; s < batch; ++s) {
    const double* xs = x + s * in;
    double* zs = z + s * out;
    std::size_t o = 0;
    // Four output rows at a time share every x load; each row keeps its own
    // 4-lane accumulator, combined with the hadd/permute shuffle below.
    for (; o + 4 <= out; o += 4) {
      const double* w0 = w + (o + 0) * in;
      const double* w1 = w + (o + 1) * in;
      const double* w2 = w + (o + 2) * in;
      const double* w3 = w + (o + 3) * in;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      std::size_t i = 0;
      for (; i + 4 <= in; i += 4) {
        const __m256d xv = _mm256_loadu_pd(xs + i);
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(w0 + i), xv, acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(w1 + i), xv, acc1);
        acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(w2 + i), xv, acc2);
        acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(w3 + i), xv, acc3);
      }
      // [dot0, dot1, dot2, dot3] from the four lane-partial accumulators.
      const __m256d t01 = _mm256_hadd_pd(acc0, acc1);
      const __m256d t23 = _mm256_hadd_pd(acc2, acc3);
      const __m256d lo = _mm256_permute2f128_pd(t01, t23, 0x20);
      const __m256d hi = _mm256_permute2f128_pd(t01, t23, 0x31);
      __m256d sums = _mm256_add_pd(lo, hi);
      if (bias != nullptr) sums = _mm256_add_pd(sums, _mm256_loadu_pd(bias + o));
      double tail[4] = {0.0, 0.0, 0.0, 0.0};
      for (; i < in; ++i) {
        const double xi = xs[i];
        tail[0] += w0[i] * xi;
        tail[1] += w1[i] * xi;
        tail[2] += w2[i] * xi;
        tail[3] += w3[i] * xi;
      }
      _mm256_storeu_pd(zs + o, _mm256_add_pd(sums, _mm256_loadu_pd(tail)));
    }
    for (; o < out; ++o) {
      const double* wrow = w + o * in;
      __m256d acc = _mm256_setzero_pd();
      std::size_t i = 0;
      for (; i + 4 <= in; i += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(wrow + i),
                              _mm256_loadu_pd(xs + i), acc);
      }
      double sum = (bias != nullptr ? bias[o] : 0.0) + hsum(acc);
      for (; i < in; ++i) sum += wrow[i] * xs[i];
      zs[o] = sum;
    }
  }
}

void avx2_dense_backward_input(const double* w, const double* zbar,
                               std::size_t batch, std::size_t in,
                               std::size_t out, double* ybar) {
  for (std::size_t s = 0; s < batch; ++s) {
    const double* zrow = zbar + s * out;
    double* yrow = ybar + s * in;
    std::size_t i = 0;
    const __m256d zero = _mm256_setzero_pd();
    for (; i + 4 <= in; i += 4) _mm256_storeu_pd(yrow + i, zero);
    for (; i < in; ++i) yrow[i] = 0.0;
    for (std::size_t o = 0; o < out; ++o) {
      const double z = zrow[o];
      if (z == 0.0) continue;
      const double* wrow = w + o * in;
      const __m256d zv = _mm256_set1_pd(z);
      i = 0;
      for (; i + 4 <= in; i += 4) {
        const __m256d yv = _mm256_fmadd_pd(zv, _mm256_loadu_pd(wrow + i),
                                           _mm256_loadu_pd(yrow + i));
        _mm256_storeu_pd(yrow + i, yv);
      }
      for (; i < in; ++i) yrow[i] += z * wrow[i];
    }
  }
}

void avx2_dense_param_grad(const double* x, const double* zbar,
                           std::size_t batch, std::size_t in, std::size_t out,
                           double* wgrad, double* bgrad) {
  for (std::size_t s = 0; s < batch; ++s) {
    const double* xs = x + s * in;
    const double* zrow = zbar + s * out;
    for (std::size_t o = 0; o < out; ++o) {
      const double z = zrow[o];
      bgrad[o] += z;
      if (z == 0.0) continue;
      double* wrow = wgrad + o * in;
      const __m256d zv = _mm256_set1_pd(z);
      std::size_t i = 0;
      for (; i + 4 <= in; i += 4) {
        const __m256d wv = _mm256_fmadd_pd(zv, _mm256_loadu_pd(xs + i),
                                           _mm256_loadu_pd(wrow + i));
        _mm256_storeu_pd(wrow + i, wv);
      }
      for (; i < in; ++i) wrow[i] += z * xs[i];
    }
  }
}

void avx2_dense_param_grad_tangent(const double* x, const double* xdot,
                                   const double* zbar, const double* zbardot,
                                   std::size_t batch, std::size_t in,
                                   std::size_t out, double* whvp, double* bhvp) {
  for (std::size_t s = 0; s < batch; ++s) {
    const double* xs = x + s * in;
    const double* xds = xdot + s * in;
    const double* zdrow = zbardot + s * out;
    const double* zrow = zbar + s * out;
    for (std::size_t o = 0; o < out; ++o) {
      const double zd = zdrow[o];
      const double z = zrow[o];
      bhvp[o] += zd;
      double* wrow = whvp + o * in;
      const __m256d zdv = _mm256_set1_pd(zd);
      const __m256d zv = _mm256_set1_pd(z);
      std::size_t i = 0;
      for (; i + 4 <= in; i += 4) {
        __m256d wv = _mm256_loadu_pd(wrow + i);
        wv = _mm256_fmadd_pd(zdv, _mm256_loadu_pd(xs + i), wv);
        wv = _mm256_fmadd_pd(zv, _mm256_loadu_pd(xds + i), wv);
        _mm256_storeu_pd(wrow + i, wv);
      }
      for (; i < in; ++i) wrow[i] += zd * xs[i] + z * xds[i];
    }
  }
}

constexpr Ops kAvx2Ops = {avx2_dense_forward, avx2_dense_backward_input,
                          avx2_dense_param_grad, avx2_dense_param_grad_tangent,
                          "avx2-fma"};

}  // namespace

const Ops* avx2_ops() { return &kAvx2Ops; }

}  // namespace dpho::nn::simd

#endif  // DPHO_SIMD_AVX2
