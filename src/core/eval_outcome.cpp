#include "core/eval_outcome.hpp"

#include "util/error.hpp"

namespace dpho::core {

std::string to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone: return "none";
    case FailureCause::kTrainingFailure: return "training_failure";
    case FailureCause::kNonZeroExit: return "nonzero_exit";
    case FailureCause::kWallLimit: return "wall_limit";
    case FailureCause::kHungProcess: return "hung_process";
    case FailureCause::kMissingArtifact: return "missing_artifact";
    case FailureCause::kCorruptArtifact: return "corrupt_artifact";
    case FailureCause::kNonFiniteFitness: return "nonfinite_fitness";
    case FailureCause::kException: return "exception";
    case FailureCause::kNodeLoss: return "node_loss";
    case FailureCause::kMpiRelaunch: return "mpi_relaunch";
    case FailureCause::kPayloadCorruption: return "payload_corruption";
  }
  throw util::ValueError("invalid failure cause");
}

EvalOutcome EvalOutcome::success(std::vector<double> fitness_values,
                                 double runtime_minutes_value,
                                 std::size_t attempts_value) {
  EvalOutcome outcome;
  outcome.fitness = std::move(fitness_values);
  outcome.runtime_minutes = runtime_minutes_value;
  outcome.attempts = attempts_value;
  return outcome;
}

EvalOutcome EvalOutcome::failure(FailureCause cause_value,
                                 double runtime_minutes_value,
                                 std::size_t attempts_value) {
  EvalOutcome outcome;
  outcome.runtime_minutes = runtime_minutes_value;
  outcome.cause = cause_value;
  outcome.attempts = attempts_value;
  // Wall-limit and hung-process failures are classified by the scheduling
  // layer from the runtime sentinel; everything else is a training error.
  outcome.training_error = cause_value != FailureCause::kNone &&
                           cause_value != FailureCause::kWallLimit &&
                           cause_value != FailureCause::kHungProcess;
  return outcome;
}

}  // namespace dpho::core
