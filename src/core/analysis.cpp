#include "core/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "moo/pareto.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace dpho::core {

std::vector<EvalRecord> last_generation_solutions(const std::vector<RunRecord>& runs) {
  std::vector<EvalRecord> out;
  for (const RunRecord& run : runs) {
    out.insert(out.end(), run.final_population.begin(), run.final_population.end());
  }
  return out;
}

std::vector<EvalRecord> generation_solutions(const std::vector<RunRecord>& runs,
                                             int generation) {
  std::vector<EvalRecord> out;
  for (const RunRecord& run : runs) {
    for (const GenerationRecord& gen : run.generations) {
      if (gen.generation == generation) {
        out.insert(out.end(), gen.evaluated.begin(), gen.evaluated.end());
      }
    }
  }
  return out;
}

std::vector<EvalRecord> successful(const std::vector<EvalRecord>& records) {
  std::vector<EvalRecord> out;
  for (const EvalRecord& record : records) {
    if (record.status == ea::EvalStatus::kOk && record.fitness.size() >= 2) {
      out.push_back(record);
    }
  }
  return out;
}

std::vector<std::size_t> pareto_front(const std::vector<EvalRecord>& records) {
  // Build objective vectors for successful records, remembering origin.
  std::vector<moo::ObjectiveVector> objectives;
  std::vector<std::size_t> origin;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].status == ea::EvalStatus::kOk && records[i].fitness.size() >= 2) {
      objectives.push_back(records[i].fitness);
      origin.push_back(i);
    }
  }
  std::vector<std::size_t> front;
  for (std::size_t local : moo::pareto_front_indices(objectives)) {
    front.push_back(origin[local]);
  }
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    return records[a].fitness[1] < records[b].fitness[1];  // ascending force error
  });
  return front;
}

std::vector<EvalRecord> chemically_accurate(const std::vector<EvalRecord>& records,
                                            const ChemicalAccuracy& limits) {
  std::vector<EvalRecord> out;
  for (const EvalRecord& record : records) {
    if (limits.accurate(record)) out.push_back(record);
  }
  return out;
}

Table3Selection select_table3(const std::vector<EvalRecord>& records,
                              const ChemicalAccuracy& limits) {
  Table3Selection selection;
  for (const EvalRecord& record : records) {
    if (!limits.accurate(record)) continue;
    if (!selection.lowest_force ||
        record.fitness[1] < selection.lowest_force->fitness[1]) {
      selection.lowest_force = record;
    }
    if (!selection.lowest_energy ||
        record.fitness[0] < selection.lowest_energy->fitness[0]) {
      selection.lowest_energy = record;
    }
    if (!selection.lowest_runtime ||
        record.runtime_minutes < selection.lowest_runtime->runtime_minutes) {
      selection.lowest_runtime = record;
    }
  }
  return selection;
}

std::string parallel_coordinates_csv(const std::vector<EvalRecord>& records,
                                     const DeepMDRepresentation& representation,
                                     const ChemicalAccuracy& limits) {
  const std::vector<std::size_t> front = pareto_front(records);
  std::vector<bool> on_front(records.size(), false);
  for (std::size_t i : front) on_front[i] = true;

  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"uuid", "start_lr", "stop_lr", "rcut", "rcut_smth",
                    "scale_by_worker", "desc_activ_func", "fitting_activ_func",
                    "runtime_minutes", "rmse_e", "rmse_f", "chemically_accurate",
                    "on_pareto_front", "status"});
  const auto fmt = util::CsvWriter::format;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EvalRecord& record = records[i];
    if (record.status != ea::EvalStatus::kOk || record.fitness.size() < 2) continue;
    const HyperParams hp = representation.decode(record.genome);
    writer.write_row({record.uuid, fmt(hp.start_lr), fmt(hp.stop_lr), fmt(hp.rcut),
                      fmt(hp.rcut_smth), nn::to_string(hp.scale_by_worker),
                      nn::to_string(hp.desc_activ_func),
                      nn::to_string(hp.fitting_activ_func),
                      fmt(record.runtime_minutes), fmt(record.fitness[0]),
                      fmt(record.fitness[1]), limits.accurate(record) ? "1" : "0",
                      on_front[i] ? "1" : "0", to_string(record.status)});
  }
  return out.str();
}

AxisMarginals axis_marginals(const std::vector<EvalRecord>& records,
                             const DeepMDRepresentation& representation,
                             const ChemicalAccuracy& limits) {
  AxisMarginals marginals;
  marginals.scaling_counts_accurate.assign(nn::kNumCandidateScalings, 0);
  marginals.desc_activation_counts_accurate.assign(nn::kNumCandidateActivations, 0);
  marginals.fitting_activation_counts_accurate.assign(nn::kNumCandidateActivations, 0);
  marginals.min_rcut_accurate = 1e300;
  std::vector<double> smth_accurate;

  for (const EvalRecord& record : records) {
    if (record.status != ea::EvalStatus::kOk || record.fitness.size() < 2) continue;
    ++marginals.num_total;
    marginals.max_runtime = std::max(marginals.max_runtime, record.runtime_minutes);
    if (!limits.accurate(record)) continue;
    ++marginals.num_accurate;
    const HyperParams hp = representation.decode(record.genome);
    marginals.min_rcut_accurate = std::min(marginals.min_rcut_accurate, hp.rcut);
    smth_accurate.push_back(hp.rcut_smth);
    for (int s = 0; s < nn::kNumCandidateScalings; ++s) {
      if (nn::kCandidateScalings[s] == hp.scale_by_worker) {
        ++marginals.scaling_counts_accurate[s];
      }
    }
    for (int a = 0; a < nn::kNumCandidateActivations; ++a) {
      if (nn::kCandidateActivations[a] == hp.desc_activ_func) {
        ++marginals.desc_activation_counts_accurate[a];
      }
      if (nn::kCandidateActivations[a] == hp.fitting_activ_func) {
        ++marginals.fitting_activation_counts_accurate[a];
      }
    }
  }
  if (!smth_accurate.empty()) {
    marginals.median_rcut_smth_accurate = util::quantile(smth_accurate, 0.5);
  }
  if (marginals.num_accurate == 0) marginals.min_rcut_accurate = 0.0;
  return marginals;
}

}  // namespace dpho::core
