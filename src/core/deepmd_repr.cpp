#include "core/deepmd_repr.hpp"

#include <cstdio>
#include <sstream>

#include "ea/decoder.hpp"
#include "util/error.hpp"

namespace dpho::core {

namespace {

// Table 1 of the paper.
constexpr double kStartLrLo = 3.51e-8, kStartLrHi = 0.01, kStartLrStd = 0.001;
constexpr double kStopLrLo = 3.51e-8, kStopLrHi = 0.0001, kStopLrStd = 0.0001;
constexpr double kRcutLo = 6.0, kRcutHi = 12.0, kRcutStd = 0.0625;
constexpr double kRcutSmthLo = 2.0, kRcutSmthHi = 6.0, kRcutSmthStd = 0.0625;
constexpr double kScaleLo = 0.0, kScaleHi = 3.0, kScaleStd = 0.0625;
constexpr double kActivLo = 0.0, kActivHi = 5.0, kActivStd = 0.0625;

}  // namespace

DeepMDRepresentation::DeepMDRepresentation() {
  using Gene = ea::Representation::Gene;
  representation_.add_gene(Gene{"start_lr", {kStartLrLo, kStartLrHi}, kStartLrStd,
                                {kStartLrLo, kStartLrHi}});
  representation_.add_gene(Gene{"stop_lr", {kStopLrLo, kStopLrHi}, kStopLrStd,
                                {kStopLrLo, kStopLrHi}});
  representation_.add_gene(Gene{"rcut", {kRcutLo, kRcutHi}, kRcutStd,
                                {kRcutLo, kRcutHi}});
  representation_.add_gene(Gene{"rcut_smth", {kRcutSmthLo, kRcutSmthHi}, kRcutSmthStd,
                                {kRcutSmthLo, kRcutSmthHi}});
  representation_.add_gene(Gene{"scale_by_worker", {kScaleLo, kScaleHi}, kScaleStd,
                                {kScaleLo, kScaleHi}});
  representation_.add_gene(Gene{"desc_activ_func", {kActivLo, kActivHi}, kActivStd,
                                {kActivLo, kActivHi}});
  representation_.add_gene(Gene{"fitting_activ_func", {kActivLo, kActivHi}, kActivStd,
                                {kActivLo, kActivHi}});
}

const std::vector<std::string>& DeepMDRepresentation::scaling_choices() {
  static const std::vector<std::string> kChoices = {"linear", "sqrt", "none"};
  return kChoices;
}

const std::vector<std::string>& DeepMDRepresentation::activation_choices() {
  static const std::vector<std::string> kChoices = {"relu", "relu6", "softplus",
                                                    "sigmoid", "tanh"};
  return kChoices;
}

HyperParams DeepMDRepresentation::decode(const std::vector<double>& genome) const {
  if (genome.size() != kGenomeLength) {
    throw util::ValueError("deepmd genome must have 7 genes");
  }
  HyperParams hp;
  hp.start_lr = genome[kStartLr];
  hp.stop_lr = genome[kStopLr];
  hp.rcut = genome[kRcut];
  hp.rcut_smth = genome[kRcutSmth];
  hp.scale_by_worker = nn::lr_scaling_from_string(
      ea::decode_categorical(genome[kScaleByWorker], scaling_choices()));
  hp.desc_activ_func = nn::activation_from_string(
      ea::decode_categorical(genome[kDescActivFunc], activation_choices()));
  hp.fitting_activ_func = nn::activation_from_string(
      ea::decode_categorical(genome[kFittingActivFunc], activation_choices()));
  return hp;
}

std::string DeepMDRepresentation::table1() const {
  std::ostringstream out;
  out << "hyperparameter      | initialization range | mutation std\n";
  out << "--------------------+----------------------+-------------\n";
  for (const auto& gene : representation_.genes()) {
    char line[128];
    std::snprintf(line, sizeof line, "%-19s | (%.3g, %.3g)%*s | %.4g\n",
                  gene.name.c_str(), gene.init_range.lo, gene.init_range.hi,
                  0, "", gene.mutation_std);
    out << line;
  }
  return out.str();
}

}  // namespace dpho::core
