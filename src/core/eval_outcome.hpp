// The core-owned evaluation contract.
//
// Evaluator backends report what happened to one "DeePMD training" (paper
// section 2.2.4) -- the two validation losses, the runtime, and on failure a
// machine-readable cause -- without any dependency on the cluster-simulation
// layer.  The task farm consumes these through a one-line adapter
// (core/eval_adapter.hpp); everything else in core speaks EvalOutcome.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dpho::core {

/// Why an evaluation produced no usable fitness.  Values are kept
/// numerically identical to hpc::FailureCause (static_asserts in
/// eval_adapter.hpp enforce it) so the taskfarm adapter is a static_cast;
/// core owns the evaluation vocabulary, hpc owns scheduling.
enum class FailureCause : std::uint8_t {
  kNone = 0,
  kTrainingFailure,    // backend reported a generic failure (e.g. divergence)
  kNonZeroExit,        // subprocess exited with an unexpected code
  kWallLimit,          // per-training wall limit exceeded
  kHungProcess,        // child stopped responding; killed by the watchdog
  kMissingArtifact,    // training "succeeded" but produced no lcurve.out
  kCorruptArtifact,    // lcurve.out unparseable / truncated
  kNonFiniteFitness,   // lcurve.out held NaN/Inf losses
  kException,          // in-process evaluation threw
  kNodeLoss,           // worker node died and retries were exhausted
  kMpiRelaunch,        // compute-node worker could not start a second MPI job
  kPayloadCorruption,  // injected payload corruption (fault plan)
};

std::string to_string(FailureCause cause);

/// What one evaluation reports back: fitness + runtime on success, a status
/// (training_error / cause) on failure, and how many attempts the backend's
/// internal retry policy spent.
struct EvalOutcome {
  std::vector<double> fitness;    // {rmse_e, rmse_f}; empty on failure
  double runtime_minutes = 0.0;   // simulated training runtime
  bool training_error = false;    // deterministic failure (diverged / invalid)
  FailureCause cause = FailureCause::kNone;
  std::size_t attempts = 1;       // evaluator-internal attempts (retry policy)

  /// True when the evaluation yielded usable objective values.  Timeouts are
  /// not training errors -- they carry kWallLimit and a sentinel runtime so
  /// the scheduling layer classifies them against its own task limit.
  bool ok() const { return !training_error && !fitness.empty(); }

  static EvalOutcome success(std::vector<double> fitness_values,
                             double runtime_minutes_value,
                             std::size_t attempts_value = 1);
  static EvalOutcome failure(FailureCause cause_value, double runtime_minutes_value,
                             std::size_t attempts_value = 1);
};

}  // namespace dpho::core
