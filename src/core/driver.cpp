#include "core/driver.hpp"

#include "core/engine.hpp"
#include "util/error.hpp"

namespace dpho::core {

std::string to_string(ScheduleMode mode) {
  switch (mode) {
    case ScheduleMode::kGenerational: return "generational";
    case ScheduleMode::kSteadyState: return "steady_state";
  }
  throw util::ValueError("invalid schedule mode");
}

ScheduleMode schedule_mode_from_string(const std::string& name) {
  for (const ScheduleMode mode :
       {ScheduleMode::kGenerational, ScheduleMode::kSteadyState}) {
    if (to_string(mode) == name) return mode;
  }
  throw util::ParseError("unknown schedule mode: " + name);
}

std::vector<EvalRecord> RunRecord::all_evaluations() const {
  std::vector<EvalRecord> all;
  for (const GenerationRecord& gen : generations) {
    all.insert(all.end(), gen.evaluated.begin(), gen.evaluated.end());
  }
  return all;
}

std::size_t RunRecord::total_evaluations() const {
  std::size_t count = 0;
  for (const GenerationRecord& gen : generations) count += gen.evaluated.size();
  return count;
}

std::size_t RunRecord::total_failures() const {
  std::size_t count = 0;
  for (const GenerationRecord& gen : generations) count += gen.failures;
  return count;
}

Nsga2Driver::Nsga2Driver(DriverConfig config, const Evaluator& evaluator)
    : config_(std::move(config)), evaluator_(evaluator) {
  if (config_.population_size == 0) {
    throw util::ValueError("driver: population must be positive");
  }
}

RunRecord Nsga2Driver::run(std::uint64_t seed) {
  EngineConfig engine_config;
  engine_config.mode = ScheduleMode::kGenerational;
  engine_config.population_size = config_.population_size;
  engine_config.generations = config_.generations;
  engine_config.anneal_factor = config_.anneal_factor;
  engine_config.anneal_enabled = config_.anneal_enabled;
  engine_config.sort_backend = config_.sort_backend;
  engine_config.cluster = config_.cluster;
  engine_config.farm = config_.farm;
  engine_config.cluster_backend = config_.cluster_backend;
  engine_config.include_runtime_objective = config_.include_runtime_objective;
  engine_config.representation = config_.representation;
  engine_config.checkpoint_dir = config_.checkpoint_dir;
  engine_config.resume = config_.resume;
  engine_config.halt_after_generation = config_.halt_after_generation;
  engine_config.trace_dir = config_.trace_dir;
  engine_config.metrics_interval = config_.metrics_interval;
  return EvolutionEngine(std::move(engine_config), evaluator_).run(seed);
}

}  // namespace dpho::core
