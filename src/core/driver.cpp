#include "core/driver.hpp"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.hpp"
#include "core/eval_adapter.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dpho::core {

namespace {

ea::EvalStatus to_eval_status(hpc::TaskStatus status) {
  switch (status) {
    case hpc::TaskStatus::kOk: return ea::EvalStatus::kOk;
    case hpc::TaskStatus::kTimeout: return ea::EvalStatus::kTimeout;
    case hpc::TaskStatus::kTrainingError: return ea::EvalStatus::kTrainingError;
    case hpc::TaskStatus::kNodeFailure: return ea::EvalStatus::kNodeFailure;
  }
  throw util::ValueError("invalid task status");
}

EvalRecord to_record(const ea::Individual& individual, int generation) {
  EvalRecord record;
  record.genome = individual.genome;
  record.fitness = individual.fitness;
  record.runtime_minutes = individual.eval_runtime_minutes;
  record.status = individual.status;
  record.attempts = individual.eval_attempts;
  record.failure_cause = individual.failure_cause;
  record.generation = generation;
  record.uuid = individual.uuid.str();
  return record;
}

}  // namespace

Nsga2Driver::Nsga2Driver(DriverConfig config, const Evaluator& evaluator)
    : config_(std::move(config)), evaluator_(evaluator) {
  if (config_.representation) genome_layout_ = *config_.representation;
  if (config_.population_size == 0) {
    throw util::ValueError("driver: population must be positive");
  }
  // One Dask worker (node) per concurrently evaluated individual.
  config_.farm.job.nodes = config_.population_size;
}

GenerationRecord Nsga2Driver::evaluate_population(
    std::vector<ea::Individual*>& individuals, hpc::DaskCluster& farm, int generation,
    std::uint64_t seed) {
  const hpc::WorkFn work = [&](std::size_t index) -> hpc::WorkResult {
    const ea::Individual& individual = *individuals[index];
    // Deterministic per-evaluation seed: run seed + genome identity.
    std::uint64_t eval_seed = util::hash_combine(seed, util::hash_mix(generation));
    for (double gene : individual.genome) {
      eval_seed = util::hash_combine(
          eval_seed, static_cast<std::uint64_t>(std::llround(gene * 1e9)));
    }
    // The adapter is the entire core->hpc surface of the evaluation path.
    return to_work_result(evaluator_.evaluate(individual, eval_seed));
  };
  const hpc::BatchReport report = farm.run_batch(individuals.size(), work);

  GenerationRecord record;
  record.generation = generation;
  record.makespan_minutes = report.makespan_minutes;
  record.node_failures = report.node_failures;
  for (std::size_t i = 0; i < individuals.size(); ++i) {
    ea::Individual& individual = *individuals[i];
    const hpc::TaskReport& task = report.tasks[i];
    individual.status = to_eval_status(task.status);
    individual.eval_runtime_minutes = task.sim_minutes;
    // Scheduler reassignments plus evaluator-internal retries beyond the first.
    individual.eval_attempts = task.attempts + task.payload_attempts - 1;
    individual.failure_cause = hpc::to_string(task.cause);
    if (task.status == hpc::TaskStatus::kOk) {
      individual.fitness = task.fitness;
      if (config_.include_runtime_objective) {
        individual.fitness.push_back(task.sim_minutes);
      }
    } else {
      // The paper's MAXINT convention: failed individuals sort last but keep
      // NSGA-II's ordering semantics intact (unlike NaN).
      individual.fitness.assign(config_.include_runtime_objective ? 3 : 2,
                                ea::kFailureFitness);
      ++record.failures;
    }
    record.evaluated.push_back(to_record(individual, generation));
  }
  return record;
}

RunRecord Nsga2Driver::run(std::uint64_t seed) {
  util::Rng rng(seed);
  hpc::FarmConfig farm_config = config_.farm;
  farm_config.seed = util::hash_combine(seed, 0xFA53);
  hpc::DaskCluster farm(config_.cluster, farm_config);

  RunRecord run_record;
  run_record.seed = seed;

  ea::Context context;
  context.mutation_std() = genome_layout_.initial_stds();
  const std::vector<ea::Range> bounds = genome_layout_.bounds();

  std::optional<CheckpointManager> checkpoints;
  if (config_.checkpoint_dir) checkpoints.emplace(*config_.checkpoint_dir);
  const auto save_checkpoint = [&](std::size_t completed,
                                   const ea::Population& current_parents) {
    if (!checkpoints) return;
    DriverCheckpoint checkpoint;
    checkpoint.seed = seed;
    checkpoint.completed_generations = completed;
    checkpoint.parents = current_parents;
    checkpoint.rng = rng.save_state();
    checkpoint.mutation_std = context.mutation_std();
    checkpoint.farm = farm.snapshot();
    checkpoint.generations = run_record.generations;
    checkpoints->save(checkpoint);
  };
  const auto finalize = [&](const ea::Population& current_parents) {
    for (const ea::Individual& individual : current_parents) {
      run_record.final_population.push_back(
          to_record(individual, static_cast<int>(config_.generations)));
    }
    run_record.job_minutes = farm.clock_minutes();
    return run_record;
  };

  ea::Population parents;
  std::size_t first_offspring_gen = 1;
  bool resumed = false;
  if (config_.resume && checkpoints) {
    if (std::optional<DriverCheckpoint> checkpoint = checkpoints->load()) {
      if (checkpoint->seed != seed) {
        throw util::ValueError(
            "checkpoint seed mismatch: directory holds a run for seed " +
            std::to_string(checkpoint->seed));
      }
      if (checkpoint->parents.size() != config_.population_size) {
        throw util::ValueError("checkpoint population size mismatch");
      }
      parents = std::move(checkpoint->parents);
      rng.restore_state(checkpoint->rng);
      context.mutation_std() = checkpoint->mutation_std;
      farm.restore(checkpoint->farm);
      run_record.generations = std::move(checkpoint->generations);
      first_offspring_gen = checkpoint->completed_generations + 1;
      resumed = true;
      util::log_info() << "driver: seed " << seed << " resumed after generation "
                       << checkpoint->completed_generations;
    }
  }

  if (!resumed) {
    // Generation 0: random initial population.
    parents.reserve(config_.population_size);
    for (std::size_t i = 0; i < config_.population_size; ++i) {
      parents.push_back(genome_layout_.create_individual(rng, 0));
    }
    std::vector<ea::Individual*> pending;
    for (ea::Individual& individual : parents) pending.push_back(&individual);
    GenerationRecord gen0 = evaluate_population(pending, farm, 0, seed);
    gen0.mutation_std = context.mutation_std();
    run_record.generations.push_back(std::move(gen0));
    save_checkpoint(0, parents);
    if (config_.halt_after_generation && *config_.halt_after_generation == 0) {
      return finalize(parents);
    }
  }

  for (std::size_t gen = first_offspring_gen; gen <= config_.generations; ++gen) {
    // Listing 1: select, clone, mutate; then farm the evaluations.
    const ea::SourceOp source = ea::random_selection(parents, rng);
    const ea::StreamOp cloner = ea::clone_op(rng);
    const ea::StreamOp mutator = ea::mutate_gaussian(context, bounds, rng);

    ea::Population offspring;
    offspring.reserve(config_.population_size);
    for (std::size_t i = 0; i < config_.population_size; ++i) {
      ea::Individual child = mutator(cloner(source()));
      child.birth_generation = static_cast<int>(gen);
      offspring.push_back(std::move(child));
    }
    std::vector<ea::Individual*> pending;
    for (ea::Individual& individual : offspring) pending.push_back(&individual);
    GenerationRecord gen_record =
        evaluate_population(pending, farm, static_cast<int>(gen), seed);
    gen_record.mutation_std = context.mutation_std();

    // rank_ordinal_sort(parents=parents): rank the offspring together with
    // the current parents, then truncate the union back to mu.
    ea::Population pool = parents;
    pool.insert(pool.end(), offspring.begin(), offspring.end());
    std::vector<moo::ObjectiveVector> objectives;
    objectives.reserve(pool.size());
    for (const ea::Individual& individual : pool) objectives.push_back(individual.fitness);
    const moo::RankAnnotation annotation =
        moo::assign_rank_and_crowding(objectives, config_.sort_backend);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool[i].rank = annotation.rank[i];
      pool[i].crowding_distance = annotation.crowding[i];
    }
    parents = ea::truncation_selection(config_.population_size)(std::move(pool));

    if (config_.anneal_enabled) {
      context.anneal_mutation_std(config_.anneal_factor);
    }
    run_record.generations.push_back(std::move(gen_record));
    util::log_info() << "driver: seed " << seed << " generation " << gen
                     << " makespan " << run_record.generations.back().makespan_minutes
                     << " min";
    save_checkpoint(gen, parents);
    if (config_.halt_after_generation && *config_.halt_after_generation == gen) {
      // Graceful preemption: the checkpoint above is the resume point.
      return finalize(parents);
    }
  }

  return finalize(parents);
}

}  // namespace dpho::core
