// Post-hoc analysis of experiment results (section 3 of the paper).
//
// Provides the computations behind every results table and figure:
//   * Figure 1: per-generation energy/force loss distributions;
//   * Figure 2 / Table 2: exact Pareto frontier of the aggregated last
//     generations;
//   * Figure 3: parallel-coordinates export + per-axis marginals, with the
//     chemical-accuracy classification (E < 0.004 eV/atom, F < 0.04 eV/A);
//   * Table 3: chemically accurate solutions with lowest force loss, lowest
//     energy loss, and lowest runtime.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/deepmd_repr.hpp"
#include "core/driver.hpp"

namespace dpho::core {

/// The paper's chemical-accuracy limits (section 3.2).
struct ChemicalAccuracy {
  double energy_limit = 0.004;  // eV/atom
  double force_limit = 0.04;    // eV/A

  bool accurate(const EvalRecord& record) const {
    return record.status == ea::EvalStatus::kOk && record.fitness.size() >= 2 &&
           record.fitness[0] < energy_limit && record.fitness[1] < force_limit;
  }
};

/// The union of the final parent populations of all runs ("the combined last
/// generations from all runs").
std::vector<EvalRecord> last_generation_solutions(const std::vector<RunRecord>& runs);

/// Every evaluation of a given generation across all runs (Figure 1 data).
std::vector<EvalRecord> generation_solutions(const std::vector<RunRecord>& runs,
                                             int generation);

/// Successful (non-failed) records only.
std::vector<EvalRecord> successful(const std::vector<EvalRecord>& records);

/// Indices of the exact Pareto frontier (failures excluded), sorted by
/// ascending force error like Table 2.
std::vector<std::size_t> pareto_front(const std::vector<EvalRecord>& records);

/// Subset passing the chemical-accuracy limits.
std::vector<EvalRecord> chemically_accurate(const std::vector<EvalRecord>& records,
                                            const ChemicalAccuracy& limits = {});

/// Table 3: the chemically accurate solutions with the lowest force loss,
/// lowest energy loss, and lowest runtime (empty when none qualify).
struct Table3Selection {
  std::optional<EvalRecord> lowest_force;
  std::optional<EvalRecord> lowest_energy;
  std::optional<EvalRecord> lowest_runtime;
};
Table3Selection select_table3(const std::vector<EvalRecord>& records,
                              const ChemicalAccuracy& limits = {});

/// Parallel-coordinates CSV (Figure 3): decoded hyperparameters per solution
/// plus runtime, losses, accuracy flag and Pareto membership.
std::string parallel_coordinates_csv(const std::vector<EvalRecord>& records,
                                     const DeepMDRepresentation& representation,
                                     const ChemicalAccuracy& limits = {});

/// Per-axis marginal statistics of Figure 3 used in the text of section 3.2.
struct AxisMarginals {
  double min_rcut_accurate = 0.0;        // paper: no accurate solution below 8.5
  double median_rcut_smth_accurate = 0.0;
  std::vector<std::size_t> scaling_counts_accurate;     // by decode order
  std::vector<std::size_t> desc_activation_counts_accurate;
  std::vector<std::size_t> fitting_activation_counts_accurate;
  double max_runtime = 0.0;              // paper: all below ~80 minutes
  std::size_t num_accurate = 0;
  std::size_t num_total = 0;
};
AxisMarginals axis_marginals(const std::vector<EvalRecord>& records,
                             const DeepMDRepresentation& representation,
                             const ChemicalAccuracy& limits = {});

}  // namespace dpho::core
