#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/eval_adapter.hpp"
#include "hpc/trace.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace dpho::core {

namespace {

ea::EvalStatus to_eval_status(hpc::TaskStatus status) {
  switch (status) {
    case hpc::TaskStatus::kOk: return ea::EvalStatus::kOk;
    case hpc::TaskStatus::kTimeout: return ea::EvalStatus::kTimeout;
    case hpc::TaskStatus::kTrainingError: return ea::EvalStatus::kTrainingError;
    case hpc::TaskStatus::kNodeFailure: return ea::EvalStatus::kNodeFailure;
  }
  throw util::ValueError("invalid task status");
}

/// Resolved worker count for a config (generational: one node per slot).
std::size_t resolve_workers(const EngineConfig& config) {
  if (config.mode == ScheduleMode::kGenerational) return config.population_size;
  return config.num_workers == 0 ? config.population_size : config.num_workers;
}

std::size_t resolve_budget(const EngineConfig& config) {
  if (config.total_evaluations != 0) return config.total_evaluations;
  return (config.generations + 1) * config.population_size;
}

hpc::FarmConfig farm_config_for(const EngineConfig& config, std::uint64_t seed) {
  hpc::FarmConfig farm = config.farm;
  farm.job.nodes = resolve_workers(config);
  farm.seed = util::hash_combine(seed, 0xFA53);
  return farm;
}

std::unique_ptr<hpc::ClusterSession> make_session(const EngineConfig& config,
                                                  std::uint64_t seed) {
  if (config.session_factory) {
    return config.session_factory(config.cluster,
                                  farm_config_for(config, seed));
  }
  return hpc::make_cluster_session(config.cluster,
                                   farm_config_for(config, seed),
                                   config.cluster_backend);
}

}  // namespace

std::uint64_t derive_eval_seed(std::uint64_t run_seed, int wave,
                               const std::vector<double>& genome) {
  std::uint64_t eval_seed = util::hash_combine(run_seed, util::hash_mix(wave));
  for (double gene : genome) {
    eval_seed = util::hash_combine(
        eval_seed, static_cast<std::uint64_t>(std::llround(gene * 1e9)));
  }
  return eval_seed;
}

EngineRun::EngineRun(const EngineConfig& engine_config,
                     const Evaluator& backend,
                     const ea::Representation& layout, std::uint64_t run_seed)
    : config(engine_config), evaluator(backend), genome_layout(layout),
      seed(run_seed), num_workers(resolve_workers(engine_config)),
      budget(resolve_budget(engine_config)), rng(run_seed),
      farm(make_session(engine_config, run_seed)) {
  context.mutation_std() = genome_layout.initial_stds();
  bounds = genome_layout.bounds();
  record.seed = seed;
  record.mode = config.mode;
  if (config.checkpoint_dir) checkpoints.emplace(*config.checkpoint_dir);
}

hpc::TaskSpec EngineRun::make_spec(std::size_t id,
                                   const ea::Individual& individual,
                                   int wave) const {
  hpc::TaskSpec spec;
  spec.id = id;
  spec.genome = individual.genome;
  spec.eval_seed = derive_eval_seed(seed, wave, individual.genome);
  spec.uuid = individual.uuid.str();
  return spec;
}

hpc::RemoteWorkFn EngineRun::local_work() const {
  return [this](const hpc::TaskSpec& spec) -> hpc::WorkResult {
    ea::Individual individual;
    individual.genome = spec.genome;
    individual.uuid = util::Uuid::parse(spec.uuid);
    // The adapter is the entire core->hpc surface of the evaluation path.
    return to_work_result(evaluator.evaluate(individual, spec.eval_seed));
  };
}

void EngineRun::apply_report(ea::Individual& individual,
                             const hpc::TaskReport& task) const {
  individual.status = to_eval_status(task.status);
  individual.eval_runtime_minutes = task.sim_minutes;
  // Scheduler reassignments plus evaluator-internal retries beyond the first.
  individual.eval_attempts = task.attempts + task.payload_attempts - 1;
  individual.failure_cause = hpc::to_string(task.cause);
  if (task.status == hpc::TaskStatus::kOk) {
    individual.fitness = task.fitness;
    if (config.include_runtime_objective) {
      individual.fitness.push_back(task.sim_minutes);
    }
  } else {
    // The paper's MAXINT convention: failed individuals sort last but keep
    // NSGA-II's ordering semantics intact (unlike NaN).
    individual.fitness.assign(config.include_runtime_objective ? 3 : 2,
                              ea::kFailureFitness);
  }
}

EvalRecord EngineRun::to_record(const ea::Individual& individual, int generation) {
  EvalRecord record;
  record.genome = individual.genome;
  record.fitness = individual.fitness;
  record.runtime_minutes = individual.eval_runtime_minutes;
  record.status = individual.status;
  record.attempts = individual.eval_attempts;
  record.failure_cause = individual.failure_cause;
  record.generation = generation;
  record.uuid = individual.uuid.str();
  return record;
}

GenerationRecord EngineRun::evaluate_generation(
    std::vector<ea::Individual*>& individuals, int generation) {
  std::vector<hpc::TaskSpec> specs;
  specs.reserve(individuals.size());
  for (std::size_t i = 0; i < individuals.size(); ++i) {
    specs.push_back(make_spec(i, *individuals[i], generation));
  }
  const hpc::BatchReport report = farm->run_batch(specs, local_work());
  export_trace(report, "gen-" + std::to_string(generation));

  GenerationRecord gen_record;
  gen_record.generation = generation;
  gen_record.makespan_minutes = report.makespan_minutes;
  gen_record.node_failures = report.node_failures;
  for (std::size_t i = 0; i < individuals.size(); ++i) {
    ea::Individual& individual = *individuals[i];
    apply_report(individual, report.tasks[i]);
    if (individual.status != ea::EvalStatus::kOk) ++gen_record.failures;
    gen_record.evaluated.push_back(to_record(individual, generation));
  }
  return gen_record;
}

ea::Population EngineRun::truncate(ea::Population pool) const {
  std::vector<moo::ObjectiveVector> objectives;
  objectives.reserve(pool.size());
  for (const ea::Individual& individual : pool) {
    objectives.push_back(individual.fitness);
  }
  const moo::RankAnnotation annotation =
      moo::assign_rank_and_crowding(objectives, config.sort_backend);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].rank = annotation.rank[i];
    pool[i].crowding_distance = annotation.crowding[i];
  }
  return ea::truncation_selection(config.population_size)(std::move(pool));
}

void EngineRun::export_trace(const hpc::BatchReport& report,
                             const std::string& label) const {
  if (!config.trace_dir) return;
  std::filesystem::create_directories(*config.trace_dir);
  util::write_file(*config.trace_dir / ("trace-" + label + ".csv"),
                   hpc::trace_csv(report));
  util::write_file(*config.trace_dir / ("gantt-" + label + ".txt"),
                   hpc::gantt_art(report) + "\n");
}

void EngineRun::record_wave_metrics(const GenerationRecord& wave) {
  auto& registry = obs::metrics();
  registry.counter("engine.waves_total").add(1);
  registry.counter("engine.evaluations_total")
      .add(static_cast<std::int64_t>(wave.evaluated.size()));
  registry.counter("engine.eval_failures_total")
      .add(static_cast<std::int64_t>(wave.failures));
  obs::events().emit(
      "engine.wave",
      {{"seed", static_cast<std::int64_t>(seed)},
       {"generation", static_cast<std::int64_t>(wave.generation)},
       {"evaluations", static_cast<std::int64_t>(wave.evaluated.size())},
       {"failures", static_cast<std::int64_t>(wave.failures)},
       {"node_failures", static_cast<std::int64_t>(wave.node_failures)},
       {"makespan_minutes", wave.makespan_minutes}});
  const std::int64_t waves = registry.counter("engine.waves_total").value();
  if (config.metrics_interval != 0 && obs::events().enabled() &&
      waves % static_cast<std::int64_t>(config.metrics_interval) == 0) {
    obs::events().emit("engine.metrics",
                       {{"waves", waves},
                        {"deterministic", registry.deterministic_json()}});
  }
}

DriverCheckpoint EngineRun::base_checkpoint(std::size_t completed,
                                            const ea::Population& parents) const {
  DriverCheckpoint checkpoint;
  checkpoint.seed = seed;
  checkpoint.mode = config.mode;
  checkpoint.completed_generations = completed;
  checkpoint.parents = parents;
  checkpoint.rng = rng.save_state();
  checkpoint.mutation_std = context.mutation_std();
  checkpoint.farm = farm->snapshot();
  checkpoint.generations = record.generations;
  return checkpoint;
}

void EngineRun::finalize(const ea::Population& parents, int generation_tag,
                         double extra_minutes) {
  for (const ea::Individual& individual : parents) {
    record.final_population.push_back(to_record(individual, generation_tag));
  }
  record.job_minutes = farm->clock_minutes() + extra_minutes;
  double busy_minutes = 0.0;
  for (const GenerationRecord& gen : record.generations) {
    for (const EvalRecord& eval : gen.evaluated) {
      busy_minutes += eval.runtime_minutes;
    }
  }
  record.busy_fraction =
      record.job_minutes > 0.0
          ? busy_minutes /
                (record.job_minutes * static_cast<double>(num_workers))
          : 0.0;
  auto& registry = obs::metrics();
  registry.gauge("engine.job_minutes").set(record.job_minutes);
  registry.gauge("engine.busy_fraction").set(record.busy_fraction);
  std::size_t evaluations = 0;
  for (const GenerationRecord& gen : record.generations) {
    evaluations += gen.evaluated.size();
  }
  obs::events().emit("engine.run_end",
                     {{"seed", static_cast<std::int64_t>(seed)},
                      {"evaluations", static_cast<std::int64_t>(evaluations)},
                      {"job_minutes", record.job_minutes},
                      {"busy_fraction", record.busy_fraction}});
}

ea::Individual VariationPolicy::make_child(EngineRun& run,
                                           const ea::Population& parents,
                                           int birth_tag) const {
  // Listing 1's variation pipeline: uniform selection, clone, bounded
  // Gaussian mutation.  The ops draw no RNG at construction, so building
  // them per child keeps the draw order of the original per-generation code.
  const ea::SourceOp source = ea::random_selection(parents, run.rng);
  const ea::StreamOp cloner = ea::clone_op(run.rng);
  const ea::StreamOp mutator = ea::mutate_gaussian(run.context, run.bounds, run.rng);
  ea::Individual child = mutator(cloner(source()));
  child.birth_generation = birth_tag;
  obs::metrics().counter("engine.births_total").add(1);
  obs::events().emit("engine.birth",
                     {{"seed", static_cast<std::int64_t>(run.seed)},
                      {"birth_tag", static_cast<std::int64_t>(birth_tag)},
                      {"uuid", child.uuid.str()}});
  return child;
}

void GenerationalAnnealing::after_generation(EngineRun& run) {
  if (run.config.anneal_enabled) {
    run.context.anneal_mutation_std(run.config.anneal_factor);
  }
}

void PerBirthAnnealing::after_birth(EngineRun& run) {
  if (!run.config.anneal_enabled) return;
  // Generational annealing multiplies sigma by the factor per mu births;
  // apply the equivalent per-birth factor so schedules match at equal
  // budgets.
  run.context.anneal_mutation_std(
      std::pow(run.config.anneal_factor,
               1.0 / static_cast<double>(run.config.population_size)));
}

void GenerationalSchedule::run(EngineRun& run, VariationPolicy& variation) {
  const EngineConfig& config = run.config;

  ea::Population parents;
  std::size_t first_offspring_gen = 1;
  bool resumed = false;
  if (config.resume && run.checkpoints) {
    if (std::optional<DriverCheckpoint> checkpoint = run.checkpoints->load()) {
      if (checkpoint->seed != run.seed) {
        throw util::ValueError(
            "checkpoint seed mismatch: directory holds a run for seed " +
            std::to_string(checkpoint->seed));
      }
      if (checkpoint->mode != ScheduleMode::kGenerational) {
        throw util::ValueError("checkpoint mode mismatch: directory holds a " +
                               to_string(checkpoint->mode) + " run");
      }
      if (checkpoint->parents.size() != config.population_size) {
        throw util::ValueError("checkpoint population size mismatch");
      }
      parents = std::move(checkpoint->parents);
      run.rng.restore_state(checkpoint->rng);
      run.context.mutation_std() = checkpoint->mutation_std;
      if (!run.farm->restore(checkpoint->farm).empty()) {
        // Generational checkpoints are only written at wave barriers, where
        // no task is in flight.
        throw util::ValueError(
            "generational checkpoint reports lost in-flight tasks");
      }
      run.record.generations = std::move(checkpoint->generations);
      first_offspring_gen = checkpoint->completed_generations + 1;
      resumed = true;
      util::log_info() << "driver: seed " << run.seed << " resumed after generation "
                       << checkpoint->completed_generations;
    }
  }

  const auto save_checkpoint = [&](std::size_t completed) {
    if (!run.checkpoints) return;
    run.checkpoints->save(run.base_checkpoint(completed, parents));
  };

  if (!resumed) {
    // Generation 0: random initial population.
    parents.reserve(config.population_size);
    for (std::size_t i = 0; i < config.population_size; ++i) {
      parents.push_back(run.genome_layout.create_individual(run.rng, 0));
    }
    std::vector<ea::Individual*> pending;
    for (ea::Individual& individual : parents) pending.push_back(&individual);
    GenerationRecord gen0 = run.evaluate_generation(pending, 0);
    gen0.mutation_std = run.context.mutation_std();
    run.record_wave_metrics(gen0);
    run.record.generations.push_back(std::move(gen0));
    save_checkpoint(0);
    if (config.halt_after_generation && *config.halt_after_generation == 0) {
      run.finalize(parents, static_cast<int>(config.generations));
      return;
    }
  }

  for (std::size_t gen = first_offspring_gen; gen <= config.generations; ++gen) {
    // Listing 1: select, clone, mutate; then farm the evaluations.
    ea::Population offspring;
    offspring.reserve(config.population_size);
    for (std::size_t i = 0; i < config.population_size; ++i) {
      offspring.push_back(
          variation.make_child(run, parents, static_cast<int>(gen)));
    }
    std::vector<ea::Individual*> pending;
    for (ea::Individual& individual : offspring) pending.push_back(&individual);
    GenerationRecord gen_record =
        run.evaluate_generation(pending, static_cast<int>(gen));
    gen_record.mutation_std = run.context.mutation_std();

    // rank_ordinal_sort(parents=parents): rank the offspring together with
    // the current parents, then truncate the union back to mu.
    ea::Population pool = parents;
    pool.insert(pool.end(), offspring.begin(), offspring.end());
    parents = run.truncate(std::move(pool));

    variation.after_generation(run);
    run.record_wave_metrics(gen_record);
    run.record.generations.push_back(std::move(gen_record));
    util::log_info() << "driver: seed " << run.seed << " generation " << gen
                     << " makespan "
                     << run.record.generations.back().makespan_minutes << " min";
    save_checkpoint(gen);
    if (config.halt_after_generation && *config.halt_after_generation == gen) {
      // Graceful preemption: the checkpoint above is the resume point.
      run.finalize(parents, static_cast<int>(config.generations));
      return;
    }
  }

  run.finalize(parents, static_cast<int>(config.generations));
}

void SteadyStateSchedule::run(EngineRun& run, VariationPolicy& variation) {
  SteadyStateLoop loop(run, variation);
  loop.start();
  while (!loop.done()) {
    const std::optional<hpc::StreamCompletion> done = run.farm->stream_next();
    if (!done) break;
    loop.handle(*done);
  }
  loop.finish();
}

SteadyStateLoop::SteadyStateLoop(EngineRun& run, VariationPolicy& variation)
    : run_(run), variation_(variation) {}

// Submit one offspring: the payload is computed now (deterministic seed
// keyed on the birth's wave), the farm resolves faults/retries, and the
// completion surfaces at its simulated finish time.
void SteadyStateLoop::submit(ea::Individual individual) {
  const std::size_t id = births_;
  const int wave_of_birth =
      static_cast<int>(id / run_.config.population_size);
  run_.farm->stream_submit(run_.make_spec(id, individual, wave_of_birth),
                           run_.local_work());
  in_flight_.emplace(id, std::move(individual));
  ++births_;
}

void SteadyStateLoop::save_checkpoint() {
  if (!run_.checkpoints) return;
  DriverCheckpoint checkpoint = run_.base_checkpoint(completions_, archive_);
  checkpoint.births = births_;
  checkpoint.wave_started_minutes = wave_started_;
  checkpoint.wave_node_failures_base = wave_node_failures_base_;
  checkpoint.partial_wave = wave_;
  for (auto& [id, individual] : in_flight_) {
    checkpoint.in_flight.push_back(InFlightBirth{id, individual});
  }
  run_.checkpoints->save(checkpoint);
}

void SteadyStateLoop::start() {
  const EngineConfig& config = run_.config;

  bool resumed = false;
  if (config.resume && run_.checkpoints) {
    if (std::optional<DriverCheckpoint> checkpoint = run_.checkpoints->load()) {
      if (checkpoint->seed != run_.seed) {
        throw util::ValueError(
            "checkpoint seed mismatch: directory holds a run for seed " +
            std::to_string(checkpoint->seed));
      }
      if (checkpoint->mode != ScheduleMode::kSteadyState) {
        throw util::ValueError("checkpoint mode mismatch: directory holds a " +
                               to_string(checkpoint->mode) + " run");
      }
      archive_ = std::move(checkpoint->parents);
      run_.rng.restore_state(checkpoint->rng);
      run_.context.mutation_std() = checkpoint->mutation_std;
      run_.record.generations = std::move(checkpoint->generations);
      births_ = checkpoint->births;
      completions_ = checkpoint->completed_generations;
      wave_index_ = run_.record.generations.size();
      wave_started_ = checkpoint->wave_started_minutes;
      wave_node_failures_base_ = checkpoint->wave_node_failures_base;
      if (checkpoint->partial_wave) {
        wave_ = std::move(*checkpoint->partial_wave);
      }
      for (InFlightBirth& birth : checkpoint->in_flight) {
        in_flight_.emplace(birth.id, std::move(birth.individual));
      }
      // The farm snapshot carries the open stream session.  The sim backend
      // restores every in-flight report verbatim; the process backend cannot
      // preserve a real worker's half-finished evaluation, so it reports the
      // lost ids back and we re-submit them (same deterministic eval seed --
      // the re-run is fitness-identical to what the dead run would have
      // produced).
      const std::vector<std::size_t> lost =
          run_.farm->restore(checkpoint->farm);
      for (const std::size_t id : lost) {
        const auto it = in_flight_.find(id);
        if (it == in_flight_.end()) {
          throw util::ValueError(
              "restore reported lost task " + std::to_string(id) +
              " that the checkpoint does not hold in flight");
        }
        const int wave_of_birth =
            static_cast<int>(id / config.population_size);
        run_.farm->stream_submit(run_.make_spec(id, it->second, wave_of_birth),
                                 run_.local_work());
      }
      resumed = true;
      util::log_info() << "engine: seed " << run_.seed << " resumed after "
                       << completions_ << " completions (" << in_flight_.size()
                       << " in flight, " << lost.size() << " re-submitted)";
    }
  }

  if (!resumed) {
    run_.farm->stream_begin();
    // Initial wave: one random individual per worker.
    for (std::size_t worker = 0; worker < run_.num_workers; ++worker) {
      submit(run_.genome_layout.create_individual(run_.rng, 0));
    }
  }
}

void SteadyStateLoop::handle(const hpc::StreamCompletion& done) {
  const EngineConfig& config = run_.config;
  const std::size_t mu = config.population_size;

  const auto it = in_flight_.find(done.id);
  if (it == in_flight_.end()) {
    throw util::ValueError("engine: completion for unknown task id " +
                           std::to_string(done.id));
  }
  ea::Individual individual = std::move(it->second);
  in_flight_.erase(it);
  run_.apply_report(individual, done.report);
  if (individual.status != ea::EvalStatus::kOk) ++wave_.failures;
  wave_.evaluated.push_back(
      EngineRun::to_record(individual, static_cast<int>(wave_index_)));
  ++completions_;

  // Steady-state survivor truncation over archive + newcomer.
  archive_.push_back(std::move(individual));
  if (archive_.size() > mu) archive_ = run_.truncate(std::move(archive_));

  // Refill the idle worker immediately (no barrier).
  if (births_ < run_.budget) {
    ea::Individual child =
        variation_.make_child(run_, archive_, static_cast<int>(births_));
    variation_.after_birth(run_);
    submit(std::move(child));
  }

  // Close the wave once mu completions landed (or the budget ran dry).
  if (wave_.evaluated.size() == mu || completions_ == run_.budget) {
    wave_.generation = static_cast<int>(wave_index_);
    wave_.makespan_minutes = run_.farm->stream_now() - wave_started_;
    wave_.node_failures =
        run_.farm->stream_node_failures() - wave_node_failures_base_;
    wave_.mutation_std = run_.context.mutation_std();
    run_.record_wave_metrics(wave_);
    run_.record.generations.push_back(std::move(wave_));
    wave_ = GenerationRecord{};
    ++wave_index_;
    wave_started_ = run_.farm->stream_now();
    wave_node_failures_base_ = run_.farm->stream_node_failures();
  }

  if (run_.checkpoints && config.checkpoint_every != 0 &&
      completions_ % config.checkpoint_every == 0) {
    save_checkpoint();
  }
  if (config.halt_after_evaluations &&
      completions_ == *config.halt_after_evaluations) {
    // Graceful preemption mid-wave: persist the event-loop state (the farm
    // snapshot carries the open stream session) and stop without closing
    // the session, exactly like a crash the checkpoint protects against.
    save_checkpoint();
    halted_ = true;
  }
}

bool SteadyStateLoop::done() const {
  return halted_ || run_.farm->stream_pending() == 0;
}

void SteadyStateLoop::finish() {
  if (finished_) throw util::ValueError("engine: loop already finished");
  finished_ = true;
  if (halted_) {
    run_.finalize(archive_, static_cast<int>(wave_index_),
                  run_.farm->stream_now());
    return;
  }
  const hpc::BatchReport report = run_.farm->stream_end();
  run_.export_trace(report, "stream");
  run_.finalize(archive_, static_cast<int>(wave_index_));
}

EvolutionEngine::EvolutionEngine(EngineConfig config, const Evaluator& evaluator)
    : config_(std::move(config)), evaluator_(evaluator),
      genome_layout_(config_.representation
                         ? *config_.representation
                         : DeepMDRepresentation().representation()) {
  if (config_.population_size == 0) {
    throw util::ValueError("engine: population must be positive");
  }
  if (config_.representation &&
      config_.cluster_backend.kind == hpc::ClusterBackendKind::kProcess) {
    // Workers decode genomes with the default DeepMD representation; a
    // custom layout would silently disagree with the scheduler's.
    throw util::ValueError(
        "engine: custom representations are not supported by the process "
        "cluster backend");
  }
  if (config_.mode == ScheduleMode::kSteadyState) {
    if (resolve_workers(config_) == 0) {
      throw util::ValueError("engine: need >= 1 worker");
    }
    if (resolve_budget(config_) < resolve_workers(config_)) {
      throw util::ValueError("engine: budget must cover the initial wave");
    }
  }
}

RunRecord EvolutionEngine::run(std::uint64_t seed) {
  EngineRun state(config_, evaluator_, genome_layout_, seed);
  obs::events().emit(
      "engine.run_begin",
      {{"seed", static_cast<std::int64_t>(seed)},
       {"mode", to_string(config_.mode)},
       {"population", static_cast<std::int64_t>(config_.population_size)},
       {"workers", static_cast<std::int64_t>(state.num_workers)},
       {"budget", static_cast<std::int64_t>(state.budget)}});

  std::unique_ptr<SchedulePolicy> schedule;
  std::unique_ptr<VariationPolicy> variation;
  if (config_.mode == ScheduleMode::kGenerational) {
    schedule = std::make_unique<GenerationalSchedule>();
    variation = std::make_unique<GenerationalAnnealing>();
  } else {
    schedule = std::make_unique<SteadyStateSchedule>();
    variation = std::make_unique<PerBirthAnnealing>();
  }
  schedule->run(state, *variation);
  return std::move(state.record);
}

}  // namespace dpho::core
