// The one-line boundary between core's evaluation contract and the task
// farm's work protocol.  Only code that actually hands evaluations to a
// DaskCluster (driver.cpp, async_driver.cpp, nas.cpp) includes this header;
// everything else in core is hpc-free.
#pragma once

#include <utility>

#include "core/eval_outcome.hpp"
#include "hpc/taskfarm.hpp"

namespace dpho::core {

// FailureCause is a core-owned mirror of hpc::FailureCause; pin every value
// so the adapter below can be a static_cast.
#define DPHO_CHECK_CAUSE(name)                                  \
  static_assert(static_cast<int>(FailureCause::name) ==         \
                    static_cast<int>(hpc::FailureCause::name),  \
                "core::FailureCause::" #name                    \
                " diverged from hpc::FailureCause")
DPHO_CHECK_CAUSE(kNone);
DPHO_CHECK_CAUSE(kTrainingFailure);
DPHO_CHECK_CAUSE(kNonZeroExit);
DPHO_CHECK_CAUSE(kWallLimit);
DPHO_CHECK_CAUSE(kHungProcess);
DPHO_CHECK_CAUSE(kMissingArtifact);
DPHO_CHECK_CAUSE(kCorruptArtifact);
DPHO_CHECK_CAUSE(kNonFiniteFitness);
DPHO_CHECK_CAUSE(kException);
DPHO_CHECK_CAUSE(kNodeLoss);
DPHO_CHECK_CAUSE(kMpiRelaunch);
DPHO_CHECK_CAUSE(kPayloadCorruption);
#undef DPHO_CHECK_CAUSE

inline hpc::WorkResult to_work_result(EvalOutcome outcome) {
  return hpc::WorkResult{std::move(outcome.fitness), outcome.runtime_minutes,
                         outcome.training_error,
                         static_cast<hpc::FailureCause>(outcome.cause),
                         outcome.attempts};
}

inline EvalOutcome from_work_result(hpc::WorkResult result) {
  EvalOutcome outcome;
  outcome.fitness = std::move(result.fitness);
  outcome.runtime_minutes = result.sim_minutes;
  outcome.training_error = result.training_error;
  outcome.cause = static_cast<FailureCause>(result.cause);
  outcome.attempts = result.attempts;
  return outcome;
}

}  // namespace dpho::core
