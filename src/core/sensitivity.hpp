// One-at-a-time hyperparameter sensitivity analysis.
//
// The paper's introduction motivates the search by noting that "neither a
// detailed sensitivity analysis nor a hyperparameter optimization has been
// reported" for DeePMD-kit training.  This module provides the former over
// any Evaluator-compatible landscape: sweep each of the seven hyperparameters
// across its Table-1 range around a baseline configuration and record the
// response of both objectives and the runtime.  Used by bench_sensitivity
// and available to downstream users for their own datasets.
#pragma once

#include <string>
#include <vector>

#include "core/deepmd_repr.hpp"
#include "core/surrogate.hpp"

namespace dpho::core {

/// One sample of a sweep.
struct SensitivityPoint {
  double gene_value = 0.0;      // raw genome value swept
  std::string decoded;          // human-readable decoded value
  SurrogateOutcome outcome;     // noise-free response
};

/// The sweep of one hyperparameter.
struct SensitivitySweep {
  std::string parameter;
  std::vector<SensitivityPoint> points;

  /// max/min of the finite force responses -- a crude effect size.
  double force_dynamic_range() const;
  double energy_dynamic_range() const;
};

/// Full one-at-a-time analysis configuration.
struct SensitivityConfig {
  /// Baseline genome; defaults to the paper's Table-3 solution 1.
  std::vector<double> baseline = {0.0047, 0.0001, 11.32, 2.42, 2.3, 4.6, 4.2};
  std::size_t samples_per_parameter = 13;
};

class SensitivityAnalysis {
 public:
  explicit SensitivityAnalysis(TrainingSurrogate surrogate = TrainingSurrogate(),
                               SensitivityConfig config = {});

  /// Sweeps every gene of the representation; continuous genes sample the
  /// initialization range uniformly, categorical genes enumerate choices.
  std::vector<SensitivitySweep> run() const;

  /// Renders all sweeps as a CSV (parameter, value, decoded, rmse_e, rmse_f,
  /// runtime, failed).
  static std::string to_csv(const std::vector<SensitivitySweep>& sweeps);

  /// Sweeps ranked by force-error dynamic range (most influential first).
  static std::vector<std::string> ranking(const std::vector<SensitivitySweep>& sweeps);

 private:
  DeepMDRepresentation representation_;
  TrainingSurrogate surrogate_;
  SensitivityConfig config_;
};

}  // namespace dpho::core
