#include "core/workspace.hpp"

#include "util/fs.hpp"
#include "util/str_template.hpp"

namespace dpho::core {

const std::string& default_input_template() {
  static const std::string kTemplate = R"({
  "model": {
    "type_map": ["Al", "K", "Cl"],
    "descriptor": {
      "type": "se_e2_a",
      "rcut": ${rcut},
      "rcut_smth": ${rcut_smth},
      "neuron": [25, 50, 100],
      "axis_neuron": 4,
      "activation_function": "${desc_activ_func}"
    },
    "fitting_net": {
      "neuron": [240, 240, 240],
      "activation_function": "${fitting_activ_func}"
    }
  },
  "learning_rate": {
    "type": "exp",
    "start_lr": ${start_lr},
    "stop_lr": ${stop_lr},
    "scale_by_worker": "${scale_by_worker}"
  },
  "loss": {
    "start_pref_e": 0.02,
    "limit_pref_e": 1,
    "start_pref_f": 1000,
    "limit_pref_f": 1
  },
  "training": {
    "numb_steps": 40000,
    "batch_size": 1,
    "disp_freq": 100,
    "seed": 1
  },
  "num_workers": 6
}
)";
  return kTemplate;
}

Workspace::Workspace(std::filesystem::path base, std::string input_template)
    : base_(std::move(base)), input_template_(std::move(input_template)) {
  std::filesystem::create_directories(base_);
}

std::filesystem::path Workspace::run_dir(const ea::Individual& individual) const {
  return base_ / individual.uuid.str();
}

std::filesystem::path Workspace::prepare(const ea::Individual& individual,
                                         const HyperParams& hp) const {
  const std::filesystem::path dir = run_dir(individual);
  std::filesystem::create_directories(dir);
  const util::StrTemplate input_template(input_template_);
  const std::string rendered = input_template.substitute(hp.template_variables());
  const std::filesystem::path input_path = dir / "input.json";
  util::write_file(input_path, rendered);
  return input_path;
}

std::filesystem::path Workspace::lcurve_path(const ea::Individual& individual) const {
  return run_dir(individual) / "lcurve.out";
}

}  // namespace dpho::core
