// Crash-safe checkpointing of the HPO run loop.
//
// The paper's deployments live under Summit's 12-hour batch wall limit and
// explicitly tolerate lost nodes (section 2.2.5) -- but losing the *driver*
// process would discard an entire deployment (up to 700 trainings).  This
// layer persists the complete EA state after every generation so a killed run
// resumes exactly where it stopped:
//
//   * the parent population (genomes, fitness, NSGA-II bookkeeping, UUIDs),
//   * the driver's RNG stream (bit-exact, including the Box-Muller cache),
//   * the annealed per-gene mutation sigma vector,
//   * the simulated farm state (job clock, node-health map, farm RNG stream),
//   * every GenerationRecord accumulated so far.
//
// Write protocol: each checkpoint is serialized to JSON, written to a unique
// temporary sibling, fsynced, and renamed into place (util::atomic_write_file)
// -- a crash between any two steps leaves either the previous checkpoint or
// the complete new one, never a torn file.  A `manifest.json` (written with
// the same protocol) names the latest checkpoint; `load()` additionally scans
// the directory so a crash between checkpoint-rename and manifest-rename
// still resumes from the newest complete generation.
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "core/driver.hpp"
#include "ea/individual.hpp"
#include "hpc/taskfarm.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace dpho::core {

/// One in-flight steady-state offspring: submitted to the farm (task id) but
/// not yet delivered back to the engine.
struct InFlightBirth {
  std::size_t id = 0;       // farm stream task id == birth index
  ea::Individual individual;
};

/// Everything needed to resume an EvolutionEngine run bit-for-bit.  For
/// generational runs `completed_generations` is the index of the last
/// finished wave; for steady-state runs it counts delivered completions, and
/// the in-flight/wave fields capture the mid-wave event-loop state (the farm
/// snapshot holds the matching stream-session state).
struct DriverCheckpoint {
  std::uint64_t seed = 0;
  ScheduleMode mode = ScheduleMode::kGenerational;
  std::size_t completed_generations = 0;  // generational: waves; async: completions
  ea::Population parents;                 // survivors / current archive
  util::RngState rng;                     // driver stream
  std::vector<double> mutation_std;       // post-anneal sigma vector
  hpc::FarmSnapshot farm;                 // job clock + node health + farm rng
  std::vector<GenerationRecord> generations;  // completed waves
  // Steady-state extras (defaults for generational checkpoints).
  std::size_t births = 0;                    // offspring submitted so far
  double wave_started_minutes = 0.0;         // session time the open wave began
  std::size_t wave_node_failures_base = 0;   // node-failure count at wave start
  std::optional<GenerationRecord> partial_wave;  // the open wave's records
  std::vector<InFlightBirth> in_flight;      // submitted, not yet delivered
};

/// Atomic, versioned persistence of DriverCheckpoints in one directory.
class CheckpointManager {
 public:
  /// Bump on any incompatible change to the checkpoint JSON layout; load()
  /// refuses mismatched documents rather than resuming from garbage.
  /// Version 2 added the schedule mode tag and the steady-state stream/
  /// in-flight state; version-1 documents still load (as generational).
  static constexpr int kSchemaVersion = 2;

  /// Creates `dir` (and parents) if missing.
  explicit CheckpointManager(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }

  /// Atomically persists `checkpoint` and updates the manifest; older
  /// checkpoint files are pruned afterwards.  Throws util::IoError on
  /// unwritable storage.
  void save(const DriverCheckpoint& checkpoint) const;

  /// Loads the newest complete checkpoint, preferring the manifest but
  /// falling back to a directory scan; corrupt or torn candidates are
  /// skipped.  Returns nullopt when the directory holds no usable checkpoint.
  std::optional<DriverCheckpoint> load() const;

  /// True when load() would return a checkpoint.
  bool has_checkpoint() const { return load().has_value(); }

  /// JSON (de)serialization, exposed for tests.  Doubles round-trip
  /// bit-exactly (shortest-round-trip formatting); 64-bit RNG words are hex
  /// encoded because JSON numbers cannot hold them losslessly.
  static util::Json to_json(const DriverCheckpoint& checkpoint);
  static DriverCheckpoint from_json(const util::Json& json);

 private:
  std::filesystem::path checkpoint_path(std::size_t generation) const;

  std::filesystem::path dir_;
};

}  // namespace dpho::core
