// Calibrated training-outcome surrogate.
//
// The paper's 3500 evaluations are each a two-hour, six-GPU DeePMD training
// on ~250k DFT frames -- unreproducible hardware and data (repro band 2/5).
// This surrogate is the documented substitution (DESIGN.md section 1): an
// analytic response surface mapping the seven decoded hyperparameters to
// (energy RMSE, force RMSE, runtime, failure), shaped to the findings the
// paper reports in section 3:
//
//   * chemically accurate solutions require rcut >= ~8.5 A, with force error
//     decaying and runtime growing as rcut increases;
//   * rcut_smth has a mild effect, preferring values below ~4.5 A;
//   * relu/relu6 fitting activations are uncompetitive (they die out);
//     sigmoid descriptor activation is never chemically accurate;
//     tanh/softplus excel in both roles;
//   * with only 6 data-parallel workers, "sqrt" or "none" learning-rate
//     scaling beats the default "linear" (which overshoots the LR optimum);
//   * start_lr has an optimum near 3-6e-3 effective; stop_lr is best in
//     [2e-5, 1e-4]: lower values decay the LR too fast to finish learning in
//     the fixed 40k steps.  Higher stop_lr keeps the force-dominant phase of
//     the loss schedule longer (better force, worse energy) -- this is what
//     produces the energy/force Pareto trade-off;
//   * runtimes stay below ~80 minutes, with softplus descriptor slightly
//     slower; failed configurations die within minutes;
//   * severely under-trained settings (tiny learning rates) leave the model
//     at its initialization error (force ~ O(1) eV/A), producing the gen-0
//     outliers of Figure 1.
//
// A cross-check test (tests/core/surrogate_crosscheck_test.cpp) trains the
// *real* dp stack over a small sweep and asserts the same qualitative
// orderings, grounding these shapes in an actual training code path.
//
// All draws are deterministic given (genome-derived seed, run nonce).
#pragma once

#include <cstdint>

#include "core/hyperparams.hpp"

namespace dpho::core {

/// What one simulated training run reports.
struct SurrogateOutcome {
  double rmse_e = 0.0;          // eV/atom, validation energy RMSE
  double rmse_f = 0.0;          // eV/A, validation force RMSE
  double runtime_minutes = 0.0;
  bool failed = false;          // diverged / invalid configuration
};

/// Tunable calibration constants (defaults reproduce the paper's landscape).
struct SurrogateConfig {
  std::size_t num_workers = 6;   // GPUs per training (Horovod ranks)
  double train_steps = 40000.0;  // the paper's fixed step budget

  // Force-error model (eV/A).
  double force_floor = 0.0370;
  double force_rcut_amp = 0.035;
  double force_rcut_decay = 1.3;    // e-folding in Angstrom
  double force_smth_penalty = 0.0022;  // per Angstrom above the soft threshold
  double smth_threshold = 4.5;

  // Energy-error model (eV/atom).
  double energy_floor = 0.00075;
  double energy_rcut_amp = 0.0045;
  double energy_rcut_decay = 1.5;

  // Learning-rate response (decades).
  double lr_optimum_log10 = -2.35;  // effective start LR ~ 4.5e-3
  double lr_curvature_f = 0.0040;
  double lr_curvature_e = 0.00070;

  // stop_lr band and the energy/force trade-off ("balance").
  double stop_lr_best_log10 = -4.6;   // quadratic penalty below this
  double stop_lr_penalty_f = 0.0020;  // per decade^2 below the band
  double stop_lr_penalty_e = 0.00060;
  double balance_lo_log10 = -5.0;     // balance 0 at stop_lr 1e-5...
  double balance_span = 1.0;          // ...1 at stop_lr 1e-4
  double tradeoff_force_gain = 0.13;  // force improves with balance
  double tradeoff_energy_base = 0.5;  // energy mult = base + gain * balance
  double tradeoff_energy_gain = 1.5;

  // Under-training blend (gen-0 outliers): the budget is the mean learning
  // rate over the exponential decay times the step count.
  double untrained_force = 1.8;   // eV/A, error of an untrained model
  double untrained_energy = 0.09; // eV/atom
  double budget_floor = 0.05;     // learning budget giving alpha = 0

  // Runtime model (minutes).
  double runtime_base = 25.0;
  double runtime_rcut_amp = 26.0;
  double runtime_rcut_ref = 10.0;
  double failed_runtime_lo = 1.0;
  double failed_runtime_hi = 6.0;

  // Failure model.
  double diverge_lr_soft = 0.045;  // effective LR where divergence risk starts
  double diverge_lr_hard = 0.13;   // ~certain divergence
  double base_failure_rate = 0.0005;

  // Noise (lognormal sigma on both errors; uniform +/- on runtime).
  double noise_sigma = 0.040;
  double runtime_noise = 0.02;
};

/// Deterministic surrogate of one DeePMD training.
class TrainingSurrogate {
 public:
  explicit TrainingSurrogate(SurrogateConfig config = {});

  const SurrogateConfig& config() const { return config_; }

  /// Simulates one training; `seed` individualizes the stochastic terms
  /// (derive it from the genome and run id for reproducibility).
  SurrogateOutcome evaluate(const HyperParams& hp, std::uint64_t seed) const;

  /// The noise-free error surface (used by tests and sensitivity benches).
  SurrogateOutcome evaluate_mean(const HyperParams& hp) const;

 private:
  SurrogateOutcome evaluate_impl(const HyperParams& hp, std::uint64_t seed,
                                 bool with_noise) const;

  SurrogateConfig config_;
};

}  // namespace dpho::core
