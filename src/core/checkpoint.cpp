#include "core/checkpoint.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/experiment.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace dpho::core {

namespace {

constexpr const char* kFormatTag = "dpho-checkpoint";
constexpr const char* kManifestName = "manifest.json";

// JSON numbers are doubles: a full 64-bit RNG word cannot survive the trip.
// Hex-encode every uint64 that must restore bit-exactly.
std::string u64_to_hex(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

std::uint64_t hex_to_u64(const std::string& text) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 16);
  if (end == text.c_str() || *end != '\0') {
    throw util::ParseError("bad hex u64 in checkpoint: " + text);
  }
  return value;
}

util::Json rng_state_to_json(const util::RngState& state) {
  util::Json json;
  util::JsonArray words;
  for (std::uint64_t word : state.state) words.emplace_back(u64_to_hex(word));
  json["state"] = util::Json(std::move(words));
  json["seed"] = u64_to_hex(state.seed);
  json["cached_normal"] = state.cached_normal;
  json["has_cached_normal"] = state.has_cached_normal;
  return json;
}

util::RngState rng_state_from_json(const util::Json& json) {
  util::RngState state;
  const util::JsonArray& words = json.at("state").as_array();
  if (words.size() != state.state.size()) {
    throw util::ParseError("rng state word count mismatch");
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    state.state[i] = hex_to_u64(words[i].as_string());
  }
  state.seed = hex_to_u64(json.at("seed").as_string());
  state.cached_normal = json.at("cached_normal").as_number();
  state.has_cached_normal = json.at("has_cached_normal").as_bool();
  return state;
}

ea::EvalStatus eval_status_from_string(const std::string& name) {
  if (name == "ok") return ea::EvalStatus::kOk;
  if (name == "timeout") return ea::EvalStatus::kTimeout;
  if (name == "training_error") return ea::EvalStatus::kTrainingError;
  if (name == "node_failure") return ea::EvalStatus::kNodeFailure;
  throw util::ParseError("unknown eval status in checkpoint: " + name);
}

util::Json individual_to_json(const ea::Individual& individual) {
  util::Json json;
  util::JsonArray genome;
  for (double gene : individual.genome) genome.emplace_back(gene);
  json["genome"] = util::Json(std::move(genome));
  util::JsonArray fitness;
  for (double f : individual.fitness) fitness.emplace_back(f);
  json["fitness"] = util::Json(std::move(fitness));
  json["uuid"] = individual.uuid.str();
  json["rank"] = individual.rank;
  // Boundary individuals carry an *infinite* crowding distance, which JSON
  // numbers cannot express (the writer would emit null); encode it as a
  // string marker instead.
  if (std::isfinite(individual.crowding_distance)) {
    json["crowding_distance"] = individual.crowding_distance;
  } else {
    json["crowding_distance"] = individual.crowding_distance > 0 ? "inf" : "-inf";
  }
  json["status"] = ea::to_string(individual.status);
  json["eval_runtime_minutes"] = individual.eval_runtime_minutes;
  json["eval_attempts"] = individual.eval_attempts;
  json["failure_cause"] = individual.failure_cause;
  json["birth_generation"] = individual.birth_generation;
  return json;
}

ea::Individual individual_from_json(const util::Json& json) {
  ea::Individual individual;
  for (const util::Json& gene : json.at("genome").as_array()) {
    individual.genome.push_back(gene.as_number());
  }
  for (const util::Json& f : json.at("fitness").as_array()) {
    individual.fitness.push_back(f.as_number());
  }
  individual.uuid = util::Uuid::parse(json.at("uuid").as_string());
  individual.rank = static_cast<int>(json.at("rank").as_int());
  const util::Json& crowding = json.at("crowding_distance");
  if (crowding.is_string()) {
    const double inf = std::numeric_limits<double>::infinity();
    if (crowding.as_string() == "inf") {
      individual.crowding_distance = inf;
    } else if (crowding.as_string() == "-inf") {
      individual.crowding_distance = -inf;
    } else {
      throw util::ParseError("bad crowding_distance marker in checkpoint");
    }
  } else {
    individual.crowding_distance = crowding.as_number();
  }
  individual.status = eval_status_from_string(json.at("status").as_string());
  individual.eval_runtime_minutes = json.at("eval_runtime_minutes").as_number();
  individual.eval_attempts =
      static_cast<std::size_t>(json.at("eval_attempts").as_int());
  individual.failure_cause = json.at("failure_cause").as_string();
  individual.birth_generation =
      static_cast<int>(json.at("birth_generation").as_int());
  return individual;
}

util::Json task_report_to_json(const hpc::TaskReport& report) {
  util::Json json;
  json["status"] = hpc::to_string(report.status);
  util::JsonArray fitness;
  for (double f : report.fitness) fitness.emplace_back(f);
  json["fitness"] = util::Json(std::move(fitness));
  json["sim_minutes"] = report.sim_minutes;
  json["finish_minute"] = report.finish_minute;
  json["attempts"] = report.attempts;
  json["payload_attempts"] = report.payload_attempts;
  json["node"] = report.node;
  json["cause"] = hpc::to_string(report.cause);
  return json;
}

hpc::TaskReport task_report_from_json(const util::Json& json) {
  hpc::TaskReport report;
  report.status = hpc::task_status_from_string(json.at("status").as_string());
  for (const util::Json& f : json.at("fitness").as_array()) {
    report.fitness.push_back(f.as_number());
  }
  report.sim_minutes = json.at("sim_minutes").as_number();
  report.finish_minute = json.at("finish_minute").as_number();
  report.attempts = static_cast<std::size_t>(json.at("attempts").as_int());
  report.payload_attempts =
      static_cast<std::size_t>(json.at("payload_attempts").as_int());
  report.node = static_cast<std::size_t>(json.at("node").as_int());
  report.cause = hpc::failure_cause_from_string(json.at("cause").as_string());
  return report;
}

util::Json farm_snapshot_to_json(const hpc::FarmSnapshot& farm) {
  util::Json json;
  json["clock_minutes"] = farm.clock_minutes;
  json["live_workers"] = farm.live_workers;
  util::JsonArray nodes;
  for (std::size_t count : farm.tasks_run_on_node) {
    // SIZE_MAX marks a dead node; store as -1 (counts are tiny otherwise).
    nodes.emplace_back(count == static_cast<std::size_t>(-1)
                           ? -1.0
                           : static_cast<double>(count));
  }
  json["tasks_run_on_node"] = util::Json(std::move(nodes));
  json["rng"] = rng_state_to_json(farm.rng);
  json["batches_run"] = farm.batches_run;
  // Stream-session state (schema 2); only written while a steady-state
  // session is open, so generational checkpoints stay unchanged on disk.
  if (farm.stream_active) {
    json["stream_active"] = true;
    json["stream_now"] = farm.stream_now;
    json["stream_batch"] = farm.stream_batch;
    json["stream_node_failures"] = farm.stream_node_failures;
    json["stream_scheduler_restarts"] = farm.stream_scheduler_restarts;
    util::JsonArray free_at;
    for (double minute : farm.stream_free_at) free_at.emplace_back(minute);
    json["stream_free_at"] = util::Json(std::move(free_at));
    util::JsonArray in_flight;
    for (const hpc::InFlightTask& task : farm.stream_in_flight) {
      util::Json entry;
      entry["id"] = task.id;
      entry["finish_at"] = task.finish_at;
      entry["report"] = task_report_to_json(task.report);
      in_flight.push_back(std::move(entry));
    }
    json["stream_in_flight"] = util::Json(std::move(in_flight));
    util::JsonArray delivered;
    for (const hpc::StreamCompletion& done : farm.stream_delivered) {
      util::Json entry;
      entry["id"] = done.id;
      entry["report"] = task_report_to_json(done.report);
      delivered.push_back(std::move(entry));
    }
    json["stream_delivered"] = util::Json(std::move(delivered));
  }
  return json;
}

hpc::FarmSnapshot farm_snapshot_from_json(const util::Json& json) {
  hpc::FarmSnapshot farm;
  farm.clock_minutes = json.at("clock_minutes").as_number();
  farm.live_workers = static_cast<std::size_t>(json.at("live_workers").as_int());
  for (const util::Json& node : json.at("tasks_run_on_node").as_array()) {
    const std::int64_t count = node.as_int();
    farm.tasks_run_on_node.push_back(count < 0 ? static_cast<std::size_t>(-1)
                                               : static_cast<std::size_t>(count));
  }
  farm.rng = rng_state_from_json(json.at("rng"));
  farm.batches_run = static_cast<std::size_t>(json.at("batches_run").as_int());
  if (json.contains("stream_active") && json.at("stream_active").as_bool()) {
    farm.stream_active = true;
    farm.stream_now = json.at("stream_now").as_number();
    farm.stream_batch = static_cast<std::size_t>(json.at("stream_batch").as_int());
    farm.stream_node_failures =
        static_cast<std::size_t>(json.at("stream_node_failures").as_int());
    farm.stream_scheduler_restarts =
        static_cast<std::size_t>(json.at("stream_scheduler_restarts").as_int());
    for (const util::Json& minute : json.at("stream_free_at").as_array()) {
      farm.stream_free_at.push_back(minute.as_number());
    }
    for (const util::Json& entry : json.at("stream_in_flight").as_array()) {
      hpc::InFlightTask task;
      task.id = static_cast<std::size_t>(entry.at("id").as_int());
      task.finish_at = entry.at("finish_at").as_number();
      task.report = task_report_from_json(entry.at("report"));
      farm.stream_in_flight.push_back(std::move(task));
    }
    for (const util::Json& entry : json.at("stream_delivered").as_array()) {
      hpc::StreamCompletion done;
      done.id = static_cast<std::size_t>(entry.at("id").as_int());
      done.report = task_report_from_json(entry.at("report"));
      farm.stream_delivered.push_back(std::move(done));
    }
  }
  return farm;
}

}  // namespace

CheckpointManager::CheckpointManager(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path CheckpointManager::checkpoint_path(
    std::size_t generation) const {
  return dir_ / ("checkpoint-gen-" + std::to_string(generation) + ".json");
}

util::Json CheckpointManager::to_json(const DriverCheckpoint& checkpoint) {
  util::Json json;
  json["format"] = kFormatTag;
  json["schema"] = kSchemaVersion;
  json["seed"] = u64_to_hex(checkpoint.seed);
  json["completed_generations"] = checkpoint.completed_generations;
  util::JsonArray parents;
  for (const ea::Individual& individual : checkpoint.parents) {
    parents.push_back(individual_to_json(individual));
  }
  json["parents"] = util::Json(std::move(parents));
  json["rng"] = rng_state_to_json(checkpoint.rng);
  util::JsonArray sigma;
  for (double s : checkpoint.mutation_std) sigma.emplace_back(s);
  json["mutation_std"] = util::Json(std::move(sigma));
  json["farm"] = farm_snapshot_to_json(checkpoint.farm);
  util::JsonArray generations;
  for (const GenerationRecord& gen : checkpoint.generations) {
    generations.push_back(generation_to_json(gen));
  }
  json["generations"] = util::Json(std::move(generations));
  json["mode"] = to_string(checkpoint.mode);
  if (checkpoint.mode == ScheduleMode::kSteadyState) {
    json["births"] = checkpoint.births;
    json["wave_started_minutes"] = checkpoint.wave_started_minutes;
    json["wave_node_failures_base"] = checkpoint.wave_node_failures_base;
    if (checkpoint.partial_wave) {
      json["partial_wave"] = generation_to_json(*checkpoint.partial_wave);
    }
    util::JsonArray in_flight;
    for (const InFlightBirth& birth : checkpoint.in_flight) {
      util::Json entry;
      entry["id"] = birth.id;
      entry["individual"] = individual_to_json(birth.individual);
      in_flight.push_back(std::move(entry));
    }
    json["in_flight"] = util::Json(std::move(in_flight));
  }
  return json;
}

DriverCheckpoint CheckpointManager::from_json(const util::Json& json) {
  if (json.string_or("format", "") != kFormatTag) {
    throw util::ParseError("not a dpho checkpoint document");
  }
  // Version 1 lacked the mode tag and stream state but is otherwise a valid
  // generational checkpoint; refuse anything newer than we understand.
  const int schema = static_cast<int>(json.number_or("schema", -1.0));
  if (schema < 1 || schema > kSchemaVersion) {
    throw util::ParseError("unsupported checkpoint schema version");
  }
  DriverCheckpoint checkpoint;
  checkpoint.mode = schedule_mode_from_string(
      json.string_or("mode", to_string(ScheduleMode::kGenerational)));
  checkpoint.seed = hex_to_u64(json.at("seed").as_string());
  checkpoint.completed_generations =
      static_cast<std::size_t>(json.at("completed_generations").as_int());
  for (const util::Json& individual : json.at("parents").as_array()) {
    checkpoint.parents.push_back(individual_from_json(individual));
  }
  checkpoint.rng = rng_state_from_json(json.at("rng"));
  for (const util::Json& s : json.at("mutation_std").as_array()) {
    checkpoint.mutation_std.push_back(s.as_number());
  }
  checkpoint.farm = farm_snapshot_from_json(json.at("farm"));
  for (const util::Json& gen : json.at("generations").as_array()) {
    checkpoint.generations.push_back(generation_from_json(gen));
  }
  if (checkpoint.mode == ScheduleMode::kSteadyState) {
    checkpoint.births = static_cast<std::size_t>(json.at("births").as_int());
    checkpoint.wave_started_minutes = json.at("wave_started_minutes").as_number();
    checkpoint.wave_node_failures_base =
        static_cast<std::size_t>(json.at("wave_node_failures_base").as_int());
    if (json.contains("partial_wave")) {
      checkpoint.partial_wave = generation_from_json(json.at("partial_wave"));
    }
    for (const util::Json& entry : json.at("in_flight").as_array()) {
      InFlightBirth birth;
      birth.id = static_cast<std::size_t>(entry.at("id").as_int());
      birth.individual = individual_from_json(entry.at("individual"));
      checkpoint.in_flight.push_back(std::move(birth));
    }
  }
  return checkpoint;
}

void CheckpointManager::save(const DriverCheckpoint& checkpoint) const {
  const std::filesystem::path path =
      checkpoint_path(checkpoint.completed_generations);
  util::atomic_write_file(path, to_json(checkpoint).dump());

  util::Json manifest;
  manifest["format"] = std::string(kFormatTag) + "-manifest";
  manifest["schema"] = kSchemaVersion;
  manifest["latest"] = path.filename().string();
  manifest["seed"] = u64_to_hex(checkpoint.seed);
  manifest["completed_generations"] = checkpoint.completed_generations;
  util::atomic_write_file(dir_ / kManifestName, manifest.dump(2));
  obs::metrics().counter("checkpoint.saves_total").add(1);
  obs::events().emit(
      "checkpoint.save",
      {{"generation",
        static_cast<std::int64_t>(checkpoint.completed_generations)},
       {"path", path.filename().string()}});

  // Prune superseded checkpoints (the manifest now names the newest one).
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("checkpoint-gen-") && name.ends_with(".json") &&
        entry.path() != path) {
      std::error_code ec;
      std::filesystem::remove(entry.path(), ec);  // best effort
    }
  }
}

std::optional<DriverCheckpoint> CheckpointManager::load() const {
  if (!std::filesystem::exists(dir_)) return std::nullopt;

  // Candidate files: the manifest's `latest` plus every checkpoint-gen-*.json
  // in the directory (covers a crash between checkpoint- and manifest-write).
  std::vector<std::filesystem::path> candidates;
  const std::filesystem::path manifest_path = dir_ / kManifestName;
  if (std::filesystem::exists(manifest_path)) {
    try {
      const util::Json manifest = util::Json::parse(util::read_file(manifest_path));
      if (manifest.contains("latest")) {
        candidates.push_back(dir_ / manifest.at("latest").as_string());
      }
    } catch (const std::exception& e) {
      util::log_info() << "checkpoint: ignoring corrupt manifest: " << e.what();
    }
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("checkpoint-gen-") && name.ends_with(".json")) {
      candidates.push_back(entry.path());
    }
  }

  std::optional<DriverCheckpoint> best;
  for (const std::filesystem::path& path : candidates) {
    try {
      DriverCheckpoint checkpoint = from_json(util::Json::parse(util::read_file(path)));
      if (!best || checkpoint.completed_generations > best->completed_generations) {
        best = std::move(checkpoint);
      }
    } catch (const std::exception& e) {
      obs::metrics().counter("checkpoint.load_rejects_total").add(1);
      util::log_info() << "checkpoint: skipping unusable " << path.string() << ": "
                       << e.what();
    }
  }
  if (best) {
    obs::metrics().counter("checkpoint.loads_total").add(1);
    obs::events().emit(
        "checkpoint.load",
        {{"generation",
          static_cast<std::int64_t>(best->completed_generations)}});
  }
  return best;
}

}  // namespace dpho::core
