#include "core/evaluator.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "dp/lcurve.hpp"
#include "hpc/backoff.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dpho::core {

SurrogateEvaluator::SurrogateEvaluator(SurrogateConfig config)
    : surrogate_(config) {}

EvalOutcome SurrogateEvaluator::evaluate(const ea::Individual& individual,
                                         std::uint64_t eval_seed) const {
  const HyperParams hp = representation_.decode(individual.genome);
  const SurrogateOutcome outcome = surrogate_.evaluate(hp, eval_seed);
  if (outcome.failed) {
    return EvalOutcome::failure(FailureCause::kTrainingFailure,
                                outcome.runtime_minutes);
  }
  return EvalOutcome::success({outcome.rmse_e, outcome.rmse_f},
                              outcome.runtime_minutes);
}

RealTrainingEvaluator::RealTrainingEvaluator(const md::FrameDataset& train,
                                             const md::FrameDataset& validation,
                                             RealEvalOptions options)
    : train_(train), validation_(validation), options_(std::move(options)) {
  if (options_.workspace_dir) workspace_.emplace(*options_.workspace_dir);
}

EvalOutcome RealTrainingEvaluator::evaluate(const ea::Individual& individual,
                                            std::uint64_t eval_seed) const {
  EvalOutcome outcome;
  HyperParams hp;
  try {
    hp = representation_.decode(individual.genome);
    dp::TrainInput input = hp.apply_to(options_.base);
    input.training.seed = eval_seed;
    if (workspace_) workspace_->prepare(individual, hp);

    dp::TrainerOptions trainer_options;
    trainer_options.wall_limit_seconds = options_.wall_limit_seconds;
    trainer_options.num_threads = options_.trainer_num_threads;
    trainer_options.pool = options_.trainer_pool;
    dp::Trainer trainer(input, train_, validation_, trainer_options);
    const dp::TrainResult train_result = trainer.train();

    outcome.runtime_minutes =
        train_result.wall_seconds * options_.sim_minutes_per_real_second;
    if (workspace_) {
      // Persist and re-read the lcurve: the fitness comes from the artifact,
      // exactly like the paper's step 4c.
      const auto lcurve_path = workspace_->lcurve_path(individual);
      train_result.lcurve.write(lcurve_path);
      const auto [rmse_e, rmse_f] = dp::LcurveReader::final_validation_losses(lcurve_path);
      outcome.fitness = {rmse_e, rmse_f};
    } else {
      outcome.fitness = {train_result.rmse_e_val, train_result.rmse_f_val};
    }
  } catch (const util::TimeoutError& e) {
    util::log_info() << "evaluation timeout for " << individual.uuid.str() << ": "
                     << e.what();
    // Let the task farm classify it: report a runtime beyond any limit.
    outcome = EvalOutcome::failure(FailureCause::kWallLimit, 1e9);
  } catch (const std::exception& e) {
    util::log_info() << "evaluation failed for " << individual.uuid.str() << ": "
                     << e.what();
    outcome = EvalOutcome::failure(FailureCause::kException, 1.0);
  }
  return outcome;
}

SubprocessEvaluator::SubprocessEvaluator(SubprocessEvalOptions options)
    : options_(std::move(options)),
      workspace_(options_.workspace_dir,
                 options_.input_template.empty() ? default_input_template()
                                                 : options_.input_template) {
  if (options_.dp_train_binary.empty()) {
    throw util::ValueError("subprocess evaluator needs the dp_train binary path");
  }
}

namespace {

struct LaunchOutcome {
  int exit_code = -1;
  bool hung = false;             // killed by the watchdog
  bool sigkill_escalated = false;  // child survived SIGTERM; SIGKILL needed
  double real_seconds = 0.0;
};

/// Launches `argv` with stdout/stderr redirected into `log_path` and a
/// watchdog that kills the child after `kill_after_seconds` of real time
/// (the paper's jsrun launch, hardened against hung trainings).  The kill
/// escalates: SIGTERM first so a responsive child can flush its logs and
/// exit, then SIGKILL after `sigterm_grace_seconds` for children that ignore
/// the termination request.
LaunchOutcome launch_with_watchdog(const std::vector<std::string>& argv,
                                   const std::filesystem::path& log_path,
                                   double kill_after_seconds,
                                   double poll_seconds,
                                   double sigterm_grace_seconds) {
  const auto start = std::chrono::steady_clock::now();
  const ::pid_t pid = ::fork();
  if (pid < 0) throw util::IoError("fork failed for subprocess evaluation");
  if (pid == 0) {
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv) args.push_back(const_cast<char*>(arg.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    ::_exit(127);  // exec failed
  }

  LaunchOutcome outcome;
  int status = 0;
  bool sigterm_sent = false;
  for (;;) {
    const ::pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) break;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (done < 0) throw util::IoError("waitpid failed for subprocess evaluation");
    if (!sigterm_sent && elapsed > kill_after_seconds) {
      ::kill(pid, SIGTERM);
      sigterm_sent = true;
      outcome.hung = true;
    } else if (sigterm_sent &&
               elapsed > kill_after_seconds + sigterm_grace_seconds) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      outcome.sigkill_escalated = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_seconds));
  }
  outcome.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  outcome.real_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return outcome;
}

bool cause_is_transient(FailureCause cause) {
  return cause == FailureCause::kHungProcess ||
         cause == FailureCause::kMissingArtifact ||
         cause == FailureCause::kCorruptArtifact;
}

}  // namespace

EvalOutcome SubprocessEvaluator::evaluate(const ea::Individual& individual,
                                          std::uint64_t eval_seed) const {
  EvalOutcome outcome;
  try {
    const HyperParams hp = representation_.decode(individual.genome);
    const auto input_path = workspace_.prepare(individual, hp);
    const auto run_dir = workspace_.run_dir(individual);
    // The per-training launch (the paper's jsrun-wrapped `dp` subprocess).
    std::vector<std::string> argv = {
        options_.dp_train_binary.string(),
        input_path.string(),
        options_.train_data_dir.string(),
        options_.validation_data_dir.string(),
        "--out",
        run_dir.string(),
        "--wall-limit",
        std::to_string(options_.wall_limit_seconds),
    };
    if (options_.trainer_threads > 0) {
      argv.push_back("--threads");
      argv.push_back(std::to_string(options_.trainer_threads));
    }
    const std::size_t max_attempts = std::max<std::size_t>(options_.max_attempts, 1);

    for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      outcome = EvalOutcome{};
      outcome.attempts = attempt;
      const LaunchOutcome launch = launch_with_watchdog(
          argv, run_dir / "stdout.log",
          options_.wall_limit_seconds + options_.watchdog_grace_seconds,
          options_.watchdog_poll_seconds, options_.sigterm_grace_seconds);
      outcome.runtime_minutes = launch.real_seconds * options_.sim_minutes_per_real_second;

      if (launch.hung) {
        // The training stopped responding and was killed; report past any
        // task limit so the farm classifies survivors of the retry budget as
        // timeouts.
        outcome.runtime_minutes = 1e9;
        outcome.cause = FailureCause::kHungProcess;
        outcome.fitness.clear();
      } else if (launch.exit_code == 0) {
        // Step 4c: the last rmse_e_val / rmse_f_val values from lcurve.out --
        // validated rather than trusted: a "successful" training on a flaky
        // node can leave the artifact missing, truncated, or NaN-ridden.
        const auto lcurve_path = workspace_.lcurve_path(individual);
        if (!std::filesystem::exists(lcurve_path)) {
          outcome.training_error = true;
          outcome.cause = FailureCause::kMissingArtifact;
        } else {
          try {
            const std::vector<dp::LcurveRow> rows = dp::LcurveReader::read(lcurve_path);
            if (rows.empty()) throw util::ParseError("lcurve.out holds no data rows");
            const double rmse_e = rows.back().rmse_e_val;
            const double rmse_f = rows.back().rmse_f_val;
            if (!std::isfinite(rmse_e) || !std::isfinite(rmse_f)) {
              // Diverged training: deterministic, never retried; the driver
              // assigns MAXINT (the paper's convention) instead of letting
              // NaN corrupt the NSGA-II sort.
              outcome.training_error = true;
              outcome.cause = FailureCause::kNonFiniteFitness;
            } else {
              outcome.fitness = {rmse_e, rmse_f};
            }
          } catch (const std::exception& e) {
            util::log_info() << "corrupt lcurve.out for " << individual.uuid.str()
                             << ": " << e.what();
            outcome.training_error = true;
            outcome.cause = FailureCause::kCorruptArtifact;
          }
        }
      } else if (launch.exit_code == 3) {
        // TimeoutError from the subprocess: report past any task limit so the
        // farm classifies it as a timeout.
        outcome.runtime_minutes = 1e9;
        outcome.cause = FailureCause::kWallLimit;
        outcome.fitness.clear();
      } else {
        util::log_info() << "dp_train subprocess for " << individual.uuid.str()
                         << " exited with code " << launch.exit_code;
        outcome.training_error = true;
        outcome.cause = FailureCause::kNonZeroExit;
        outcome.fitness.clear();
      }

      obs::metrics().counter("subprocess.launches_total").add(1);
      obs::metrics()
          .histogram("subprocess.launch_seconds",
                     obs::BucketLayout::timing_seconds())
          .record(launch.real_seconds);
      obs::events().emit("evaluator.attempt",
                         {{"uuid", individual.uuid.str()},
                          {"attempt", static_cast<std::int64_t>(attempt)},
                          {"exit_code", static_cast<std::int64_t>(launch.exit_code)},
                          {"hung", launch.hung},
                          {"sigkill_escalated", launch.sigkill_escalated},
                          {"cause", to_string(outcome.cause)},
                          {"real_seconds", launch.real_seconds}});

      if (!cause_is_transient(outcome.cause) || attempt == max_attempts) break;
      // Seed-keyed backoff: the schedule is a pure function of this task's
      // evaluation seed, never of other tasks' completion order.
      const double backoff = hpc::retry_backoff_seconds(
          eval_seed, attempt, options_.retry_backoff_seconds,
          options_.retry_backoff_cap_seconds);
      obs::metrics().counter("subprocess.retries_total").add(1);
      util::log_info() << "retrying evaluation for " << individual.uuid.str()
                       << " (attempt " << attempt << " failed: "
                       << to_string(outcome.cause) << "), backoff " << backoff
                       << " s";
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  } catch (const std::exception& e) {
    util::log_info() << "subprocess evaluation failed for " << individual.uuid.str()
                     << ": " << e.what();
    outcome = EvalOutcome::failure(FailureCause::kException, 1.0);
  }
  obs::metrics().counter("subprocess.evaluations_total").add(1);
  if (outcome.cause != FailureCause::kNone) {
    obs::metrics()
        .counter("subprocess.failures." + to_string(outcome.cause))
        .add(1);
  }
  return outcome;
}

std::string to_string(EvalBackend backend) {
  switch (backend) {
    case EvalBackend::kSurrogate: return "surrogate";
    case EvalBackend::kRealTraining: return "real_training";
    case EvalBackend::kSubprocess: return "subprocess";
  }
  throw util::ValueError("invalid eval backend");
}

std::unique_ptr<Evaluator> make_evaluator(const EvalBackendConfig& config) {
  switch (config.backend) {
    case EvalBackend::kSurrogate:
      return std::make_unique<SurrogateEvaluator>(config.surrogate);
    case EvalBackend::kRealTraining:
      if (config.train_data == nullptr || config.validation_data == nullptr) {
        throw util::ValueError(
            "real-training backend needs train_data and validation_data");
      }
      return std::make_unique<RealTrainingEvaluator>(
          *config.train_data, *config.validation_data, config.real);
    case EvalBackend::kSubprocess:
      // Checked before construction: the evaluator's Workspace member would
      // otherwise fail first with an opaque filesystem error.
      if (config.subprocess.dp_train_binary.empty()) {
        throw util::ValueError("subprocess backend needs the dp_train binary path");
      }
      return std::make_unique<SubprocessEvaluator>(config.subprocess);
  }
  throw util::ValueError("invalid eval backend");
}

}  // namespace dpho::core
