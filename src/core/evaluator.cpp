#include "core/evaluator.hpp"

#include <sys/wait.h>

#include <chrono>
#include <cstdlib>

#include "dp/lcurve.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dpho::core {

SurrogateEvaluator::SurrogateEvaluator(SurrogateConfig config)
    : surrogate_(config) {}

hpc::WorkResult SurrogateEvaluator::evaluate(const ea::Individual& individual,
                                             std::uint64_t eval_seed) const {
  const HyperParams hp = representation_.decode(individual.genome);
  const SurrogateOutcome outcome = surrogate_.evaluate(hp, eval_seed);
  hpc::WorkResult result;
  result.sim_minutes = outcome.runtime_minutes;
  result.training_error = outcome.failed;
  if (!outcome.failed) {
    result.fitness = {outcome.rmse_e, outcome.rmse_f};
  }
  return result;
}

RealTrainingEvaluator::RealTrainingEvaluator(const md::FrameDataset& train,
                                             const md::FrameDataset& validation,
                                             RealEvalOptions options)
    : train_(train), validation_(validation), options_(std::move(options)) {
  if (options_.workspace_dir) workspace_.emplace(*options_.workspace_dir);
}

hpc::WorkResult RealTrainingEvaluator::evaluate(const ea::Individual& individual,
                                                std::uint64_t eval_seed) const {
  hpc::WorkResult result;
  HyperParams hp;
  try {
    hp = representation_.decode(individual.genome);
    dp::TrainInput input = hp.apply_to(options_.base);
    input.training.seed = eval_seed;
    if (workspace_) workspace_->prepare(individual, hp);

    dp::TrainerOptions trainer_options;
    trainer_options.wall_limit_seconds = options_.wall_limit_seconds;
    dp::Trainer trainer(input, train_, validation_, trainer_options);
    const dp::TrainResult train_result = trainer.train();

    result.sim_minutes =
        train_result.wall_seconds * options_.sim_minutes_per_real_second;
    if (workspace_) {
      // Persist and re-read the lcurve: the fitness comes from the artifact,
      // exactly like the paper's step 4c.
      const auto lcurve_path = workspace_->lcurve_path(individual);
      train_result.lcurve.write(lcurve_path);
      const auto [rmse_e, rmse_f] = dp::LcurveReader::final_validation_losses(lcurve_path);
      result.fitness = {rmse_e, rmse_f};
    } else {
      result.fitness = {train_result.rmse_e_val, train_result.rmse_f_val};
    }
  } catch (const util::TimeoutError& e) {
    util::log_info() << "evaluation timeout for " << individual.uuid.str() << ": "
                     << e.what();
    // Let the task farm classify it: report a runtime beyond any limit.
    result.sim_minutes = 1e9;
    result.fitness.clear();
  } catch (const std::exception& e) {
    util::log_info() << "evaluation failed for " << individual.uuid.str() << ": "
                     << e.what();
    result.training_error = true;
    result.sim_minutes = 1.0;
    result.fitness.clear();
  }
  return result;
}

SubprocessEvaluator::SubprocessEvaluator(SubprocessEvalOptions options)
    : options_(std::move(options)),
      workspace_(options_.workspace_dir,
                 options_.input_template.empty() ? default_input_template()
                                                 : options_.input_template) {
  if (options_.dp_train_binary.empty()) {
    throw util::ValueError("subprocess evaluator needs the dp_train binary path");
  }
}

hpc::WorkResult SubprocessEvaluator::evaluate(const ea::Individual& individual,
                                              std::uint64_t /*eval_seed*/) const {
  hpc::WorkResult result;
  const auto start = std::chrono::steady_clock::now();
  try {
    const HyperParams hp = representation_.decode(individual.genome);
    const auto input_path = workspace_.prepare(individual, hp);
    const auto run_dir = workspace_.run_dir(individual);
    // The per-training launch (the paper's jsrun-wrapped `dp` subprocess).
    const std::string command =
        "'" + options_.dp_train_binary.string() + "' '" + input_path.string() +
        "' '" + options_.train_data_dir.string() + "' '" +
        options_.validation_data_dir.string() + "' --out '" + run_dir.string() +
        "' --wall-limit " + std::to_string(options_.wall_limit_seconds) +
        " > '" + (run_dir / "stdout.log").string() + "' 2>&1";
    const int status = std::system(command.c_str());
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.sim_minutes = seconds * options_.sim_minutes_per_real_second;

    if (code == 0) {
      // Step 4c: the last rmse_e_val / rmse_f_val values from lcurve.out.
      const auto [rmse_e, rmse_f] =
          dp::LcurveReader::final_validation_losses(workspace_.lcurve_path(individual));
      result.fitness = {rmse_e, rmse_f};
    } else if (code == 3) {
      // TimeoutError from the subprocess: report past any task limit so the
      // farm classifies it as a timeout.
      result.sim_minutes = 1e9;
      result.fitness.clear();
    } else {
      util::log_info() << "dp_train subprocess for " << individual.uuid.str()
                       << " exited with code " << code;
      result.training_error = true;
      result.fitness.clear();
    }
  } catch (const std::exception& e) {
    util::log_info() << "subprocess evaluation failed for " << individual.uuid.str()
                     << ": " << e.what();
    result.training_error = true;
    result.fitness.clear();
    result.sim_minutes = 1.0;
  }
  return result;
}

}  // namespace dpho::core
