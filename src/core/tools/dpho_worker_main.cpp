// dpho_worker: one evaluation worker of hpc::ProcessCluster.
//
// The scheduler fork/execs one of these per "node" (paper section 2.2.5: one
// Dask worker per compute node, nannies disabled).  The worker connects back
// to the scheduler's loopback port, identifies itself with its token, builds
// an evaluator from the init frame's eval_config (core::eval_config_io), and
// then serves task frames until shutdown or EOF -- a dead scheduler orphans
// the worker, which simply exits.
//
// Liveness: a background thread heartbeats at the scheduler-chosen interval;
// the scheduler declares a silent worker hung and SIGKILLs it.  Test knobs:
//   --hang-on-task N        stop heartbeating and sleep forever when task id
//                           N arrives (drives the kHungProcess death path)
//   DPHO_WORKER_EVAL_SLEEP  real seconds to sleep before every evaluation
//                           (widens race windows for chaos tests)
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/eval_adapter.hpp"
#include "core/eval_config_io.hpp"
#include "core/evaluator.hpp"
#include "ea/individual.hpp"
#include "hpc/net/frame.hpp"
#include "hpc/net/wire.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/uuid.hpp"

namespace {

using namespace dpho;

/// Serializes result and heartbeat writes onto the shared scheduler socket.
struct SchedulerLink {
  int fd = -1;
  std::mutex mutex;

  bool send(const util::Json& message) {
    const std::string payload = message.dump();
    const std::lock_guard<std::mutex> lock(mutex);
    return hpc::net::write_frame(fd, payload);
  }
};

int worker_main(int argc, char** argv) {
  util::ArgParser args;
  args.add_flag("--port", "scheduler loopback port (required)");
  args.add_flag("--token", "worker slot index assigned by the scheduler");
  args.add_flag("--hang-on-task", "stop heartbeating and hang on this task id");
  args.parse(argc, argv);
  const auto port = static_cast<std::uint16_t>(args.get("--port", 0.0));
  const auto token = static_cast<std::size_t>(args.get("--token", 0.0));
  const double hang_on_task = args.get("--hang-on-task", -1.0);
  if (port == 0) {
    util::log_error() << "dpho_worker: --port is required";
    return 2;
  }
  const double eval_sleep = [] {
    const char* raw = std::getenv("DPHO_WORKER_EVAL_SLEEP");
    return raw ? std::atof(raw) : 0.0;
  }();

  SchedulerLink link;
  link.fd = hpc::net::connect_loopback(port);
  if (!link.send(hpc::net::encode_hello(token, ::getpid()))) return 1;

  // The init frame configures the evaluator and the heartbeat cadence.
  const std::optional<std::string> init_frame = hpc::net::read_frame(link.fd);
  if (!init_frame) return 1;
  const util::Json init = util::Json::parse(*init_frame);
  if (hpc::net::message_type(init) != hpc::net::kMsgInit) {
    util::log_error() << "dpho_worker: expected init, got another frame";
    return 2;
  }
  const double heartbeat_interval =
      init.number_or("heartbeat_interval_seconds", 0.05);
  const std::unique_ptr<core::Evaluator> evaluator = core::make_evaluator(
      core::eval_backend_config_from_json(init.at("eval_config")));

  std::atomic<bool> heartbeats_enabled{true};
  std::atomic<bool> done{false};
  std::thread heartbeat([&] {
    std::uint64_t seq = 0;
    while (!done.load(std::memory_order_relaxed)) {
      if (heartbeats_enabled.load(std::memory_order_relaxed)) {
        if (!link.send(hpc::net::encode_heartbeat(seq++))) break;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(heartbeat_interval));
    }
  });

  int exit_code = 0;
  for (;;) {
    const std::optional<std::string> frame = hpc::net::read_frame(link.fd);
    if (!frame) break;  // scheduler died or closed the connection
    const util::Json message = util::Json::parse(*frame);
    const std::string type = hpc::net::message_type(message);
    if (type == hpc::net::kMsgShutdown) break;
    if (type != hpc::net::kMsgTask) continue;

    const hpc::TaskSpec spec = hpc::net::decode_task(message);
    if (hang_on_task >= 0.0 &&
        spec.id == static_cast<std::size_t>(hang_on_task)) {
      // Simulate a hung process: the evaluation thread is stuck AND the
      // heartbeat stops, so the scheduler's deadline (not this process)
      // must resolve the task.
      heartbeats_enabled.store(false, std::memory_order_relaxed);
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
    }
    const double straggle = hpc::net::task_straggler_seconds(message);
    if (straggle > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(straggle));
    }
    if (eval_sleep > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(eval_sleep));
    }

    hpc::WorkResult result;
    try {
      ea::Individual individual;
      individual.genome = spec.genome;
      individual.uuid = util::Uuid::parse(spec.uuid);
      result = core::to_work_result(
          evaluator->evaluate(individual, spec.eval_seed));
    } catch (const std::exception& e) {
      util::log_error() << "dpho_worker: evaluation of task " << spec.id
                        << " threw: " << e.what();
      result.training_error = true;
      result.cause = hpc::FailureCause::kException;
    }
    if (!link.send(hpc::net::encode_result(spec.id, result))) break;
  }

  done.store(true, std::memory_order_relaxed);
  heartbeat.join();
  ::close(link.fd);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return worker_main(argc, argv);
  } catch (const std::exception& e) {
    dpho::util::log_error() << "dpho_worker: " << e.what();
    return 1;
  }
}
