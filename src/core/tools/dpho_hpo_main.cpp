// dpho_hpo: the production entry point -- run the paper's multiobjective
// hyperparameter optimization end to end and export the analysis artifacts.
//
//   dpho_hpo [--pop N] [--generations N] [--runs N] [--out DIR]
//            [--async] [--runtime-objective] [--failure-rate P] [--quiet]
//            [--checkpoint-dir DIR] [--resume]
//
// Default configuration reproduces the paper: 100 individuals x 7 waves x
// 5 runs on the simulated 100-node Summit allocation with surrogate-backed
// evaluations.  Exports evaluations.csv, parallel_coordinates.csv,
// sensitivity.csv and summary.json to --out.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/async_driver.hpp"
#include "core/experiment.hpp"
#include "core/sensitivity.hpp"
#include "util/args.hpp"
#include "util/fs.hpp"

int main(int argc, char** argv) {
  using namespace dpho;
  util::ArgParser args;
  args.add_flag("--pop", "population size (= nodes), default 100")
      .add_flag("--generations", "offspring generations beyond gen 0, default 6")
      .add_flag("--runs", "independent EA deployments, default 5")
      .add_flag("--out", "output directory for CSV/JSON artifacts")
      .add_flag("--async", "use the asynchronous steady-state deployment", false)
      .add_flag("--runtime-objective",
                "minimize training runtime as a third objective", false)
      .add_flag("--failure-rate", "node-failure probability per task, default 5e-4")
      .add_flag("--checkpoint-dir",
                "persist per-seed EA state here after every generation")
      .add_flag("--resume",
                "resume interrupted runs from --checkpoint-dir", false)
      .add_flag("--quiet", "suppress the analysis printout", false)
      .add_flag("--help", "show this message", false);
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage("dpho_hpo").c_str());
    return 2;
  }
  if (args.has("--help")) {
    std::fputs(args.usage("dpho_hpo").c_str(), stdout);
    return 0;
  }

  const auto pop = static_cast<std::size_t>(args.get("--pop", std::int64_t{100}));
  const auto generations =
      static_cast<std::size_t>(args.get("--generations", std::int64_t{6}));
  const auto runs = static_cast<std::size_t>(args.get("--runs", std::int64_t{5}));
  const bool quiet = args.has("--quiet");

  // Backend construction goes through the one factory switch; this tool uses
  // the surrogate backend (paper-scale simulated cluster).
  const std::unique_ptr<core::Evaluator> evaluator =
      core::make_evaluator(core::EvalBackendConfig{});
  std::vector<core::RunRecord> results;

  if (args.has("--async") &&
      (args.has("--checkpoint-dir") || args.has("--resume"))) {
    std::fprintf(stderr,
                 "--checkpoint-dir/--resume need the generational deployment;"
                 " they are not supported with --async\n");
    return 2;
  }
  if (args.has("--resume") && !args.has("--checkpoint-dir")) {
    std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
    return 2;
  }

  if (args.has("--async")) {
    core::AsyncDriverConfig config;
    config.num_workers = pop;
    config.population_capacity = pop;
    config.total_evaluations = pop * (generations + 1);
    for (std::size_t seed = 1; seed <= runs; ++seed) {
      core::AsyncSteadyStateDriver driver(config, *evaluator);
      const core::AsyncRunRecord async_run = driver.run(seed);
      // Repackage for the shared analysis path.
      core::RunRecord run;
      run.seed = seed;
      run.final_population = async_run.final_population;
      core::GenerationRecord all;
      all.generation = 0;
      all.evaluated = async_run.evaluations;
      all.failures = async_run.failures;
      run.generations.push_back(std::move(all));
      run.job_minutes = async_run.total_minutes;
      results.push_back(std::move(run));
      if (!quiet) {
        std::printf("async run %zu: %zu evaluations in %.0f simulated minutes"
                    " (%.0f%% busy)\n",
                    seed, async_run.evaluations.size(), async_run.total_minutes,
                    100.0 * async_run.busy_fraction);
      }
    }
  } else {
    core::ExperimentConfig config;
    config.driver.population_size = pop;
    config.driver.generations = generations;
    config.driver.include_runtime_objective = args.has("--runtime-objective");
    config.driver.farm.node_failure_probability = args.get("--failure-rate", 5e-4);
    config.driver.farm.real_threads = 2;
    if (args.has("--checkpoint-dir")) {
      config.checkpoint_dir = args.get("--checkpoint-dir", std::string("checkpoints"));
      config.resume = args.has("--resume");
    }
    config.seeds.clear();
    for (std::size_t seed = 1; seed <= runs; ++seed) config.seeds.push_back(seed);
    core::ExperimentRunner runner(config, *evaluator);
    results = runner.run_all();
    if (!quiet) {
      for (const auto& run : results) {
        std::printf("run %llu: %zu generations, job %.0f simulated minutes\n",
                    static_cast<unsigned long long>(run.seed),
                    run.generations.size(), run.job_minutes);
      }
    }
  }

  const auto last = core::last_generation_solutions(results);
  const core::DeepMDRepresentation repr;
  if (!quiet) {
    const auto front = core::pareto_front(last);
    std::printf("\nPareto frontier (%zu points):\n", front.size());
    for (std::size_t i : front) {
      std::printf("  F=%.4f E=%.4f  %s\n", last[i].fitness[1], last[i].fitness[0],
                  repr.decode(last[i].genome).describe().c_str());
    }
    const core::AxisMarginals marginals = core::axis_marginals(last, repr);
    std::printf("\n%zu/%zu chemically accurate; min accurate rcut %.2f A;"
                " max runtime %.1f min\n",
                marginals.num_accurate, marginals.num_total,
                marginals.min_rcut_accurate, marginals.max_runtime);
  }

  if (args.has("--out")) {
    const std::filesystem::path out = args.get("--out", std::string("results"));
    core::export_results(results, out);
    util::write_file(out / "parallel_coordinates.csv",
                     core::parallel_coordinates_csv(last, repr));
    const core::SensitivityAnalysis sensitivity;
    util::write_file(out / "sensitivity.csv",
                     core::SensitivityAnalysis::to_csv(sensitivity.run()));
    std::printf("\nartifacts written to %s: evaluations.csv,"
                " parallel_coordinates.csv, sensitivity.csv, summary.json\n",
                out.string().c_str());
  }
  return 0;
}
