// dpho_hpo: the production entry point -- run the paper's multiobjective
// hyperparameter optimization end to end and export the analysis artifacts.
//
//   dpho_hpo [--pop N] [--generations N] [--runs N] [--out DIR]
//            [--mode generational|async] [--runtime-objective]
//            [--cluster sim|process] [--workers N] [--worker-binary PATH]
//            [--failure-rate P] [--fault-plan FILE] [--trace-dir DIR]
//            [--checkpoint-dir DIR] [--resume] [--threads N]
//            [--metrics-out FILE] [--metrics-interval N] [--quiet]
//
// Default configuration reproduces the paper: 100 individuals x 7 waves x
// 5 runs on the simulated 100-node Summit allocation with surrogate-backed
// evaluations.  Exports evaluations.csv, parallel_coordinates.csv,
// sensitivity.csv and summary.json to --out.  Both modes run on the unified
// EvolutionEngine, so fault injection, trace export and checkpoint/resume
// compose with either.
//
// --cluster process swaps the simulated DaskCluster for hpc::ProcessCluster:
// real dpho_worker subprocesses over loopback TCP, with the same fault plan
// driving real SIGKILLs instead of bookkeeping (DESIGN.md section 11).
#include <cstdio>
#include <filesystem>

#include "core/analysis.hpp"
#include "core/eval_config_io.hpp"
#include "core/experiment.hpp"
#include "core/sensitivity.hpp"
#include "hpc/cluster_factory.hpp"
#include "hpc/faultplan_io.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/args.hpp"
#include "util/fs.hpp"

namespace {

// The dpho_worker binary normally sits next to dpho_hpo in the build tree;
// resolve it relative to the running executable so `dpho_hpo --cluster
// process` works from any CWD without flags.
std::filesystem::path default_worker_binary() {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return "dpho_worker";
  return self.parent_path() / "dpho_worker";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpho;
  util::ArgParser args;
  args.add_flag("--pop", "population size (= nodes), default 100")
      .add_flag("--generations", "offspring generations beyond gen 0, default 6")
      .add_flag("--runs", "independent EA deployments, default 5")
      .add_flag("--out", "output directory for CSV/JSON artifacts")
      .add_flag("--mode", "schedule: generational (default) or async")
      .add_flag("--async", "shorthand for --mode async", false)
      .add_flag("--runtime-objective",
                "minimize training runtime as a third objective", false)
      .add_flag("--failure-rate", "node-failure probability per task, default 5e-4")
      .add_flag("--fault-plan", "JSON file of scripted fault events")
      .add_flag("--trace-dir", "write per-batch schedule traces here")
      .add_flag("--checkpoint-dir",
                "persist per-seed EA state here (both modes)")
      .add_flag("--resume",
                "resume interrupted runs from --checkpoint-dir", false)
      .add_flag("--checkpoint-every",
                "async mode: completions between checkpoints, default 1")
      .add_flag("--quiet", "suppress the analysis printout", false)
      .add_flag("--help", "show this message", false);
  // Shared execution-backend flags (--cluster/--workers/--worker-binary/
  // --threads/--metrics-out/--metrics-interval): same names, defaults and
  // error messages as dp_train and dp_serve.
  const util::BackendFlagOptions backend_options{.cluster = true,
                                                 .default_threads = 2};
  util::add_backend_flags(args, backend_options);
  util::BackendFlags backend;
  try {
    args.parse(argc, argv);
    backend = util::parse_backend_flags(args, backend_options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage("dpho_hpo").c_str());
    return 2;
  }
  if (args.has("--help")) {
    std::fputs(args.usage("dpho_hpo").c_str(), stdout);
    return 0;
  }

  const auto pop = static_cast<std::size_t>(args.get("--pop", std::int64_t{100}));
  const auto generations =
      static_cast<std::size_t>(args.get("--generations", std::int64_t{6}));
  const auto runs = static_cast<std::size_t>(args.get("--runs", std::int64_t{5}));
  const bool quiet = args.has("--quiet");

  core::ScheduleMode mode = core::ScheduleMode::kGenerational;
  if (args.has("--mode")) {
    const std::string name = args.get("--mode", std::string("generational"));
    if (name == "generational") {
      mode = core::ScheduleMode::kGenerational;
    } else if (name == "async" || name == "steady_state") {
      mode = core::ScheduleMode::kSteadyState;
    } else {
      std::fprintf(stderr, "--mode must be generational or async, got %s\n",
                   name.c_str());
      return 2;
    }
  }
  if (args.has("--async")) mode = core::ScheduleMode::kSteadyState;

  if (args.has("--resume") && !args.has("--checkpoint-dir")) {
    std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
    return 2;
  }

  // Backend construction goes through the one factory switch; this tool uses
  // the surrogate backend (paper-scale simulated cluster).
  const std::unique_ptr<core::Evaluator> evaluator =
      core::make_evaluator(core::EvalBackendConfig{});

  core::ExperimentConfig config;
  config.mode = mode;
  config.driver.population_size = pop;
  config.driver.generations = generations;
  config.driver.include_runtime_objective = args.has("--runtime-objective");
  config.driver.farm.node_failure_probability = args.get("--failure-rate", 5e-4);
  config.driver.farm.real_threads = backend.threads;
  config.driver.metrics_interval = backend.metrics_interval;

  config.driver.cluster_backend.kind =
      hpc::cluster_backend_from_string(backend.cluster);
  if (config.driver.cluster_backend.kind == hpc::ClusterBackendKind::kProcess) {
    hpc::ProcessClusterConfig& process = config.driver.cluster_backend.process;
    process.worker_binary = backend.worker_binary.empty()
                                ? default_worker_binary()
                                : std::filesystem::path(backend.worker_binary);
    process.num_workers = backend.workers;
    // Ship the same backend configuration the local evaluator uses, so a
    // process-cluster run reproduces the sim run's fitness bit for bit.
    process.eval_config_json =
        core::eval_backend_config_to_json(core::EvalBackendConfig{}).dump();
  }

  // The run-wide observability layer: --metrics-out starts the JSONL event
  // timeline; the registry summary lands next to the archive after the run.
  std::optional<std::filesystem::path> metrics_out;
  if (!backend.metrics_out.empty()) {
    metrics_out = backend.metrics_out;
    try {
      obs::events().open(*metrics_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--metrics-out: %s\n", e.what());
      return 2;
    }
  }
  if (args.has("--fault-plan")) {
    try {
      config.driver.farm.faults =
          hpc::load_fault_plan(args.get("--fault-plan", std::string()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--fault-plan: %s\n", e.what());
      return 2;
    }
  }
  if (args.has("--trace-dir")) {
    config.driver.trace_dir = args.get("--trace-dir", std::string("traces"));
  }
  if (args.has("--checkpoint-dir")) {
    config.checkpoint_dir = args.get("--checkpoint-dir", std::string("checkpoints"));
    config.resume = args.has("--resume");
    config.async_checkpoint_every =
        static_cast<std::size_t>(args.get("--checkpoint-every", std::int64_t{1}));
    if (config.async_checkpoint_every == 0) {
      std::fprintf(stderr, "--checkpoint-every must be >= 1\n");
      return 2;
    }
  }
  config.seeds.clear();
  for (std::size_t seed = 1; seed <= runs; ++seed) config.seeds.push_back(seed);

  core::ExperimentRunner runner(config, *evaluator);
  const std::vector<core::RunRecord> results = runner.run_all();
  if (!quiet) {
    for (const auto& run : results) {
      std::printf("%s run %llu: %zu evaluations in %.0f simulated minutes"
                  " (%.0f%% busy)\n",
                  core::to_string(run.mode).c_str(),
                  static_cast<unsigned long long>(run.seed),
                  run.total_evaluations(), run.job_minutes,
                  100.0 * run.busy_fraction);
    }
  }

  const auto last = core::last_generation_solutions(results);
  const core::DeepMDRepresentation repr;
  if (!quiet) {
    const auto front = core::pareto_front(last);
    std::printf("\nPareto frontier (%zu points):\n", front.size());
    for (std::size_t i : front) {
      std::printf("  F=%.4f E=%.4f  %s\n", last[i].fitness[1], last[i].fitness[0],
                  repr.decode(last[i].genome).describe().c_str());
    }
    const core::AxisMarginals marginals = core::axis_marginals(last, repr);
    std::printf("\n%zu/%zu chemically accurate; min accurate rcut %.2f A;"
                " max runtime %.1f min\n",
                marginals.num_accurate, marginals.num_total,
                marginals.min_rcut_accurate, marginals.max_runtime);
  }

  if (args.has("--out")) {
    const std::filesystem::path out = args.get("--out", std::string("results"));
    core::export_results(results, out);
    util::write_file(out / "parallel_coordinates.csv",
                     core::parallel_coordinates_csv(last, repr));
    const core::SensitivityAnalysis sensitivity;
    util::write_file(out / "sensitivity.csv",
                     core::SensitivityAnalysis::to_csv(sensitivity.run()));
    std::printf("\nartifacts written to %s: evaluations.csv,"
                " parallel_coordinates.csv, sensitivity.csv, summary.json\n",
                out.string().c_str());
  }

  if (metrics_out) {
    // Next to the archive when --out is set, else next to the timeline.  The
    // "deterministic" section is byte-reproducible across runs and thread
    // counts; wall-clock figures are quarantined under "timing".
    const std::filesystem::path summary_path =
        args.has("--out")
            ? std::filesystem::path(args.get("--out", std::string("results"))) /
                  "metrics_summary.json"
            : metrics_out->parent_path() / "metrics_summary.json";
    util::write_file(summary_path, obs::metrics().to_json().dump(2) + "\n");
    obs::events().close();
    if (!quiet) {
      std::printf("metrics: %s + %s\n", metrics_out->string().c_str(),
                  summary_path.string().c_str());
    }
  }
  return 0;
}
