#include "core/async_driver.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.hpp"

namespace dpho::core {

namespace {

EvalRecord to_record(const ea::Individual& individual, int birth_index) {
  EvalRecord record;
  record.genome = individual.genome;
  record.fitness = individual.fitness;
  record.runtime_minutes = individual.eval_runtime_minutes;
  record.status = individual.status;
  record.generation = birth_index;  // async: birth index stands in for "generation"
  record.uuid = individual.uuid.str();
  return record;
}

}  // namespace

AsyncSteadyStateDriver::AsyncSteadyStateDriver(AsyncDriverConfig config,
                                               const Evaluator& evaluator)
    : config_(std::move(config)), evaluator_(evaluator),
      genome_layout_(config_.representation
                         ? *config_.representation
                         : DeepMDRepresentation().representation()) {
  if (config_.num_workers == 0) throw util::ValueError("async: need >= 1 worker");
  if (config_.population_capacity == 0) {
    throw util::ValueError("async: need a positive archive capacity");
  }
  if (config_.total_evaluations < config_.num_workers) {
    throw util::ValueError("async: budget must cover the initial wave");
  }
}

AsyncRunRecord AsyncSteadyStateDriver::run(std::uint64_t seed) {
  util::Rng rng(seed);
  ea::Context context;
  context.mutation_std() = genome_layout_.initial_stds();
  const std::vector<ea::Range> bounds = genome_layout_.bounds();
  // Generational annealing multiplies sigma by 0.85 per mu births; apply the
  // equivalent per-birth factor so schedules match at equal budgets.
  const double per_birth_anneal = std::pow(
      config_.anneal_factor, 1.0 / static_cast<double>(config_.population_capacity));

  AsyncRunRecord record;
  record.seed = seed;

  struct InFlight {
    double finish_at = 0.0;
    std::size_t worker = 0;
    ea::Individual individual;
    bool operator>(const InFlight& other) const { return finish_at > other.finish_at; }
  };
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight;

  std::size_t births = 0;
  double busy_minutes = 0.0;

  // Launch one evaluation: decode the outcome immediately but reveal it at
  // its simulated completion time.
  const auto launch = [&](ea::Individual individual, std::size_t worker, double now) {
    std::uint64_t eval_seed = util::hash_combine(seed, births);
    for (double gene : individual.genome) {
      eval_seed = util::hash_combine(
          eval_seed, static_cast<std::uint64_t>(std::llround(gene * 1e9)));
    }
    const EvalOutcome result = evaluator_.evaluate(individual, eval_seed);
    double minutes = result.runtime_minutes;
    if (result.training_error) {
      minutes = std::min(1.0, minutes);
      individual.status = ea::EvalStatus::kTrainingError;
    } else if (minutes > config_.task_timeout_minutes) {
      minutes = config_.task_timeout_minutes;
      individual.status = ea::EvalStatus::kTimeout;
    } else {
      individual.status = ea::EvalStatus::kOk;
      individual.fitness = result.fitness;
    }
    if (individual.status != ea::EvalStatus::kOk) {
      individual.fitness = {ea::kFailureFitness, ea::kFailureFitness};
    }
    individual.eval_runtime_minutes = minutes;
    busy_minutes += minutes;
    in_flight.push(InFlight{now + minutes, worker, std::move(individual)});
    ++births;
  };

  // Initial wave: one random individual per worker.
  for (std::size_t worker = 0; worker < config_.num_workers; ++worker) {
    launch(genome_layout_.create_individual(rng, 0), worker, 0.0);
  }

  ea::Population archive;
  double now = 0.0;
  while (!in_flight.empty()) {
    InFlight done = in_flight.top();
    in_flight.pop();
    now = done.finish_at;
    if (done.individual.status != ea::EvalStatus::kOk) ++record.failures;
    record.evaluations.push_back(
        to_record(done.individual, static_cast<int>(record.evaluations.size())));
    archive.push_back(std::move(done.individual));

    // Steady-state survivor truncation.
    if (archive.size() > config_.population_capacity) {
      std::vector<moo::ObjectiveVector> objectives;
      objectives.reserve(archive.size());
      for (const auto& ind : archive) objectives.push_back(ind.fitness);
      const auto survivors =
          moo::nsga2_select(objectives, config_.population_capacity,
                            config_.sort_backend);
      ea::Population next;
      next.reserve(survivors.size());
      for (std::size_t i : survivors) next.push_back(std::move(archive[i]));
      archive = std::move(next);
    }

    // Refill the idle worker immediately (Listing-1 variation, no barrier).
    if (births < config_.total_evaluations) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(archive.size()) - 1));
      ea::Individual child = archive[pick].clone(rng);
      const ea::StreamOp mutate = ea::mutate_gaussian(context, bounds, rng);
      child = mutate(child);
      child.birth_generation = static_cast<int>(births);
      context.anneal_mutation_std(per_birth_anneal);
      launch(std::move(child), done.worker, now);
    }
  }

  record.total_minutes = now;
  record.busy_fraction =
      now > 0.0 ? busy_minutes / (now * static_cast<double>(config_.num_workers))
                : 0.0;
  for (const auto& individual : archive) {
    record.final_population.push_back(
        to_record(individual, individual.birth_generation));
  }
  return record;
}

}  // namespace dpho::core
