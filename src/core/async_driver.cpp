#include "core/async_driver.hpp"

#include "core/engine.hpp"
#include "util/error.hpp"

namespace dpho::core {

AsyncSteadyStateDriver::AsyncSteadyStateDriver(AsyncDriverConfig config,
                                               const Evaluator& evaluator)
    : config_(std::move(config)), evaluator_(evaluator) {
  if (config_.num_workers == 0) throw util::ValueError("async: need >= 1 worker");
  if (config_.population_capacity == 0) {
    throw util::ValueError("async: need a positive archive capacity");
  }
  if (config_.total_evaluations < config_.num_workers) {
    throw util::ValueError("async: budget must cover the initial wave");
  }
}

RunRecord AsyncSteadyStateDriver::run(std::uint64_t seed) {
  EngineConfig engine_config;
  engine_config.mode = ScheduleMode::kSteadyState;
  engine_config.population_size = config_.population_capacity;
  engine_config.num_workers = config_.num_workers;
  engine_config.total_evaluations = config_.total_evaluations;
  engine_config.anneal_factor = config_.anneal_factor;
  engine_config.anneal_enabled = config_.anneal_enabled;
  engine_config.sort_backend = config_.sort_backend;
  engine_config.cluster = config_.cluster;
  engine_config.farm = config_.farm;
  engine_config.farm.task_timeout_minutes = config_.task_timeout_minutes;
  engine_config.cluster_backend = config_.cluster_backend;
  engine_config.include_runtime_objective = config_.include_runtime_objective;
  engine_config.representation = config_.representation;
  engine_config.checkpoint_dir = config_.checkpoint_dir;
  engine_config.resume = config_.resume;
  engine_config.halt_after_evaluations = config_.halt_after_evaluations;
  engine_config.checkpoint_every = config_.checkpoint_every;
  engine_config.trace_dir = config_.trace_dir;
  engine_config.metrics_interval = config_.metrics_interval;
  return EvolutionEngine(std::move(engine_config), evaluator_).run(seed);
}

}  // namespace dpho::core
