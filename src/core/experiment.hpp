// Multi-run experiment orchestration and result export.
//
// The paper performs five independent EA deployments (3500 trainings total)
// and analyses the aggregate.  ExperimentRunner repeats Nsga2Driver::run over
// a seed list and exports per-individual records as CSV/JSON for plotting.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "util/json.hpp"

namespace dpho::core {

struct ExperimentConfig {
  DriverConfig driver;
  /// Schedule mode for every seed; steady-state runs reuse the driver config
  /// (population, farm, faults, trace dir, ...) with the knobs below.
  ScheduleMode mode = ScheduleMode::kGenerational;
  /// Steady state only: concurrent workers (0 -> population_size) and total
  /// evaluation budget (0 -> (generations + 1) * population_size).
  std::size_t async_workers = 0;
  std::size_t async_total_evaluations = 0;
  /// Steady state only: completions between checkpoint writes.  Each write
  /// persists the full run history, so at large budgets a coarser cadence
  /// trades resume granularity for checkpoint I/O.
  std::size_t async_checkpoint_every = 1;
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  /// When set, every seed checkpoints into `<checkpoint_dir>/seed-<seed>` and
  /// `run_all()` can resume a killed experiment where it stopped.  Works in
  /// both schedule modes (steady-state checkpoints mid-wave).
  std::optional<std::filesystem::path> checkpoint_dir;
  /// Resume per-seed runs from their checkpoints when present.
  bool resume = false;
};

class ExperimentRunner {
 public:
  ExperimentRunner(ExperimentConfig config, const Evaluator& evaluator)
      : config_(std::move(config)), evaluator_(evaluator) {}

  /// Runs every seed; deterministic per seed.
  std::vector<RunRecord> run_all() const;

  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentConfig config_;
  const Evaluator& evaluator_;
};

/// CSV with one row per evaluation across all runs/generations
/// (run, generation, uuid, genome..., rmse_e, rmse_f, runtime, status).
std::string records_csv(const std::vector<RunRecord>& runs);

/// Writes records_csv plus a JSON summary next to it.
void export_results(const std::vector<RunRecord>& runs,
                    const std::filesystem::path& directory);

/// Single-record (de)serialization, shared with the checkpoint layer.
util::Json eval_record_to_json(const EvalRecord& record);
EvalRecord eval_record_from_json(const util::Json& json);
util::Json generation_to_json(const GenerationRecord& generation);
GenerationRecord generation_from_json(const util::Json& json);

/// Lossless persistence: the full run records (every evaluation, per
/// generation, with genomes/fitness/runtimes/statuses) as JSON, so the
/// analysis layer can be re-run later without repeating the experiment.
util::Json runs_to_json(const std::vector<RunRecord>& runs);
std::vector<RunRecord> runs_from_json(const util::Json& json);
void save_runs(const std::vector<RunRecord>& runs, const std::filesystem::path& path);
std::vector<RunRecord> load_runs(const std::filesystem::path& path);

}  // namespace dpho::core
