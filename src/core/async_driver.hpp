// Asynchronous steady-state NSGA-II deployment.
//
// The paper's deployment is generational: every generation is a barrier, so
// the whole 100-node allocation waits for its slowest training (Figure-1
// makespans are max-of-wave).  The authors' own prior work (Scott et al.,
// "Avoiding excess computation in asynchronous evolutionary algorithms",
// cited as [24]) motivates the steady-state alternative implemented here:
// the moment any worker finishes, its result joins the archive, survivor
// truncation keeps the best mu, and a freshly mutated offspring is launched
// on the now-idle node -- no barrier, near-perfect utilization when training
// runtimes vary (which they do: rcut alone spans ~30-78 minutes).
//
// bench_async_ablation quantifies the wall-clock/utilization win over the
// generational driver at equal evaluation budgets.
#pragma once

#include <cstdint>
#include <optional>

#include "core/driver.hpp"

namespace dpho::core {

struct AsyncDriverConfig {
  std::size_t num_workers = 100;          // nodes / concurrent trainings
  std::size_t population_capacity = 100;  // archive size mu
  std::size_t total_evaluations = 700;    // same budget as 7 x 100 generational
  double anneal_factor = 0.85;            // applied per mu births (paper-equivalent)
  double task_timeout_minutes = 120.0;
  moo::SortBackend sort_backend = moo::SortBackend::kRankOrdinal;
  std::optional<ea::Representation> representation;  // default: 7-gene DeepMD
};

struct AsyncRunRecord {
  std::uint64_t seed = 0;
  std::vector<EvalRecord> evaluations;   // completion order; runtime + status set
  std::vector<EvalRecord> final_population;
  double total_minutes = 0.0;            // simulated time to finish the budget
  double busy_fraction = 0.0;            // mean worker utilization in [0,1]
  std::size_t failures = 0;
};

class AsyncSteadyStateDriver {
 public:
  AsyncSteadyStateDriver(AsyncDriverConfig config, const Evaluator& evaluator);

  AsyncRunRecord run(std::uint64_t seed);

 private:
  AsyncDriverConfig config_;
  const Evaluator& evaluator_;
  ea::Representation genome_layout_;
};

}  // namespace dpho::core
