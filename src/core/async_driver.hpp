// Asynchronous steady-state NSGA-II deployment.
//
// The paper's deployment is generational: every generation is a barrier, so
// the whole 100-node allocation waits for its slowest training (Figure-1
// makespans are max-of-wave).  The authors' own prior work (Scott et al.,
// "Avoiding excess computation in asynchronous evolutionary algorithms",
// cited as [24]) motivates the steady-state alternative implemented here:
// the moment any worker finishes, its result joins the archive, survivor
// truncation keeps the best mu, and a freshly mutated offspring is launched
// on the now-idle node -- no barrier, near-perfect utilization when training
// runtimes vary (which they do: rcut alone spans ~30-78 minutes).
//
// This driver is a thin facade over core::EvolutionEngine in steady-state
// mode: evaluations route through hpc::DaskCluster's streaming session, so
// FaultPlan injection, retry accounting, node-health tracking, trace export
// and crash-safe checkpoint/resume behave exactly as in the generational
// deployment.  bench_async_ablation quantifies the wall-clock/utilization
// win over the generational schedule at equal evaluation budgets.
#pragma once

#include <cstdint>
#include <optional>

#include "core/driver.hpp"

namespace dpho::core {

struct AsyncDriverConfig {
  std::size_t num_workers = 100;          // nodes / concurrent trainings
  std::size_t population_capacity = 100;  // archive size mu
  std::size_t total_evaluations = 700;    // same budget as 7 x 100 generational
  double anneal_factor = 0.85;            // applied per mu births (paper-equivalent)
  bool anneal_enabled = true;             // ablation hook
  double task_timeout_minutes = 120.0;
  moo::SortBackend sort_backend = moo::SortBackend::kRankOrdinal;
  hpc::ClusterSpec cluster = hpc::ClusterSpec::summit();
  hpc::FarmConfig farm;                   // faults, retries, node-failure model
  /// Cluster backend: simulated farm (default) or real worker subprocesses.
  hpc::ClusterBackendConfig cluster_backend;
  bool include_runtime_objective = false;
  std::optional<ea::Representation> representation;  // default: 7-gene DeepMD
  std::optional<std::filesystem::path> checkpoint_dir;
  bool resume = false;
  std::optional<std::size_t> halt_after_evaluations;  // graceful preemption
  std::size_t checkpoint_every = 1;       // completions between checkpoints
  std::optional<std::filesystem::path> trace_dir;
  /// Closed waves between engine.metrics timeline snapshots (0 = off).
  std::size_t metrics_interval = 0;
};

class AsyncSteadyStateDriver {
 public:
  AsyncSteadyStateDriver(AsyncDriverConfig config, const Evaluator& evaluator);

  /// Runs the full budget; the returned record's mode is kSteadyState and
  /// its "generations" are waves of population_capacity completions.
  RunRecord run(std::uint64_t seed);

 private:
  AsyncDriverConfig config_;
  const Evaluator& evaluator_;
};

}  // namespace dpho::core
