// Neural-architecture-search extension (the paper's stated future work).
//
// Section 4: "model fidelity may also be further improved by incorporating
// neural architecture searching on the two DeePMD neural networks".  This
// module extends the seven-gene representation with two categorical
// architecture genes -- one selecting the embedding-network shape, one the
// fitting-network shape -- decoded with the same floor-modulus scheme as the
// other categorical hyperparameters, so the unchanged NSGA-II pipeline
// optimizes architecture and training hyperparameters jointly.
#pragma once

#include <string>
#include <vector>

#include "core/deepmd_repr.hpp"
#include "core/evaluator.hpp"

namespace dpho::core {

/// The architecture search space: candidate layer-width vectors for both
/// networks.  Defaults are paper-scale; tests/examples pass laptop-scale
/// presets.
struct NasSpace {
  std::vector<std::vector<std::size_t>> embedding_choices = {
      {20, 40, 80}, {25, 50, 100}, {32, 64, 128}};
  std::vector<std::vector<std::size_t>> fitting_choices = {
      {120, 120, 120}, {240, 240, 240}, {240, 240, 240, 240}};
};

/// A decoded NAS phenotype: training hyperparameters plus architectures.
struct NasParams {
  HyperParams hp;
  std::vector<std::size_t> embedding_neuron;
  std::vector<std::size_t> fitting_neuron;

  /// Applies hyperparameters AND architecture onto a base config.
  dp::TrainInput apply_to(dp::TrainInput base) const;

  std::string describe() const;
};

/// The 9-gene representation: Table 1's seven genes + two architecture genes.
class NasRepresentation {
 public:
  explicit NasRepresentation(NasSpace space = {});

  enum GeneIndex : std::size_t {
    kEmbeddingArch = DeepMDRepresentation::kGenomeLength,
    kFittingArch,
    kNasGenomeLength,
  };

  const ea::Representation& representation() const { return representation_; }
  const NasSpace& space() const { return space_; }

  NasParams decode(const std::vector<double>& genome) const;

 private:
  DeepMDRepresentation base_;
  NasSpace space_;
  ea::Representation representation_;
};

/// Real-training evaluator over the 9-gene genome: trains the actual dp
/// stack with the decoded architecture.
class NasRealEvaluator : public Evaluator {
 public:
  NasRealEvaluator(const md::FrameDataset& train, const md::FrameDataset& validation,
                   RealEvalOptions options, NasSpace space);

  EvalOutcome evaluate(const ea::Individual& individual,
                       std::uint64_t eval_seed) const override;

  const NasRepresentation& representation() const { return representation_; }

 private:
  const md::FrameDataset& train_;
  const md::FrameDataset& validation_;
  RealEvalOptions options_;
  NasRepresentation representation_;
};

}  // namespace dpho::core
