#include "core/experiment.hpp"

#include <map>
#include <sstream>

#include "core/async_driver.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace dpho::core {

std::vector<RunRecord> ExperimentRunner::run_all() const {
  std::vector<RunRecord> runs;
  runs.reserve(config_.seeds.size());
  for (std::uint64_t seed : config_.seeds) {
    std::optional<std::filesystem::path> seed_dir;
    if (config_.checkpoint_dir) {
      seed_dir = *config_.checkpoint_dir / ("seed-" + std::to_string(seed));
    }
    if (config_.mode == ScheduleMode::kGenerational) {
      DriverConfig driver_config = config_.driver;
      if (seed_dir) {
        driver_config.checkpoint_dir = seed_dir;
        driver_config.resume = config_.resume;
      }
      Nsga2Driver driver(driver_config, evaluator_);
      runs.push_back(driver.run(seed));
    } else {
      const DriverConfig& base = config_.driver;
      AsyncDriverConfig async;
      async.num_workers = config_.async_workers != 0 ? config_.async_workers
                                                     : base.population_size;
      async.population_capacity = base.population_size;
      async.total_evaluations =
          config_.async_total_evaluations != 0
              ? config_.async_total_evaluations
              : (base.generations + 1) * base.population_size;
      async.anneal_factor = base.anneal_factor;
      async.anneal_enabled = base.anneal_enabled;
      async.task_timeout_minutes = base.farm.task_timeout_minutes;
      async.sort_backend = base.sort_backend;
      async.cluster = base.cluster;
      async.farm = base.farm;
      async.cluster_backend = base.cluster_backend;
      async.include_runtime_objective = base.include_runtime_objective;
      async.representation = base.representation;
      if (seed_dir) {
        async.checkpoint_dir = seed_dir;
        async.resume = config_.resume;
        async.checkpoint_every = config_.async_checkpoint_every;
      }
      async.trace_dir = base.trace_dir;
      async.metrics_interval = base.metrics_interval;
      AsyncSteadyStateDriver driver(async, evaluator_);
      runs.push_back(driver.run(seed));
    }
  }
  return runs;
}

std::string records_csv(const std::vector<RunRecord>& runs) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"run_seed", "generation", "uuid", "start_lr", "stop_lr", "rcut",
                    "rcut_smth", "scale_by_worker", "desc_activ_func",
                    "fitting_activ_func", "rmse_e", "rmse_f", "runtime_minutes",
                    "status", "attempts", "failure_cause"});
  const auto fmt = util::CsvWriter::format;
  for (const RunRecord& run : runs) {
    for (const GenerationRecord& generation : run.generations) {
      for (const EvalRecord& record : generation.evaluated) {
        std::vector<std::string> row = {std::to_string(run.seed),
                                        std::to_string(record.generation), record.uuid};
        for (double gene : record.genome) row.push_back(fmt(gene));
        row.push_back(record.fitness.size() >= 2 ? fmt(record.fitness[0]) : "");
        row.push_back(record.fitness.size() >= 2 ? fmt(record.fitness[1]) : "");
        row.push_back(fmt(record.runtime_minutes));
        row.push_back(to_string(record.status));
        row.push_back(std::to_string(record.attempts));
        row.push_back(record.failure_cause);
        writer.write_row(row);
      }
    }
  }
  return out.str();
}

void export_results(const std::vector<RunRecord>& runs,
                    const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);
  util::write_file(directory / "evaluations.csv", records_csv(runs));

  util::Json summary;
  util::JsonArray run_array;
  for (const RunRecord& run : runs) {
    util::Json entry;
    entry["seed"] = run.seed;
    entry["mode"] = to_string(run.mode);
    entry["job_minutes"] = run.job_minutes;
    entry["busy_fraction"] = run.busy_fraction;
    std::size_t failures = 0;
    std::size_t evaluations = 0;
    std::size_t retried = 0;
    std::size_t attempts_total = 0;
    std::map<std::string, std::size_t> causes;
    for (const GenerationRecord& generation : run.generations) {
      failures += generation.failures;
      evaluations += generation.evaluated.size();
      for (const EvalRecord& record : generation.evaluated) {
        attempts_total += record.attempts;
        if (record.attempts > 1) ++retried;
        if (record.failure_cause != "none") ++causes[record.failure_cause];
      }
    }
    entry["evaluations"] = evaluations;
    entry["failures"] = failures;
    entry["generations"] = run.generations.size();
    entry["attempts_total"] = attempts_total;
    entry["evaluations_retried"] = retried;
    util::Json cause_counts;
    for (const auto& [cause, count] : causes) cause_counts[cause] = count;
    if (causes.empty()) cause_counts = util::Json(util::JsonObject{});
    entry["failure_causes"] = std::move(cause_counts);
    run_array.push_back(std::move(entry));
  }
  summary["runs"] = util::Json(std::move(run_array));
  util::write_file(directory / "summary.json", summary.dump(2));
}

namespace {

ea::EvalStatus status_from_string(const std::string& name) {
  if (name == "ok") return ea::EvalStatus::kOk;
  if (name == "timeout") return ea::EvalStatus::kTimeout;
  if (name == "training_error") return ea::EvalStatus::kTrainingError;
  if (name == "node_failure") return ea::EvalStatus::kNodeFailure;
  throw util::ParseError("unknown eval status: " + name);
}

}  // namespace

util::Json eval_record_to_json(const EvalRecord& record) {
  util::Json json;
  util::JsonArray genome;
  for (double gene : record.genome) genome.emplace_back(gene);
  json["genome"] = util::Json(std::move(genome));
  util::JsonArray fitness;
  for (double f : record.fitness) fitness.emplace_back(f);
  json["fitness"] = util::Json(std::move(fitness));
  json["runtime_minutes"] = record.runtime_minutes;
  json["status"] = to_string(record.status);
  json["attempts"] = record.attempts;
  json["failure_cause"] = record.failure_cause;
  json["generation"] = record.generation;
  json["uuid"] = record.uuid;
  return json;
}

EvalRecord eval_record_from_json(const util::Json& json) {
  EvalRecord record;
  for (const util::Json& gene : json.at("genome").as_array()) {
    record.genome.push_back(gene.as_number());
  }
  for (const util::Json& f : json.at("fitness").as_array()) {
    record.fitness.push_back(f.as_number());
  }
  record.runtime_minutes = json.at("runtime_minutes").as_number();
  record.status = status_from_string(json.at("status").as_string());
  // Optional since dpho-runs-v1 documents written before the fault-tolerance
  // layer lack them.
  record.attempts = static_cast<std::size_t>(json.number_or("attempts", 1.0));
  record.failure_cause = json.string_or("failure_cause", "none");
  record.generation = static_cast<int>(json.at("generation").as_int());
  record.uuid = json.at("uuid").as_string();
  return record;
}

util::Json generation_to_json(const GenerationRecord& gen) {
  util::Json gen_json;
  gen_json["generation"] = gen.generation;
  gen_json["makespan_minutes"] = gen.makespan_minutes;
  gen_json["failures"] = gen.failures;
  gen_json["node_failures"] = gen.node_failures;
  util::JsonArray sigma;
  for (double s : gen.mutation_std) sigma.emplace_back(s);
  gen_json["mutation_std"] = util::Json(std::move(sigma));
  util::JsonArray evaluated;
  for (const EvalRecord& record : gen.evaluated) {
    evaluated.push_back(eval_record_to_json(record));
  }
  gen_json["evaluated"] = util::Json(std::move(evaluated));
  return gen_json;
}

GenerationRecord generation_from_json(const util::Json& gen_json) {
  GenerationRecord gen;
  gen.generation = static_cast<int>(gen_json.at("generation").as_int());
  gen.makespan_minutes = gen_json.at("makespan_minutes").as_number();
  gen.failures = static_cast<std::size_t>(gen_json.at("failures").as_int());
  gen.node_failures = static_cast<std::size_t>(gen_json.at("node_failures").as_int());
  for (const util::Json& s : gen_json.at("mutation_std").as_array()) {
    gen.mutation_std.push_back(s.as_number());
  }
  for (const util::Json& record : gen_json.at("evaluated").as_array()) {
    gen.evaluated.push_back(eval_record_from_json(record));
  }
  return gen;
}

util::Json runs_to_json(const std::vector<RunRecord>& runs) {
  util::Json document;
  document["format"] = "dpho-runs-v1";
  util::JsonArray run_array;
  for (const RunRecord& run : runs) {
    util::Json run_json;
    run_json["seed"] = run.seed;
    run_json["mode"] = to_string(run.mode);
    run_json["job_minutes"] = run.job_minutes;
    run_json["busy_fraction"] = run.busy_fraction;
    util::JsonArray generations;
    for (const GenerationRecord& gen : run.generations) {
      generations.push_back(generation_to_json(gen));
    }
    run_json["generations"] = util::Json(std::move(generations));
    util::JsonArray final_population;
    for (const EvalRecord& record : run.final_population) {
      final_population.push_back(eval_record_to_json(record));
    }
    run_json["final_population"] = util::Json(std::move(final_population));
    run_array.push_back(std::move(run_json));
  }
  document["runs"] = util::Json(std::move(run_array));
  return document;
}

std::vector<RunRecord> runs_from_json(const util::Json& json) {
  if (json.string_or("format", "") != "dpho-runs-v1") {
    throw util::ParseError("not a dpho-runs-v1 document");
  }
  std::vector<RunRecord> runs;
  for (const util::Json& run_json : json.at("runs").as_array()) {
    RunRecord run;
    run.seed = static_cast<std::uint64_t>(run_json.at("seed").as_int());
    // Optional: documents written before the unified engine lack them.
    run.mode = schedule_mode_from_string(
        run_json.string_or("mode", to_string(ScheduleMode::kGenerational)));
    run.busy_fraction = run_json.number_or("busy_fraction", 0.0);
    run.job_minutes = run_json.at("job_minutes").as_number();
    for (const util::Json& gen_json : run_json.at("generations").as_array()) {
      run.generations.push_back(generation_from_json(gen_json));
    }
    for (const util::Json& record : run_json.at("final_population").as_array()) {
      run.final_population.push_back(eval_record_from_json(record));
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

void save_runs(const std::vector<RunRecord>& runs, const std::filesystem::path& path) {
  util::write_file(path, runs_to_json(runs).dump());
}

std::vector<RunRecord> load_runs(const std::filesystem::path& path) {
  return runs_from_json(util::Json::parse(util::read_file(path)));
}

}  // namespace dpho::core
