// Per-individual run directories and input.json templating.
//
// Mirrors the evaluation workflow of section 2.2.4, steps 2-3: every
// individual gets a directory named after its UUID, and an input.json is
// produced by string.Template substitution of the decoded gene values into a
// JSON-formatted template.
#pragma once

#include <filesystem>
#include <string>

#include "core/hyperparams.hpp"
#include "ea/individual.hpp"

namespace dpho::core {

/// The built-in input.json template with ${...} placeholders for the seven
/// tuned hyperparameters (everything else fixed per section 2.1.2).
const std::string& default_input_template();

class Workspace {
 public:
  /// `base` is created if missing; pass a custom template to override the
  /// built-in one.
  explicit Workspace(std::filesystem::path base,
                     std::string input_template = default_input_template());

  const std::filesystem::path& base() const { return base_; }

  /// The run directory of an individual (created on demand).
  std::filesystem::path run_dir(const ea::Individual& individual) const;

  /// Steps 2-3 of the workflow: creates the UUID directory and writes the
  /// substituted input.json.  Returns the input.json path.
  std::filesystem::path prepare(const ea::Individual& individual,
                                const HyperParams& hp) const;

  /// Path of the lcurve the training is expected to produce.
  std::filesystem::path lcurve_path(const ea::Individual& individual) const;

 private:
  std::filesystem::path base_;
  std::string input_template_;
};

}  // namespace dpho::core
