#include "core/eval_config_io.hpp"

#include "util/error.hpp"

namespace dpho::core {

namespace {

// One field list drives both directions so the two cannot drift apart.
#define DPHO_SURROGATE_DOUBLE_FIELDS(X) \
  X(train_steps)                        \
  X(force_floor)                        \
  X(force_rcut_amp)                     \
  X(force_rcut_decay)                   \
  X(force_smth_penalty)                 \
  X(smth_threshold)                     \
  X(energy_floor)                       \
  X(energy_rcut_amp)                    \
  X(energy_rcut_decay)                  \
  X(lr_optimum_log10)                   \
  X(lr_curvature_f)                     \
  X(lr_curvature_e)                     \
  X(stop_lr_best_log10)                 \
  X(stop_lr_penalty_f)                  \
  X(stop_lr_penalty_e)                  \
  X(balance_lo_log10)                   \
  X(balance_span)                       \
  X(tradeoff_force_gain)                \
  X(tradeoff_energy_base)               \
  X(tradeoff_energy_gain)               \
  X(untrained_force)                    \
  X(untrained_energy)                   \
  X(budget_floor)                       \
  X(runtime_base)                       \
  X(runtime_rcut_amp)                   \
  X(runtime_rcut_ref)                   \
  X(failed_runtime_lo)                  \
  X(failed_runtime_hi)                  \
  X(diverge_lr_soft)                    \
  X(diverge_lr_hard)                    \
  X(base_failure_rate)                  \
  X(noise_sigma)                        \
  X(runtime_noise)

util::Json surrogate_to_json(const SurrogateConfig& config) {
  util::Json obj;
  obj["num_workers"] = config.num_workers;
#define DPHO_PUT(field) obj[#field] = config.field;
  DPHO_SURROGATE_DOUBLE_FIELDS(DPHO_PUT)
#undef DPHO_PUT
  return obj;
}

SurrogateConfig surrogate_from_json(const util::Json& json) {
  SurrogateConfig config;
  config.num_workers = static_cast<std::size_t>(
      json.number_or("num_workers", static_cast<double>(config.num_workers)));
#define DPHO_GET(field) config.field = json.number_or(#field, config.field);
  DPHO_SURROGATE_DOUBLE_FIELDS(DPHO_GET)
#undef DPHO_GET
  return config;
}

util::Json subprocess_to_json(const SubprocessEvalOptions& options) {
  util::Json obj;
  obj["dp_train_binary"] = options.dp_train_binary.string();
  obj["train_data_dir"] = options.train_data_dir.string();
  obj["validation_data_dir"] = options.validation_data_dir.string();
  obj["workspace_dir"] = options.workspace_dir.string();
  obj["input_template"] = options.input_template;
  obj["wall_limit_seconds"] = options.wall_limit_seconds;
  obj["sim_minutes_per_real_second"] = options.sim_minutes_per_real_second;
  obj["trainer_threads"] = options.trainer_threads;
  obj["max_attempts"] = options.max_attempts;
  obj["retry_backoff_seconds"] = options.retry_backoff_seconds;
  obj["retry_backoff_cap_seconds"] = options.retry_backoff_cap_seconds;
  obj["watchdog_grace_seconds"] = options.watchdog_grace_seconds;
  obj["watchdog_poll_seconds"] = options.watchdog_poll_seconds;
  obj["sigterm_grace_seconds"] = options.sigterm_grace_seconds;
  return obj;
}

SubprocessEvalOptions subprocess_from_json(const util::Json& json) {
  SubprocessEvalOptions options;
  options.dp_train_binary = json.string_or("dp_train_binary", "");
  options.train_data_dir = json.string_or("train_data_dir", "");
  options.validation_data_dir = json.string_or("validation_data_dir", "");
  options.workspace_dir = json.string_or("workspace_dir", "");
  options.input_template = json.string_or("input_template", "");
  options.wall_limit_seconds =
      json.number_or("wall_limit_seconds", options.wall_limit_seconds);
  options.sim_minutes_per_real_second = json.number_or(
      "sim_minutes_per_real_second", options.sim_minutes_per_real_second);
  options.trainer_threads = static_cast<std::size_t>(json.number_or(
      "trainer_threads", static_cast<double>(options.trainer_threads)));
  options.max_attempts = static_cast<std::size_t>(json.number_or(
      "max_attempts", static_cast<double>(options.max_attempts)));
  options.retry_backoff_seconds =
      json.number_or("retry_backoff_seconds", options.retry_backoff_seconds);
  options.retry_backoff_cap_seconds = json.number_or(
      "retry_backoff_cap_seconds", options.retry_backoff_cap_seconds);
  options.watchdog_grace_seconds =
      json.number_or("watchdog_grace_seconds", options.watchdog_grace_seconds);
  options.watchdog_poll_seconds =
      json.number_or("watchdog_poll_seconds", options.watchdog_poll_seconds);
  options.sigterm_grace_seconds =
      json.number_or("sigterm_grace_seconds", options.sigterm_grace_seconds);
  return options;
}

}  // namespace

util::Json eval_backend_config_to_json(const EvalBackendConfig& config) {
  util::Json obj;
  obj["backend"] = to_string(config.backend);
  switch (config.backend) {
    case EvalBackend::kSurrogate:
      obj["surrogate"] = surrogate_to_json(config.surrogate);
      return obj;
    case EvalBackend::kSubprocess:
      obj["subprocess"] = subprocess_to_json(config.subprocess);
      return obj;
    case EvalBackend::kRealTraining:
      break;
  }
  throw util::ValueError(
      "eval backend '" + to_string(config.backend) +
      "' holds borrowed datasets and cannot be shipped to a worker");
}

EvalBackendConfig eval_backend_config_from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw util::ParseError("eval config: expected a JSON object");
  }
  EvalBackendConfig config;
  const std::string backend =
      json.string_or("backend", to_string(EvalBackend::kSurrogate));
  if (backend == to_string(EvalBackend::kSurrogate)) {
    config.backend = EvalBackend::kSurrogate;
    if (json.contains("surrogate")) {
      config.surrogate = surrogate_from_json(json.at("surrogate"));
    }
  } else if (backend == to_string(EvalBackend::kSubprocess)) {
    config.backend = EvalBackend::kSubprocess;
    if (json.contains("subprocess")) {
      config.subprocess = subprocess_from_json(json.at("subprocess"));
    }
  } else {
    throw util::ParseError("eval config: unsupported backend '" + backend +
                           "'");
  }
  return config;
}

}  // namespace dpho::core
