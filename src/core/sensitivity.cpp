#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ea/decoder.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace dpho::core {

namespace {

double finite_range(const std::vector<SensitivityPoint>& points,
                    double SurrogateOutcome::*member) {
  double lo = 1e300, hi = -1e300;
  for (const SensitivityPoint& p : points) {
    if (p.outcome.failed) continue;
    lo = std::min(lo, p.outcome.*member);
    hi = std::max(hi, p.outcome.*member);
  }
  return hi >= lo ? hi - lo : 0.0;
}

}  // namespace

double SensitivitySweep::force_dynamic_range() const {
  return finite_range(points, &SurrogateOutcome::rmse_f);
}

double SensitivitySweep::energy_dynamic_range() const {
  return finite_range(points, &SurrogateOutcome::rmse_e);
}

SensitivityAnalysis::SensitivityAnalysis(TrainingSurrogate surrogate,
                                         SensitivityConfig config)
    : surrogate_(surrogate), config_(std::move(config)) {
  if (config_.baseline.size() != DeepMDRepresentation::kGenomeLength) {
    throw util::ValueError("sensitivity baseline must have 7 genes");
  }
  if (config_.samples_per_parameter < 2) {
    throw util::ValueError("sensitivity needs >= 2 samples per parameter");
  }
}

std::vector<SensitivitySweep> SensitivityAnalysis::run() const {
  std::vector<SensitivitySweep> sweeps;
  const auto& genes = representation_.representation().genes();
  for (std::size_t g = 0; g < genes.size(); ++g) {
    SensitivitySweep sweep;
    sweep.parameter = genes[g].name;
    const bool categorical = g >= DeepMDRepresentation::kScaleByWorker;
    std::vector<double> values;
    if (categorical) {
      const std::size_t choices =
          g == DeepMDRepresentation::kScaleByWorker
              ? DeepMDRepresentation::scaling_choices().size()
              : DeepMDRepresentation::activation_choices().size();
      for (std::size_t c = 0; c < choices; ++c) {
        values.push_back(static_cast<double>(c) + 0.5);
      }
    } else {
      const auto range = genes[g].init_range;
      for (std::size_t s = 0; s < config_.samples_per_parameter; ++s) {
        const double t = static_cast<double>(s) /
                         static_cast<double>(config_.samples_per_parameter - 1);
        values.push_back(range.lo + t * (range.hi - range.lo));
      }
    }
    for (double value : values) {
      std::vector<double> genome = config_.baseline;
      genome[g] = value;
      const HyperParams hp = representation_.decode(genome);
      SensitivityPoint point;
      point.gene_value = value;
      switch (g) {
        case DeepMDRepresentation::kScaleByWorker:
          point.decoded = nn::to_string(hp.scale_by_worker);
          break;
        case DeepMDRepresentation::kDescActivFunc:
          point.decoded = nn::to_string(hp.desc_activ_func);
          break;
        case DeepMDRepresentation::kFittingActivFunc:
          point.decoded = nn::to_string(hp.fitting_activ_func);
          break;
        default:
          point.decoded = util::CsvWriter::format(value);
      }
      point.outcome = surrogate_.evaluate_mean(hp);
      sweep.points.push_back(std::move(point));
    }
    sweeps.push_back(std::move(sweep));
  }
  return sweeps;
}

std::string SensitivityAnalysis::to_csv(const std::vector<SensitivitySweep>& sweeps) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"parameter", "gene_value", "decoded", "rmse_e", "rmse_f",
                    "runtime_minutes", "failed"});
  const auto fmt = util::CsvWriter::format;
  for (const SensitivitySweep& sweep : sweeps) {
    for (const SensitivityPoint& point : sweep.points) {
      writer.write_row({sweep.parameter, fmt(point.gene_value), point.decoded,
                        fmt(point.outcome.rmse_e), fmt(point.outcome.rmse_f),
                        fmt(point.outcome.runtime_minutes),
                        point.outcome.failed ? "1" : "0"});
    }
  }
  return out.str();
}

std::vector<std::string> SensitivityAnalysis::ranking(
    const std::vector<SensitivitySweep>& sweeps) {
  std::vector<std::size_t> order(sweeps.size());
  for (std::size_t i = 0; i < sweeps.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sweeps[a].force_dynamic_range() > sweeps[b].force_dynamic_range();
  });
  std::vector<std::string> names;
  names.reserve(order.size());
  for (std::size_t i : order) names.push_back(sweeps[i].parameter);
  return names;
}

}  // namespace dpho::core
