// The genome <-> hyperparameter representation of Table 1.
//
// Each individual is a seven-element real-valued vector:
//   [start_lr, stop_lr, rcut, rcut_smth, scale_by_worker, desc_activ_func,
//    fitting_activ_func]
// with the last three decoded to strings by floor-modulus (section 2.2.2).
// Initialization ranges and initial Gaussian-mutation standard deviations are
// the paper's Table 1 values; hard mutation bounds equal the initialization
// ranges so annealed mutation cannot push learning rates negative.
#pragma once

#include <string>
#include <vector>

#include "core/hyperparams.hpp"
#include "ea/representation.hpp"

namespace dpho::core {

class DeepMDRepresentation {
 public:
  DeepMDRepresentation();

  /// Gene order in the genome.
  enum GeneIndex : std::size_t {
    kStartLr = 0,
    kStopLr,
    kRcut,
    kRcutSmth,
    kScaleByWorker,
    kDescActivFunc,
    kFittingActivFunc,
    kGenomeLength,
  };

  const ea::Representation& representation() const { return representation_; }

  /// The LEAP-style decode: genome -> phenotype (section 2.2.2).
  HyperParams decode(const std::vector<double>& genome) const;

  /// The string choice lists, in decode order.
  static const std::vector<std::string>& scaling_choices();
  static const std::vector<std::string>& activation_choices();

  /// Renders Table 1 (initialization ranges and mutation sigmas).
  std::string table1() const;

 private:
  ea::Representation representation_;
};

}  // namespace dpho::core
