// The seven tuned DeePMD training hyperparameters (paper section 2.2.1).
#pragma once

#include <map>
#include <string>

#include "dp/config.hpp"
#include "nn/activation.hpp"
#include "nn/schedule.hpp"

namespace dpho::core {

/// A decoded phenotype: directly usable training settings.
struct HyperParams {
  double start_lr = 0.001;
  double stop_lr = 1e-8;
  double rcut = 6.0;       // Angstrom
  double rcut_smth = 0.5;  // Angstrom
  nn::LrScaling scale_by_worker = nn::LrScaling::kLinear;
  nn::Activation desc_activ_func = nn::Activation::kTanh;
  nn::Activation fitting_activ_func = nn::Activation::kTanh;

  /// True when DeePMD would accept this configuration (rcut ordering etc.).
  bool config_valid() const { return rcut_smth > 0.0 && rcut_smth < rcut; }

  /// Applies these hyperparameters onto a base training input.
  dp::TrainInput apply_to(dp::TrainInput base) const;

  /// Human-readable one-liner for reports.
  std::string describe() const;

  /// The template variables used for input.json substitution, keyed by the
  /// placeholder names of the workspace template.
  std::map<std::string, std::string> template_variables() const;
};

}  // namespace dpho::core
