// Fitness evaluation backends.
//
// Both backends implement the paper's evaluation contract (section 2.2.4):
// decode the 7-gene genome, run "a DeePMD training", and report the final
// validation losses [rmse_e_val, rmse_f_val] plus a runtime; failures
// (timeouts, divergence, invalid configs) surface as statuses that the
// driver converts to MAXINT fitnesses.
//
//   * SurrogateEvaluator -- the calibrated response surface; used for the
//     paper-scale experiments (100x7x5 evaluations) on the simulated cluster.
//   * RealTrainingEvaluator -- actually trains the dpho::dp model on
//     dpho::md reference data at reduced scale; used by examples, tests and
//     the surrogate cross-check.  It optionally writes the full artifact
//     trail (UUID dir, input.json, lcurve.out) through a Workspace and reads
//     the fitness back from lcurve.out, exactly like the paper's workflow.
#pragma once

#include <cstdint>
#include <optional>

#include "core/deepmd_repr.hpp"
#include "core/surrogate.hpp"
#include "core/workspace.hpp"
#include "dp/trainer.hpp"
#include "ea/individual.hpp"
#include "hpc/taskfarm.hpp"
#include "md/simulation.hpp"

namespace dpho::core {

/// Abstract evaluation backend; implementations must be thread-safe.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Computes the work result for one individual.  `eval_seed` individualizes
  /// stochastic terms; derive it deterministically from run id + uuid.
  virtual hpc::WorkResult evaluate(const ea::Individual& individual,
                                   std::uint64_t eval_seed) const = 0;
};

/// Surrogate-backed evaluation (paper-scale runs).
class SurrogateEvaluator : public Evaluator {
 public:
  explicit SurrogateEvaluator(SurrogateConfig config = {});

  hpc::WorkResult evaluate(const ea::Individual& individual,
                           std::uint64_t eval_seed) const override;

  const TrainingSurrogate& surrogate() const { return surrogate_; }
  const DeepMDRepresentation& representation() const { return representation_; }

 private:
  DeepMDRepresentation representation_;
  TrainingSurrogate surrogate_;
};

/// Real-training evaluation at laptop scale.
struct RealEvalOptions {
  dp::TrainInput base;                     // network sizes, step budget, ...
  double wall_limit_seconds = 120.0;       // per-training cap (the 2h analogue)
  double sim_minutes_per_real_second = 1.0;
  std::optional<std::filesystem::path> workspace_dir;  // artifact trail
};

class RealTrainingEvaluator : public Evaluator {
 public:
  /// The datasets must outlive the evaluator.
  RealTrainingEvaluator(const md::FrameDataset& train, const md::FrameDataset& validation,
                        RealEvalOptions options);

  hpc::WorkResult evaluate(const ea::Individual& individual,
                           std::uint64_t eval_seed) const override;

 private:
  const md::FrameDataset& train_;
  const md::FrameDataset& validation_;
  RealEvalOptions options_;
  DeepMDRepresentation representation_;
  std::optional<Workspace> workspace_;
};

/// The paper's workflow verbatim (section 2.2.4): every evaluation launches
/// the training executable as a *subprocess* in the individual's UUID-named
/// run directory (their per-training jsrun), with the hyperparameters passed
/// through the templated input.json on disk and the fitness read back from
/// lcurve.out.  Exit code 3 (wall limit) maps to a timeout, any other
/// non-zero exit to a training error.
struct SubprocessEvalOptions {
  std::filesystem::path dp_train_binary;   // path to the dp_train executable
  std::filesystem::path train_data_dir;    // saved FrameDataset directories
  std::filesystem::path validation_data_dir;
  std::filesystem::path workspace_dir;     // UUID run dirs are created here
  std::string input_template;              // ${...} template for input.json
  double wall_limit_seconds = 7200.0;      // the paper's two hours
  double sim_minutes_per_real_second = 1.0;
  /// Fault-tolerance policy.  Transient failures (hung child killed by the
  /// watchdog, missing or corrupt lcurve.out -- typically a flaky node or
  /// filesystem) are retried with exponential backoff up to `max_attempts`;
  /// deterministic failures (bad hyperparameters -> nonzero exit, diverged
  /// training -> NaN losses, wall-limit timeouts) are never retried.
  std::size_t max_attempts = 2;
  double retry_backoff_seconds = 0.25;     // doubled after every attempt
  /// The child gets wall_limit + grace seconds of real time before the
  /// watchdog SIGKILLs it (the subprocess is expected to enforce the wall
  /// limit itself and exit with code 3; the watchdog catches hangs).
  double watchdog_grace_seconds = 30.0;
  double watchdog_poll_seconds = 0.02;
};

class SubprocessEvaluator : public Evaluator {
 public:
  explicit SubprocessEvaluator(SubprocessEvalOptions options);

  hpc::WorkResult evaluate(const ea::Individual& individual,
                           std::uint64_t eval_seed) const override;

 private:
  SubprocessEvalOptions options_;
  DeepMDRepresentation representation_;
  Workspace workspace_;
};

}  // namespace dpho::core
