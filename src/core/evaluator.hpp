// Fitness evaluation backends.
//
// All backends implement the paper's evaluation contract (section 2.2.4):
// decode the 7-gene genome, run "a DeePMD training", and report an
// EvalOutcome -- the final validation losses [rmse_e_val, rmse_f_val] plus a
// runtime on success; failures (timeouts, divergence, invalid configs)
// surface as statuses that the driver converts to MAXINT fitnesses.
//
//   * SurrogateEvaluator -- the calibrated response surface; used for the
//     paper-scale experiments (100x7x5 evaluations) on the simulated cluster.
//   * RealTrainingEvaluator -- actually trains the dpho::dp model on
//     dpho::md reference data at reduced scale; used by examples, tests and
//     the surrogate cross-check.  It optionally writes the full artifact
//     trail (UUID dir, input.json, lcurve.out) through a Workspace and reads
//     the fitness back from lcurve.out, exactly like the paper's workflow.
//   * SubprocessEvaluator -- the paper's workflow verbatim: launches the
//     dp_train executable per evaluation and parses lcurve.out.
//
// Construct backends through make_evaluator(EvalBackendConfig) so drivers,
// examples, and tools share one switch point.  This header deliberately has
// no hpc include: the evaluation contract is core-owned (EvalOutcome), and
// the taskfarm boundary adapts it via core/eval_adapter.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/deepmd_repr.hpp"
#include "core/eval_outcome.hpp"
#include "core/surrogate.hpp"
#include "core/workspace.hpp"
#include "dp/trainer.hpp"
#include "ea/individual.hpp"
#include "md/simulation.hpp"

namespace dpho::hpc {
class ThreadPool;
}  // namespace dpho::hpc

namespace dpho::core {

/// Abstract evaluation backend; implementations must be thread-safe.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Computes the outcome for one individual.  `eval_seed` individualizes
  /// stochastic terms; derive it deterministically from run id + uuid.
  virtual EvalOutcome evaluate(const ea::Individual& individual,
                               std::uint64_t eval_seed) const = 0;
};

/// Surrogate-backed evaluation (paper-scale runs).
class SurrogateEvaluator : public Evaluator {
 public:
  explicit SurrogateEvaluator(SurrogateConfig config = {});

  EvalOutcome evaluate(const ea::Individual& individual,
                       std::uint64_t eval_seed) const override;

  const TrainingSurrogate& surrogate() const { return surrogate_; }
  const DeepMDRepresentation& representation() const { return representation_; }

 private:
  DeepMDRepresentation representation_;
  TrainingSurrogate surrogate_;
};

/// Real-training evaluation at laptop scale.
struct RealEvalOptions {
  dp::TrainInput base;                     // network sizes, step budget, ...
  double wall_limit_seconds = 120.0;       // per-training cap (the 2h analogue)
  double sim_minutes_per_real_second = 1.0;
  std::optional<std::filesystem::path> workspace_dir;  // artifact trail
  /// Data-parallel gradient workers inside each training (0/1 = serial).
  /// Thread count does not change results: the trainer's reduction is
  /// fixed-order, so the lcurve is bit-identical at any setting.
  std::size_t trainer_num_threads = 0;
  /// Optional shared pool for the trainer's gradient workers; overrides
  /// trainer_num_threads.  Not owned; must outlive the evaluator.
  hpc::ThreadPool* trainer_pool = nullptr;
};

class RealTrainingEvaluator : public Evaluator {
 public:
  /// The datasets must outlive the evaluator.
  RealTrainingEvaluator(const md::FrameDataset& train, const md::FrameDataset& validation,
                        RealEvalOptions options);

  EvalOutcome evaluate(const ea::Individual& individual,
                       std::uint64_t eval_seed) const override;

 private:
  const md::FrameDataset& train_;
  const md::FrameDataset& validation_;
  RealEvalOptions options_;
  DeepMDRepresentation representation_;
  std::optional<Workspace> workspace_;
};

/// The paper's workflow verbatim (section 2.2.4): every evaluation launches
/// the training executable as a *subprocess* in the individual's UUID-named
/// run directory (their per-training jsrun), with the hyperparameters passed
/// through the templated input.json on disk and the fitness read back from
/// lcurve.out.  Exit code 3 (wall limit) maps to a timeout, any other
/// non-zero exit to a training error.
struct SubprocessEvalOptions {
  std::filesystem::path dp_train_binary;   // path to the dp_train executable
  std::filesystem::path train_data_dir;    // saved FrameDataset directories
  std::filesystem::path validation_data_dir;
  std::filesystem::path workspace_dir;     // UUID run dirs are created here
  std::string input_template;              // ${...} template for input.json
  double wall_limit_seconds = 7200.0;      // the paper's two hours
  double sim_minutes_per_real_second = 1.0;
  /// Data-parallel gradient workers inside the child (`dp_train --threads`);
  /// 0 omits the flag (the child trains serially).
  std::size_t trainer_threads = 0;
  /// Fault-tolerance policy.  Transient failures (hung child killed by the
  /// watchdog, missing or corrupt lcurve.out -- typically a flaky node or
  /// filesystem) are retried with exponential backoff up to `max_attempts`;
  /// deterministic failures (bad hyperparameters -> nonzero exit, diverged
  /// training -> NaN losses, wall-limit timeouts) are never retried.
  std::size_t max_attempts = 2;
  /// Seed-derived capped exponential backoff between attempts
  /// (hpc::retry_backoff_seconds): a pure function of (eval_seed, attempt),
  /// so a task's retry schedule never depends on what other tasks did.
  double retry_backoff_seconds = 0.25;
  double retry_backoff_cap_seconds = 4.0;
  /// The child gets wall_limit + grace seconds of real time before the
  /// watchdog moves in (the subprocess is expected to enforce the wall limit
  /// itself and exit with code 3; the watchdog catches hangs).  The kill
  /// escalates: SIGTERM first, then SIGKILL after `sigterm_grace_seconds`
  /// for children that ignore or block SIGTERM.
  double watchdog_grace_seconds = 30.0;
  double watchdog_poll_seconds = 0.02;
  double sigterm_grace_seconds = 1.0;
};

class SubprocessEvaluator : public Evaluator {
 public:
  explicit SubprocessEvaluator(SubprocessEvalOptions options);

  EvalOutcome evaluate(const ea::Individual& individual,
                       std::uint64_t eval_seed) const override;

 private:
  SubprocessEvalOptions options_;
  DeepMDRepresentation representation_;
  Workspace workspace_;
};

/// Which backend make_evaluator constructs.
enum class EvalBackend : std::uint8_t {
  kSurrogate,
  kRealTraining,
  kSubprocess,
};

std::string to_string(EvalBackend backend);

/// Everything needed to build any backend; only the fields of the selected
/// backend are read.  Dataset pointers (kRealTraining) are not owned and must
/// outlive the evaluator.
struct EvalBackendConfig {
  EvalBackend backend = EvalBackend::kSurrogate;
  SurrogateConfig surrogate;                          // kSurrogate
  const md::FrameDataset* train_data = nullptr;       // kRealTraining
  const md::FrameDataset* validation_data = nullptr;  // kRealTraining
  RealEvalOptions real;                               // kRealTraining
  SubprocessEvalOptions subprocess;                   // kSubprocess
};

/// The single construction point for evaluation backends: drivers, examples
/// and tools all select a backend through this switch.
std::unique_ptr<Evaluator> make_evaluator(const EvalBackendConfig& config);

}  // namespace dpho::core
