// JSON (de)serialization of EvalBackendConfig for the process worker pool.
//
// A dpho_worker subprocess cannot share the scheduler's in-memory evaluator;
// it rebuilds one from the init frame's eval_config object.  Only backends
// whose configuration is plain data round-trip: the surrogate (all calibration
// constants) and the subprocess launcher (paths + policy).  kRealTraining
// holds borrowed dataset pointers and cannot travel; serializing it throws.
#pragma once

#include <string>

#include "core/evaluator.hpp"
#include "util/json.hpp"

namespace dpho::core {

/// Serializes `config` for the worker init frame; throws util::ValueError for
/// backends that cannot travel (kRealTraining).
util::Json eval_backend_config_to_json(const EvalBackendConfig& config);

/// Inverse of eval_backend_config_to_json.  An empty object yields the
/// default (surrogate) configuration.  Throws util::ParseError on malformed
/// input.
EvalBackendConfig eval_backend_config_from_json(const util::Json& json);

}  // namespace dpho::core
