#include "core/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dpho::core {

namespace {

/// Multiplicative quality of each activation, per network role.  Encodes the
/// paper's section-3 observations; 1.0 is neutral, larger is worse.
double descriptor_activation_penalty(nn::Activation activation) {
  switch (activation) {
    case nn::Activation::kTanh: return 1.00;
    case nn::Activation::kSoftplus: return 1.015;
    case nn::Activation::kRelu: return 1.22;   // non-smooth s -> rough forces
    case nn::Activation::kRelu6: return 1.26;
    case nn::Activation::kSigmoid: return 1.38; // saturating; never accurate
    default: return 1.0;
  }
}

double fitting_activation_penalty(nn::Activation activation) {
  switch (activation) {
    case nn::Activation::kTanh: return 1.00;
    case nn::Activation::kSoftplus: return 1.01;
    case nn::Activation::kSigmoid: return 1.03;  // still excellent for fitting
    case nn::Activation::kRelu: return 1.45;     // dies out of the final pool
    case nn::Activation::kRelu6: return 1.52;
    default: return 1.0;
  }
}

/// Relative per-step cost of the descriptor activation (softplus is the
/// costly one; relus are cheap), seen in the Table-3 runtimes.
double descriptor_activation_cost(nn::Activation activation) {
  switch (activation) {
    case nn::Activation::kSoftplus: return 1.08;
    case nn::Activation::kSigmoid: return 1.03;
    case nn::Activation::kRelu: return 0.94;
    case nn::Activation::kRelu6: return 0.94;
    default: return 1.0;  // tanh
  }
}

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

TrainingSurrogate::TrainingSurrogate(SurrogateConfig config) : config_(config) {}

SurrogateOutcome TrainingSurrogate::evaluate(const HyperParams& hp,
                                             std::uint64_t seed) const {
  return evaluate_impl(hp, seed, /*with_noise=*/true);
}

SurrogateOutcome TrainingSurrogate::evaluate_mean(const HyperParams& hp) const {
  return evaluate_impl(hp, 0, /*with_noise=*/false);
}

SurrogateOutcome TrainingSurrogate::evaluate_impl(const HyperParams& hp,
                                                  std::uint64_t seed,
                                                  bool with_noise) const {
  util::Rng rng(seed);
  SurrogateOutcome outcome;
  const SurrogateConfig& c = config_;

  // --- configuration validity: DeePMD rejects rcut_smth >= rcut outright ---
  if (!hp.config_valid() || hp.rcut_smth >= hp.rcut - 0.05) {
    outcome.failed = true;
    outcome.runtime_minutes =
        with_noise ? rng.uniform(c.failed_runtime_lo, c.failed_runtime_hi)
                   : c.failed_runtime_lo;
    return outcome;
  }

  const double eff_lr =
      hp.start_lr * nn::scaling_factor(hp.scale_by_worker, c.num_workers);

  // --- divergence: too-aggressive effective learning rate ---
  if (eff_lr > c.diverge_lr_soft) {
    const double risk = clamp01((eff_lr - c.diverge_lr_soft) /
                                (c.diverge_lr_hard - c.diverge_lr_soft));
    const double draw = with_noise ? rng.uniform() : 0.5;
    if (draw < risk) {
      outcome.failed = true;
      outcome.runtime_minutes =
          with_noise ? rng.uniform(c.failed_runtime_lo, c.failed_runtime_hi)
                     : c.failed_runtime_lo;
      return outcome;
    }
  }
  // --- rare unexplained failures (flaky node software, OOM, ...) ---
  if (with_noise && rng.bernoulli(c.base_failure_rate)) {
    outcome.failed = true;
    outcome.runtime_minutes = rng.uniform(c.failed_runtime_lo, c.failed_runtime_hi);
    return outcome;
  }

  // --- trained-model error surface ---
  const double log_eff = std::log10(eff_lr);
  const double log_stop = std::log10(hp.stop_lr);

  const double lr_term_f =
      c.lr_curvature_f * (log_eff - c.lr_optimum_log10) * (log_eff - c.lr_optimum_log10);
  const double lr_term_e =
      c.lr_curvature_e * (log_eff - c.lr_optimum_log10) * (log_eff - c.lr_optimum_log10);
  const double stop_gap = std::max(0.0, c.stop_lr_best_log10 - log_stop);
  const double stop_term_f = c.stop_lr_penalty_f * stop_gap * stop_gap;
  const double stop_term_e = c.stop_lr_penalty_e * stop_gap * stop_gap;

  const double rcut_term_f =
      c.force_rcut_amp * std::exp(-(hp.rcut - 6.0) / c.force_rcut_decay);
  const double rcut_term_e =
      c.energy_rcut_amp * std::exp(-(hp.rcut - 6.0) / c.energy_rcut_decay);
  const double smth_term =
      c.force_smth_penalty * std::max(0.0, hp.rcut_smth - c.smth_threshold);

  // balance in [0,1]: high stop_lr keeps the force-dominated phase of the
  // loss-prefactor schedule longer -> better forces, worse energies.
  const double balance = clamp01((log_stop - c.balance_lo_log10) / c.balance_span);

  // Near-divergence instability: runs that survive an aggressive effective
  // LR still show degraded, spiky losses, so selection drives the population
  // away from the divergence cliff (this is why the paper's last generations
  // contain no failures at all).
  const double instability = std::max(0.0, eff_lr / c.diverge_lr_soft - 0.6);
  const double instability_mult = 1.0 + 0.8 * instability * instability;

  double rmse_f = (c.force_floor + rcut_term_f + smth_term + lr_term_f + stop_term_f) *
                  descriptor_activation_penalty(hp.desc_activ_func) *
                  fitting_activation_penalty(hp.fitting_activ_func) *
                  (1.0 + c.tradeoff_force_gain * (0.7 - balance)) * instability_mult;
  double rmse_e = (c.energy_floor + rcut_term_e + lr_term_e + stop_term_e) *
                  std::sqrt(descriptor_activation_penalty(hp.desc_activ_func) *
                            fitting_activation_penalty(hp.fitting_activ_func)) *
                  (c.tradeoff_energy_base + c.tradeoff_energy_gain * balance) *
                  instability_mult;

  // --- under-training blend: with a tiny learning budget the model never
  //     leaves its initialization (the scattered gen-0 cloud of Fig. 1).
  //     Mean LR of an exponential decay from a to b is (a-b)/ln(a/b). ---
  const double lr_span = std::max(eff_lr / hp.stop_lr, 1.0 + 1e-12);
  const double mean_lr = eff_lr > hp.stop_lr
                             ? (eff_lr - hp.stop_lr) / std::log(lr_span)
                             : eff_lr;
  const double budget = mean_lr * c.train_steps;
  const double alpha = clamp01(std::log10(std::max(budget / c.budget_floor, 1e-12)) / 2.0);
  rmse_f = alpha * rmse_f + (1.0 - alpha) * c.untrained_force;
  rmse_e = alpha * rmse_e + (1.0 - alpha) * c.untrained_energy;

  if (with_noise) {
    rmse_f *= std::exp(rng.normal(0.0, c.noise_sigma));
    rmse_e *= std::exp(rng.normal(0.0, 1.8 * c.noise_sigma));
  }

  // --- runtime model ---
  const double rcut_ratio = hp.rcut / c.runtime_rcut_ref;
  double runtime = (c.runtime_base + c.runtime_rcut_amp * rcut_ratio * rcut_ratio *
                                         rcut_ratio) *
                   descriptor_activation_cost(hp.desc_activ_func);
  if (with_noise) {
    runtime *= 1.0 + std::clamp(rng.normal(0.0, c.runtime_noise), -2.5 * c.runtime_noise,
                                2.5 * c.runtime_noise);
  }

  outcome.rmse_e = rmse_e;
  outcome.rmse_f = rmse_f;
  outcome.runtime_minutes = runtime;
  return outcome;
}

}  // namespace dpho::core
