// The event-driven evolution engine: one submit/complete loop for both of
// the repo's deployments.
//
// The paper's generational NSGA-II (section 2.2.3) and the asynchronous
// steady-state variant it motivates (Scott et al. [24]) share everything
// except *when* survivor selection happens and *how* sigma anneals; what
// used to be two forked drivers is now one engine parameterized by
//
//   * a SchedulePolicy  -- generational barrier (run_batch per wave) vs.
//     steady-state replacement (stream_* session, no barrier), and
//   * a VariationPolicy -- per-generation sigma annealing (x0.85 after each
//     selection) vs. the per-birth equivalent (x0.85^(1/mu) after each
//     offspring).
//
// Both policies draw on the same services: deterministic per-evaluation
// seeding (derive_eval_seed), the DaskCluster fault/retry machinery,
// MAXINT record building, rank+crowding truncation, trace export and
// crash-safe checkpointing.  Nsga2Driver and AsyncSteadyStateDriver are
// thin facades that translate their configs into an EngineConfig.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/checkpoint.hpp"
#include "core/driver.hpp"
#include "hpc/cluster_factory.hpp"

namespace dpho::core {

/// Deterministic per-evaluation seed shared by both schedule modes: run seed
/// + wave index + genome identity, so an identical genome evaluated in the
/// same wave receives the identical seed whichever mode scheduled it.
/// (Steady-state mode tags birth b with wave b / population_size.)
std::uint64_t derive_eval_seed(std::uint64_t run_seed, int wave,
                               const std::vector<double>& genome);

/// Injection seam for shared-pool deployments: when set, EngineRun builds
/// its ClusterSession through this instead of make_cluster_session, letting
/// the dpho_sched scheduler hand each run a hpc::MuxSession slice of ONE
/// shared worker pool.  The factory's session must honor the full session
/// contract (ordered delivery, snapshot/restore) for the run to stay
/// byte-identical to its solo equivalent.
using SessionFactory = std::function<std::unique_ptr<hpc::ClusterSession>(
    const hpc::ClusterSpec&, const hpc::FarmConfig&)>;

/// Mode-neutral engine configuration; the facades build one of these.
struct EngineConfig {
  ScheduleMode mode = ScheduleMode::kGenerational;
  std::size_t population_size = 100;  // mu == archive capacity
  /// Concurrent evaluations (nodes).  0 -> population_size.  Generational
  /// mode always allocates one node per population slot.
  std::size_t num_workers = 0;
  std::size_t generations = 6;        // generational waves beyond wave 0
  /// Steady-state evaluation budget.  0 -> (generations + 1) * population
  /// (the generational budget at equal settings).
  std::size_t total_evaluations = 0;
  double anneal_factor = 0.85;
  bool anneal_enabled = true;
  moo::SortBackend sort_backend = moo::SortBackend::kRankOrdinal;
  hpc::ClusterSpec cluster = hpc::ClusterSpec::summit();
  hpc::FarmConfig farm;               // job.nodes synced to the worker count
  /// Which ClusterSession backend evaluates the farm's tasks: the discrete-
  /// event simulation (default) or a pool of real dpho_worker subprocesses.
  hpc::ClusterBackendConfig cluster_backend;
  /// Overrides cluster_backend when set (see SessionFactory above).
  SessionFactory session_factory;
  bool include_runtime_objective = false;
  std::optional<ea::Representation> representation;
  std::optional<std::filesystem::path> checkpoint_dir;
  bool resume = false;
  std::optional<std::size_t> halt_after_generation;   // generational preemption
  std::optional<std::size_t> halt_after_evaluations;  // steady-state preemption
  /// Steady state: completions between checkpoint writes (1 = every
  /// completion; checkpointing is off unless checkpoint_dir is set).
  std::size_t checkpoint_every = 1;
  std::optional<std::filesystem::path> trace_dir;
  /// Closed waves between `engine.metrics` timeline events carrying a
  /// deterministic metrics snapshot (both modes close a wave per mu
  /// completions).  0 disables periodic snapshots.
  std::size_t metrics_interval = 0;
};

class VariationPolicy;

/// Mutable state + shared services for one engine run.  SchedulePolicy
/// implementations drive this; everything an implementation would otherwise
/// duplicate (seeding, report application, record building, truncation,
/// checkpoints, traces) lives here.
struct EngineRun {
  EngineRun(const EngineConfig& config, const Evaluator& evaluator,
            const ea::Representation& genome_layout, std::uint64_t seed);

  const EngineConfig& config;
  const Evaluator& evaluator;
  const ea::Representation& genome_layout;
  std::uint64_t seed;
  std::size_t num_workers;       // resolved worker count
  std::size_t budget;            // resolved steady-state evaluation budget
  util::Rng rng;
  ea::Context context;
  std::vector<ea::Range> bounds;
  /// The cluster backend behind the session seam: SimClusterSession replays
  /// the discrete-event farm; ProcessCluster drives real worker subprocesses.
  std::unique_ptr<hpc::ClusterSession> farm;
  RunRecord record;
  std::optional<CheckpointManager> checkpoints;

  /// The wire-form of one evaluation: id, genome, deterministic per-eval
  /// seed (derive_eval_seed), and the individual's UUID.
  hpc::TaskSpec make_spec(std::size_t id, const ea::Individual& individual,
                          int wave) const;

  /// The local evaluation closure handed to the cluster session: rebuilds an
  /// Individual from a TaskSpec (evaluators read only genome + uuid) and runs
  /// the configured evaluator with the spec's seed.  The sim backend calls it
  /// inline; the process backend uses it for zero-worker degradation.
  hpc::RemoteWorkFn local_work() const;

  /// Applies a resolved task report: status, runtime, attempts (scheduler
  /// reassignments + payload retries), failure cause, and fitness (MAXINT on
  /// failure, optional runtime objective on success).
  void apply_report(ea::Individual& individual,
                    const hpc::TaskReport& task) const;

  static EvalRecord to_record(const ea::Individual& individual, int generation);

  /// Barrier evaluation of one generational wave (run_batch + trace export).
  GenerationRecord evaluate_generation(std::vector<ea::Individual*>& individuals,
                                       int generation);

  /// Ranks `pool` (rank + crowding under config.sort_backend) and truncates
  /// to population_size -- the survivor step of both modes.
  ea::Population truncate(ea::Population pool) const;

  /// Writes trace-<label>.csv and gantt-<label>.txt when trace_dir is set.
  void export_trace(const hpc::BatchReport& report, const std::string& label) const;

  /// Records a closed wave into the run-wide observability layer: counters
  /// (waves/evaluations/failures), the engine.wave timeline event, and --
  /// every config.metrics_interval waves -- an engine.metrics event carrying
  /// the deterministic metrics snapshot.
  void record_wave_metrics(const GenerationRecord& wave);

  /// The checkpoint fields common to both modes; schedule policies add their
  /// own extras before saving.
  DriverCheckpoint base_checkpoint(std::size_t completed,
                                   const ea::Population& parents) const;

  /// Final-population records + job clock + busy fraction.  `extra_minutes`
  /// covers a still-open stream session on graceful preemption.
  void finalize(const ea::Population& parents, int generation_tag,
                double extra_minutes = 0.0);
};

/// When evaluations are scheduled and survivors selected.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  virtual void run(EngineRun& run, VariationPolicy& variation) = 0;
};

/// How offspring are created and sigma annealed.  make_child is shared --
/// select-uniform, clone, Gaussian-mutate (Listing 1's variation pipeline) --
/// only the annealing hooks differ.
class VariationPolicy {
 public:
  virtual ~VariationPolicy() = default;

  /// One offspring: uniform parent selection, clone, bounded Gaussian
  /// mutation with the current sigma; birth_generation = `birth_tag`.
  ea::Individual make_child(EngineRun& run, const ea::Population& parents,
                            int birth_tag) const;

  virtual void after_birth(EngineRun& /*run*/) {}
  virtual void after_generation(EngineRun& /*run*/) {}
};

/// The paper's schedule: every wave is a barrier over population_size nodes.
class GenerationalSchedule : public SchedulePolicy {
 public:
  void run(EngineRun& run, VariationPolicy& variation) override;
};

/// Steady-state replacement: completions stream in; each frees a worker that
/// immediately receives a freshly bred offspring.
class SteadyStateSchedule : public SchedulePolicy {
 public:
  void run(EngineRun& run, VariationPolicy& variation) override;
};

/// The steady-state event loop, reentrant: start() seeds (or resumes) the
/// stream session, handle() applies exactly one completion, finish() closes
/// the run.  SteadyStateSchedule::run is the solo driver (pump stream_next
/// until dry); the dpho_sched scheduler interleaves N of these loops over one
/// shared pool, feeding each from its own mux slot -- same code path, so a
/// multiplexed run's archive matches its solo equivalent.
class SteadyStateLoop {
 public:
  SteadyStateLoop(EngineRun& run, VariationPolicy& variation);

  /// Loads the checkpoint (when configured and resume is set), re-submitting
  /// in-flight work the farm could not preserve; otherwise opens the stream
  /// and submits the initial wave (one random individual per worker).
  void start();

  /// One completion: survivor truncation, refill birth, wave close,
  /// checkpoint cadence, halt_after_evaluations preemption.
  void handle(const hpc::StreamCompletion& done);

  /// True once the loop should stop consuming completions: gracefully
  /// preempted, or nothing undelivered remains (budget exhausted).
  bool done() const;
  bool halted() const { return halted_; }
  std::size_t completions() const { return completions_; }
  std::size_t births() const { return births_; }

  /// Closes the session and finalizes run.record.  A halted loop leaves the
  /// stream open (the checkpoint is the resume point), exactly like the
  /// pre-refactor graceful-preemption path.
  void finish();

 private:
  void submit(ea::Individual individual);
  void save_checkpoint();

  EngineRun& run_;
  VariationPolicy& variation_;
  ea::Population archive_;
  std::map<std::size_t, ea::Individual> in_flight_;  // birth id -> offspring
  GenerationRecord wave_;     // the open wave (completions so far)
  std::size_t wave_index_ = 0;
  double wave_started_ = 0.0;
  std::size_t wave_node_failures_base_ = 0;
  std::size_t births_ = 0;
  std::size_t completions_ = 0;
  bool halted_ = false;
  bool finished_ = false;
};

/// Sigma x= anneal_factor after each survivor selection (section 2.2.3).
class GenerationalAnnealing : public VariationPolicy {
 public:
  void after_generation(EngineRun& run) override;
};

/// Sigma x= anneal_factor^(1/mu) after each birth, so the schedule matches
/// the generational one at equal budgets.
class PerBirthAnnealing : public VariationPolicy {
 public:
  void after_birth(EngineRun& run) override;
};

/// The unified driver: owns the config, resolves policies from the mode, and
/// produces one RunRecord per run(seed).
class EvolutionEngine {
 public:
  EvolutionEngine(EngineConfig config, const Evaluator& evaluator);

  RunRecord run(std::uint64_t seed);

  const EngineConfig& config() const { return config_; }

 private:
  EngineConfig config_;
  const Evaluator& evaluator_;
  ea::Representation genome_layout_;
};

}  // namespace dpho::core
