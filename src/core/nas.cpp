#include "core/nas.hpp"

#include <sstream>

#include "dp/trainer.hpp"
#include "ea/decoder.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dpho::core {

dp::TrainInput NasParams::apply_to(dp::TrainInput base) const {
  base.descriptor.neuron = embedding_neuron;
  // Keep the axis filter within the (possibly narrower) final embedding width.
  base.descriptor.axis_neuron =
      std::min(base.descriptor.axis_neuron, embedding_neuron.back());
  base.fitting.neuron = fitting_neuron;
  return hp.apply_to(std::move(base));
}

std::string NasParams::describe() const {
  std::ostringstream out;
  out << hp.describe() << " embed={";
  for (std::size_t i = 0; i < embedding_neuron.size(); ++i) {
    out << (i ? "," : "") << embedding_neuron[i];
  }
  out << "} fit={";
  for (std::size_t i = 0; i < fitting_neuron.size(); ++i) {
    out << (i ? "," : "") << fitting_neuron[i];
  }
  out << "}";
  return out.str();
}

NasRepresentation::NasRepresentation(NasSpace space) : space_(std::move(space)) {
  if (space_.embedding_choices.empty() || space_.fitting_choices.empty()) {
    throw util::ValueError("nas: choice lists must be non-empty");
  }
  for (const auto& widths : space_.embedding_choices) {
    if (widths.empty()) throw util::ValueError("nas: empty embedding preset");
  }
  for (const auto& widths : space_.fitting_choices) {
    if (widths.empty()) throw util::ValueError("nas: empty fitting preset");
  }
  representation_ = base_.representation();
  using Gene = ea::Representation::Gene;
  const auto n_embed = static_cast<double>(space_.embedding_choices.size());
  const auto n_fit = static_cast<double>(space_.fitting_choices.size());
  representation_.add_gene(
      Gene{"embedding_arch", {0.0, n_embed}, 0.0625, {0.0, n_embed}});
  representation_.add_gene(
      Gene{"fitting_arch", {0.0, n_fit}, 0.0625, {0.0, n_fit}});
}

NasParams NasRepresentation::decode(const std::vector<double>& genome) const {
  if (genome.size() != kNasGenomeLength) {
    throw util::ValueError("nas genome must have 9 genes");
  }
  NasParams params;
  params.hp = base_.decode(
      std::vector<double>(genome.begin(), genome.begin() + kEmbeddingArch));
  params.embedding_neuron = space_.embedding_choices[ea::categorical_index(
      genome[kEmbeddingArch], space_.embedding_choices.size())];
  params.fitting_neuron = space_.fitting_choices[ea::categorical_index(
      genome[kFittingArch], space_.fitting_choices.size())];
  return params;
}

NasRealEvaluator::NasRealEvaluator(const md::FrameDataset& train,
                                   const md::FrameDataset& validation,
                                   RealEvalOptions options, NasSpace space)
    : train_(train), validation_(validation), options_(std::move(options)),
      representation_(std::move(space)) {}

EvalOutcome NasRealEvaluator::evaluate(const ea::Individual& individual,
                                       std::uint64_t eval_seed) const {
  try {
    const NasParams params = representation_.decode(individual.genome);
    dp::TrainInput input = params.apply_to(options_.base);
    input.training.seed = eval_seed;
    dp::TrainerOptions trainer_options;
    trainer_options.wall_limit_seconds = options_.wall_limit_seconds;
    trainer_options.num_threads = options_.trainer_num_threads;
    trainer_options.pool = options_.trainer_pool;
    dp::Trainer trainer(input, train_, validation_, trainer_options);
    const dp::TrainResult train_result = trainer.train();
    return EvalOutcome::success(
        {train_result.rmse_e_val, train_result.rmse_f_val},
        train_result.wall_seconds * options_.sim_minutes_per_real_second);
  } catch (const util::TimeoutError&) {
    return EvalOutcome::failure(FailureCause::kWallLimit, 1e9);
  } catch (const std::exception& e) {
    util::log_info() << "nas evaluation failed: " << e.what();
    return EvalOutcome::failure(FailureCause::kException, 1.0);
  }
}

}  // namespace dpho::core
