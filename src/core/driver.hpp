// The paper's NSGA-II deployment: LEAP-style pipeline + Dask farm + annealing.
//
// One generation reproduces Listing 1:
//   offspring = pipe(parents, random_selection, clone,
//                    mutate_gaussian(std=context['std'], isotropic,
//                                    hard_bounds=representation.bounds),
//                    eval_pool(farm, size=len(parents)),
//                    rank_ordinal_sort(parents=parents),
//                    crowding_distance_calc,
//                    truncation_selection(size=len(parents),
//                                         key=(-rank, distance)))
// after which context['std'] is multiplied by the annealing factor (0.85,
// section 2.2.3; the 1/5 success rule is deliberately not used).  Evaluation
// failures receive MAXINT fitnesses (section 2.2.4).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "core/deepmd_repr.hpp"
#include "core/evaluator.hpp"
#include "ea/context.hpp"
#include "ea/ops.hpp"
#include "hpc/cluster_factory.hpp"
#include "hpc/taskfarm.hpp"
#include "moo/nsga2.hpp"

namespace dpho::core {

/// How the EvolutionEngine schedules evaluations: generational barriers (the
/// paper's deployment) or asynchronous steady-state replacement.
enum class ScheduleMode : std::uint8_t {
  kGenerational = 0,
  kSteadyState,
};

std::string to_string(ScheduleMode mode);
ScheduleMode schedule_mode_from_string(const std::string& name);

/// Snapshot of one evaluated individual, for the analysis layer.
struct EvalRecord {
  std::vector<double> genome;
  std::vector<double> fitness;   // {rmse_e, rmse_f}; MAXINT on failure
  double runtime_minutes = 0.0;
  ea::EvalStatus status = ea::EvalStatus::kOk;
  std::size_t attempts = 1;            // farm reassignments + payload retries
  std::string failure_cause = "none";  // hpc FailureCause name
  int generation = 0;
  std::string uuid;
};

/// Per-generation accounting.
struct GenerationRecord {
  int generation = 0;
  std::vector<EvalRecord> evaluated;  // the individuals scored this generation
  double makespan_minutes = 0.0;
  std::size_t failures = 0;           // non-ok evaluations
  std::size_t node_failures = 0;      // nodes lost to injection
  std::vector<double> mutation_std;   // sigma vector in force at this generation
};

/// One full EA deployment ("one Summit job"), in either schedule mode.  In
/// steady-state mode a "generation" is a wave of `population_size`
/// completions in delivery order (the budget's remainder forms a short final
/// wave), so the analysis layer reads both modes identically.
struct RunRecord {
  std::uint64_t seed = 0;
  ScheduleMode mode = ScheduleMode::kGenerational;
  std::vector<GenerationRecord> generations;   // index 0 = initial population
  std::vector<EvalRecord> final_population;    // parents after the last selection
  double job_minutes = 0.0;                    // total simulated wall clock
  double busy_fraction = 0.0;                  // mean worker utilization in [0,1]

  /// All evaluations across every generation, in completion order.
  std::vector<EvalRecord> all_evaluations() const;
  std::size_t total_evaluations() const;
  std::size_t total_failures() const;
};

/// Driver configuration (defaults = the paper's setup).
struct DriverConfig {
  std::size_t population_size = 100;   // == nodes allocated
  std::size_t generations = 6;         // beyond generation 0 (7 waves total)
  double anneal_factor = 0.85;
  moo::SortBackend sort_backend = moo::SortBackend::kRankOrdinal;
  hpc::ClusterSpec cluster = hpc::ClusterSpec::summit();
  hpc::FarmConfig farm;                // farm.job.nodes synced to population
  /// Cluster backend: simulated farm (default) or real worker subprocesses.
  hpc::ClusterBackendConfig cluster_backend;
  bool anneal_enabled = true;          // ablation hook
  /// Adds the simulated training runtime (minutes) as a third minimized
  /// objective -- the "optimization of time to solution" the paper notes its
  /// scheme also provides (section 1; unnecessary for their dataset since
  /// all runtimes stayed below 80 minutes, but supported here).
  bool include_runtime_objective = false;
  /// Genome layout override; empty -> the paper's 7-gene DeepMD
  /// representation.  Extensions (e.g. the NAS genome) supply their own; the
  /// evaluator must decode matching genomes.
  std::optional<ea::Representation> representation;
  /// When set, the full EA state is persisted atomically after every
  /// generation so an interrupted run can be resumed.
  std::optional<std::filesystem::path> checkpoint_dir;
  /// Resume from the latest valid checkpoint in `checkpoint_dir` (no-op when
  /// the directory holds none); the resumed run's RunRecord is bit-identical
  /// to an uninterrupted run with the same seed and configuration.
  bool resume = false;
  /// Stop (gracefully) after completing + checkpointing this generation
  /// index; models batch-scheduler preemption and drives the resume tests.
  std::optional<std::size_t> halt_after_generation;
  /// When set, per-batch schedule traces (trace-*.csv + gantt-*.txt) are
  /// written here via hpc::trace_csv / hpc::gantt_art.
  std::optional<std::filesystem::path> trace_dir;
  /// Closed waves between engine.metrics timeline snapshots (0 = off).
  std::size_t metrics_interval = 0;
};

/// NSGA-II over the DeepMD representation with parallel farmed evaluation.
/// Thin facade over core::EvolutionEngine in generational mode (engine.hpp);
/// the submit/retry/record/checkpoint machinery lives there.
class Nsga2Driver {
 public:
  Nsga2Driver(DriverConfig config, const Evaluator& evaluator);

  /// Runs one full deployment with the given seed.
  RunRecord run(std::uint64_t seed);

 private:
  DriverConfig config_;
  const Evaluator& evaluator_;
};

}  // namespace dpho::core
