#include "core/hyperparams.hpp"

#include <cstdio>

#include "util/csv.hpp"

namespace dpho::core {

dp::TrainInput HyperParams::apply_to(dp::TrainInput base) const {
  base.learning_rate.start_lr = start_lr;
  base.learning_rate.stop_lr = stop_lr;
  base.learning_rate.scale_by_worker = scale_by_worker;
  base.descriptor.rcut = rcut;
  base.descriptor.rcut_smth = rcut_smth;
  base.descriptor.activation = desc_activ_func;
  base.fitting.activation = fitting_activ_func;
  base.validate();
  return base;
}

std::string HyperParams::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "start_lr=%.4g stop_lr=%.4g rcut=%.2f rcut_smth=%.2f scale=%s "
                "desc=%s fit=%s",
                start_lr, stop_lr, rcut, rcut_smth,
                nn::to_string(scale_by_worker).c_str(),
                nn::to_string(desc_activ_func).c_str(),
                nn::to_string(fitting_activ_func).c_str());
  return buf;
}

std::map<std::string, std::string> HyperParams::template_variables() const {
  return {
      {"start_lr", util::CsvWriter::format(start_lr)},
      {"stop_lr", util::CsvWriter::format(stop_lr)},
      {"rcut", util::CsvWriter::format(rcut)},
      {"rcut_smth", util::CsvWriter::format(rcut_smth)},
      {"scale_by_worker", nn::to_string(scale_by_worker)},
      {"desc_activ_func", nn::to_string(desc_activ_func)},
      {"fitting_activ_func", nn::to_string(fitting_activ_func)},
  };
}

}  // namespace dpho::core
