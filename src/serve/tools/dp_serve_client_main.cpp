// dp_serve_client: load generator and correctness probe for dp_serve.
//
//   dp_serve_client --port P [--model ID] [--batch N] [--requests N]
//                   [--forces] [--box L] [--seed S] [--quiet]
//                   [--expect-error CODE] [--partial-frame]
//
// Connects to the daemon on loopback, fetches the catalog (to learn the atom
// count and, without --model, pick the first served model), then fires
// --requests eval requests of --batch random frames each and validates every
// reply: matching ids, one energy per frame, finite values, and force arrays
// of the right shape when --forces is set.  Prints a throughput/latency
// summary and exits 0 only when every reply was a well-formed result.
//
// Chaos hooks for the e2e tests: --expect-error asserts that the daemon
// answers with that error code (exit 0 when it does); --partial-frame writes
// a truncated frame (length prefix promising more bytes than are sent) and
// disconnects, exercising the daemon's mid-frame disconnect handling.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "hpc/net/frame.hpp"
#include "serve/protocol.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace dpho;

md::Frame random_frame(util::Rng& rng, std::size_t atoms, double box) {
  md::Frame frame;
  frame.box_length = box;
  frame.positions.resize(atoms);
  for (md::Vec3& p : frame.positions) {
    p = {rng.uniform(0.0, box), rng.uniform(0.0, box), rng.uniform(0.0, box)};
  }
  return frame;
}

/// One blocking request/reply exchange; throws util errors on transport or
/// decode failure.
util::Json exchange(int fd, const util::Json& request) {
  if (!hpc::net::write_frame(fd, request.dump())) {
    throw util::IoError("dp_serve_client: daemon closed the connection");
  }
  const std::optional<std::string> reply = hpc::net::read_frame(fd);
  if (!reply) {
    throw util::IoError("dp_serve_client: connection lost awaiting the reply");
  }
  return util::Json::parse(*reply);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_flag("--port", "daemon port (required)")
      .add_flag("--model", "archive id to evaluate (default: first served)")
      .add_flag("--batch", "frames per request, default 4")
      .add_flag("--requests", "number of requests, default 8")
      .add_flag("--forces", "request forces too", false)
      .add_flag("--box", "cubic box edge for generated frames, default 7.0")
      .add_flag("--seed", "frame generator seed, default 1")
      .add_flag("--quiet", "suppress the summary line", false)
      .add_flag("--expect-error", "assert the daemon replies with this error code")
      .add_flag("--partial-frame", "send a truncated frame and disconnect", false)
      .add_flag("--help", "show this message", false);
  const std::string usage_text = args.usage("dp_serve_client --port P");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dp_serve_client: %s\n%s", e.what(), usage_text.c_str());
    return 2;
  }
  if (args.has("--help")) {
    std::fputs(usage_text.c_str(), stdout);
    return 0;
  }
  if (!args.has("--port")) {
    std::fputs(usage_text.c_str(), stderr);
    return 2;
  }

  const auto port = static_cast<std::uint16_t>(args.get("--port", std::int64_t{0}));
  const auto batch = static_cast<std::size_t>(args.get("--batch", std::int64_t{4}));
  const auto requests =
      static_cast<std::size_t>(args.get("--requests", std::int64_t{8}));
  const bool want_forces = args.has("--forces");
  const double box = args.get("--box", 7.0);
  const bool quiet = args.has("--quiet");

  try {
    const int fd = hpc::net::connect_loopback(port);

    if (args.has("--partial-frame")) {
      // A length prefix promising 64 bytes, followed by only 8 -- then gone.
      const char prefix[4] = {0, 0, 0, 64};
      const char stub[8] = {'{', '"', 't', '"', ':', '"', 'e', 'v'};
      (void)::write(fd, prefix, sizeof(prefix));
      (void)::write(fd, stub, sizeof(stub));
      ::close(fd);
      if (!quiet) std::printf("dp_serve_client: sent partial frame and closed\n");
      return 0;
    }

    const std::vector<serve::CatalogModel> catalog =
        serve::decode_catalog_reply(exchange(fd, serve::encode_catalog_request(1)));
    if (catalog.empty()) {
      std::fprintf(stderr, "dp_serve_client: daemon serves no models\n");
      return 1;
    }
    const std::string model = args.get("--model", catalog.front().id);
    std::size_t atoms = 0;
    for (const serve::CatalogModel& entry : catalog) {
      if (entry.id == model) atoms = entry.num_atoms;
    }
    if (atoms == 0) atoms = catalog.front().num_atoms;  // daemon will refuse

    util::Rng rng(static_cast<std::uint64_t>(args.get("--seed", std::int64_t{1})));
    std::size_t ok = 0;
    std::size_t errors = 0;
    double total_latency = 0.0;
    const auto started = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < requests; ++r) {
      serve::EvalRequest request;
      request.id = r + 1;
      request.model = model;
      request.want_forces = want_forces;
      request.frames.reserve(batch);
      for (std::size_t f = 0; f < batch; ++f) {
        request.frames.push_back(random_frame(rng, atoms, box));
      }
      const auto sent = std::chrono::steady_clock::now();
      const util::Json reply = exchange(fd, serve::encode_eval_request(request));
      total_latency +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - sent)
              .count();
      if (serve::message_type(reply) == serve::kMsgError) {
        const serve::ErrorReply error = serve::decode_error(reply);
        if (args.has("--expect-error") &&
            serve::to_string(error.code) ==
                args.get("--expect-error", std::string())) {
          if (!quiet) {
            std::printf("dp_serve_client: got expected error %s\n",
                        serve::to_string(error.code).c_str());
          }
          ::close(fd);
          return 0;
        }
        std::fprintf(stderr, "dp_serve_client: request %zu failed: %s (%s)\n",
                     r + 1, error.message.c_str(),
                     serve::to_string(error.code).c_str());
        ++errors;
        continue;
      }
      const serve::EvalReply result = serve::decode_eval_reply(reply);
      bool valid = result.id == request.id && result.model == model &&
                   result.energies.size() == batch &&
                   (!want_forces || result.forces.size() == batch);
      for (const double energy : result.energies) {
        valid = valid && std::isfinite(energy);
      }
      for (const std::vector<double>& forces : result.forces) {
        valid = valid && forces.size() == atoms * 3;
      }
      if (valid) {
        ++ok;
      } else {
        std::fprintf(stderr, "dp_serve_client: request %zu reply malformed\n",
                     r + 1);
        ++errors;
      }
    }
    ::close(fd);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    if (!quiet) {
      std::printf(
          "dp_serve_client: %zu/%zu ok, %zu error(s), %.0f frames/s,"
          " %.3f ms mean latency\n",
          ok, requests, errors,
          static_cast<double>(ok * batch) / std::max(elapsed, 1e-9),
          1e3 * total_latency / static_cast<double>(std::max<std::size_t>(1, requests)));
    }
    if (args.has("--expect-error")) {
      std::fprintf(stderr, "dp_serve_client: expected error %s never arrived\n",
                   args.get("--expect-error", std::string()).c_str());
      return 1;
    }
    return errors == 0 && ok == requests ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dp_serve_client: %s\n", e.what());
    return 1;
  }
}
