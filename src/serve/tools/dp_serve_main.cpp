// dp_serve: batched inference daemon for archived Pareto-front potentials.
//
//   dp_serve <archive_dir> [--select EXPR] [--cache N] [--max-queue N]
//            [--max-frame-bytes N] [--port-file FILE] [--debug-delay S]
//            [--threads N] [--metrics-out FILE] [--metrics-interval N]
//
// Loads the dp::ModelArchive at <archive_dir>, serves the models matched by
// --select (ModelArchive::select grammar: "all", "rank=0", "rmse_f_val<=0.2",
// or a comma list of ids/indices) on an ephemeral loopback port, and answers
// batched energy/force requests over the hpc::net frame protocol (see
// serve/protocol.hpp).  The port is printed on stdout and, with --port-file,
// written to a file clients can poll.
//
// SIGTERM/SIGINT trigger a graceful drain: the listener closes, queued and
// in-flight requests still get their replies, then the daemon exits 0.
// --metrics-out streams the serve.* event timeline and writes
// metrics_summary.json next to it on exit.
// --debug-delay holds every request for S seconds in the worker -- the chaos
// harness uses it to land signals while a request is provably in flight.
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/fs.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace dpho;
  util::ArgParser args;
  args.add_flag("--select", "which models to serve (default all)")
      .add_flag("--cache", "resident model cache capacity, default 4")
      .add_flag("--max-queue", "queued requests before overload replies, default 64")
      .add_flag("--max-frame-bytes", "per-connection frame cap, default 16 MiB")
      .add_flag("--port-file", "write the bound port number to this file")
      .add_flag("--debug-delay", "hold each request this many seconds (chaos hook)")
      .add_flag("--help", "show this message", false);
  const util::BackendFlagOptions backend_options{.cluster = false,
                                                 .default_threads = 2};
  util::add_backend_flags(args, backend_options);
  const std::string usage_text = args.usage("dp_serve <archive_dir>");

  serve::ServerOptions options;
  util::BackendFlags backend;
  try {
    args.parse(argc, argv);
    backend = util::parse_backend_flags(args, backend_options);
    options.cache_capacity =
        static_cast<std::size_t>(args.get("--cache", std::int64_t{4}));
    options.max_queue =
        static_cast<std::size_t>(args.get("--max-queue", std::int64_t{64}));
    options.max_frame_bytes = static_cast<std::uint32_t>(args.get(
        "--max-frame-bytes",
        static_cast<std::int64_t>(hpc::net::kMaxFramePayload)));
    options.debug_delay_seconds = args.get("--debug-delay", 0.0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dp_serve: %s\n%s", e.what(), usage_text.c_str());
    return 2;
  }
  if (args.has("--help")) {
    std::fputs(usage_text.c_str(), stdout);
    return 0;
  }
  if (args.positional().size() != 1) {
    std::fputs(usage_text.c_str(), stderr);
    return 2;
  }
  options.archive_dir = args.positional()[0];
  options.selector = args.get("--select", std::string("all"));
  options.threads = backend.threads;

  if (!backend.metrics_out.empty()) {
    try {
      obs::events().open(backend.metrics_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dp_serve: --metrics-out: %s\n", e.what());
      return 2;
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    serve::Server server(std::move(options));
    server.start();
    std::printf("dp_serve: serving %zu model(s) on 127.0.0.1:%u\n",
                server.catalog().size(), server.port());
    std::fflush(stdout);
    if (args.has("--port-file")) {
      util::atomic_write_file(args.get("--port-file", std::string()),
                              std::to_string(server.port()) + "\n");
    }
    while (g_shutdown == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::printf("dp_serve: draining\n");
    std::fflush(stdout);
    server.request_drain();
    server.wait();
    server.stop();
    std::printf("dp_serve: served %llu request(s)\n",
                static_cast<unsigned long long>(server.requests_served()));
    if (!backend.metrics_out.empty()) {
      const std::filesystem::path summary =
          std::filesystem::path(backend.metrics_out).parent_path() /
          "metrics_summary.json";
      util::write_file(summary, obs::metrics().to_json().dump(2) + "\n");
      obs::events().close();
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dp_serve: %s\n", e.what());
    return 1;
  }
}
