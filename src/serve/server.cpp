#include "serve/server.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dpho::serve {

namespace {

/// Batch-size distribution in the deterministic section: the layout is part
/// of the metric's identity, so every registrant must agree on it.
obs::Histogram& batch_histogram() {
  return obs::metrics().histogram("serve.batch_frames",
                                  obs::BucketLayout::exponential(1.0, 2.0, 10),
                                  obs::Section::kDeterministic);
}

void record_timing(const char* name, double seconds) {
  obs::metrics()
      .histogram(name, obs::BucketLayout::timing_seconds(), obs::Section::kTiming)
      .record(seconds);
}

}  // namespace

Server::Connection::~Connection() { ::close(fd); }

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      archive_(dp::ModelArchive::open(options_.archive_dir)),
      cache_(archive_, options_.cache_capacity) {
  if (options_.max_queue == 0) {
    throw util::ValueError("serve: max_queue must be >= 1");
  }
  options_.threads = std::max<std::size_t>(1, options_.threads);
  for (const std::string& id : archive_.select(options_.selector)) {
    const dp::ArchiveEntry& entry = archive_.at(id);
    served_[id] = entry.num_atoms;
    CatalogModel model;
    model.id = entry.id;
    model.rank = entry.rank;
    model.num_atoms = entry.num_atoms;
    model.spec = entry.spec.describe();
    model.objectives = entry.objectives;
    catalog_.push_back(std::move(model));
  }
}

Server::~Server() { stop(); }

void Server::start() {
  listener_.open();
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread(&Server::io_loop, this);
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }
  obs::events().emit("serve.start", {{"port", std::size_t{listener_.port()}},
                                     {"models", catalog_.size()},
                                     {"threads", options_.threads}});
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  obs::events().emit("serve.drain", {});
}

void Server::wait() {
  std::unique_lock lock(queue_mutex_);
  drained_cv_.wait(lock, [&] {
    return drain_complete_ || stopped_.load(std::memory_order_acquire);
  });
}

void Server::stop() {
  if (stop_called_.exchange(true)) {
    // A second caller still blocks until the first finished tearing down.
    wait();
    return;
  }
  running_.store(false, std::memory_order_release);
  queue_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Threads are gone; connection fds close as the last shared_ptrs drop.
  for (auto& [fd, connection] : connections_) {
    connection->alive.store(false, std::memory_order_release);
  }
  connections_.clear();
  listener_.close();
  {
    const std::scoped_lock lock(queue_mutex_);
    queue_.clear();
  }
  obs::events().emit("serve.stop",
                     {{"served", requests_served_.load(std::memory_order_relaxed)}});
  stopped_.store(true, std::memory_order_release);
  drained_cv_.notify_all();
}

bool Server::idle() const {
  return queue_.empty() && in_flight_ == 0;  // caller holds queue_mutex_
}

void Server::io_loop() {
  while (running_.load(std::memory_order_acquire)) {
    if (draining_.load(std::memory_order_acquire) && listener_.is_open()) {
      listener_.close();  // no new connections during a drain
    }

    std::vector<::pollfd> fds;
    fds.reserve(connections_.size() + 1);
    if (listener_.is_open()) {
      fds.push_back({listener_.fd(), POLLIN, 0});
    }
    for (const auto& [fd, connection] : connections_) {
      fds.push_back({fd, POLLIN, 0});
    }
    // Short timeout so stop/drain flags are observed promptly even when no
    // client traffic arrives.
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);

    if (listener_.is_open()) accept_pending();

    std::vector<int> dropped;
    for (const auto& [fd, connection] : connections_) {
      if (!service_connection(connection)) dropped.push_back(fd);
    }
    for (const int fd : dropped) {
      connections_.at(fd)->alive.store(false, std::memory_order_release);
      connections_.erase(fd);
    }
    if (!dropped.empty()) {
      obs::metrics().gauge("serve.connections_active")
          .set(static_cast<double>(connections_.size()));
    }

    if (draining_.load(std::memory_order_acquire)) {
      const std::scoped_lock lock(queue_mutex_);
      if (idle()) break;
    }
  }
  {
    const std::scoped_lock lock(queue_mutex_);
    drain_complete_ = true;
  }
  drained_cv_.notify_all();
}

void Server::accept_pending() {
  while (true) {
    const int fd = listener_.accept_nonblocking();
    if (fd < 0) break;
    connections_.emplace(
        fd, std::make_shared<Connection>(fd, options_.max_frame_bytes));
    obs::metrics().counter("serve.connections").add();
    obs::metrics().gauge("serve.connections_active")
        .set(static_cast<double>(connections_.size()));
  }
}

bool Server::service_connection(const std::shared_ptr<Connection>& connection) {
  const bool open = connection->reader.drain(connection->fd);
  while (std::optional<std::string> frame = connection->reader.next()) {
    handle_frame(connection, *frame);
  }
  if (open) return true;
  switch (connection->reader.error()) {
    case hpc::net::FrameError::kOversized:
      obs::metrics().counter("serve.oversized").add();
      send_error(connection, 0, ErrorCode::kTooLarge,
                 "declared frame of " +
                     std::to_string(connection->reader.oversized_length()) +
                     " bytes exceeds the " +
                     std::to_string(options_.max_frame_bytes) + "-byte cap");
      break;
    case hpc::net::FrameError::kClosed:
    case hpc::net::FrameError::kReset:
      obs::metrics().counter("serve.disconnects").add();
      obs::events().emit("serve.disconnect",
                         {{"error", to_string(connection->reader.error())}});
      break;
    case hpc::net::FrameError::kNone:
      break;
  }
  return false;
}

void Server::handle_frame(const std::shared_ptr<Connection>& connection,
                          const std::string& payload) {
  util::Json message;
  try {
    message = util::Json::parse(payload);
  } catch (const std::exception& e) {
    send_error(connection, 0, ErrorCode::kBadRequest,
               std::string("malformed JSON: ") + e.what());
    return;
  }
  std::string type;
  try {
    type = message_type(message);
  } catch (const std::exception& e) {
    send_error(connection, 0, ErrorCode::kBadRequest, e.what());
    return;
  }
  const auto id = static_cast<std::uint64_t>(
      std::max(0.0, message.number_or("id", 0.0)));
  if (type == kMsgCatalog) {
    send(connection, encode_catalog_reply(id, catalog_));
    return;
  }
  if (type != kMsgEval) {
    send_error(connection, id, ErrorCode::kBadRequest,
               "unknown message type " + type);
    return;
  }
  // Batch ceiling first, so the refusal is typed too_large (not the generic
  // bad_request the decoder's ValueError would collapse it into).
  if (message.contains("frames") && message.at("frames").is_array() &&
      message.at("frames").as_array().size() > kMaxBatchFrames) {
    send_error(connection, id, ErrorCode::kTooLarge,
               "batch of " +
                   std::to_string(message.at("frames").as_array().size()) +
                   " frames exceeds " + std::to_string(kMaxBatchFrames));
    return;
  }
  EvalRequest request;
  try {
    request = decode_eval_request(message);
  } catch (const std::exception& e) {
    send_error(connection, id, ErrorCode::kBadRequest, e.what());
    return;
  }
  handle_eval(connection, std::move(request));
}

void Server::handle_eval(const std::shared_ptr<Connection>& connection,
                         EvalRequest request) {
  const auto served = served_.find(request.model);
  if (served == served_.end()) {
    send_error(connection, request.id, ErrorCode::kUnknownModel,
               "model " + request.model + " is not served");
    return;
  }
  for (const md::Frame& frame : request.frames) {
    if (frame.positions.size() != served->second) {
      send_error(connection, request.id, ErrorCode::kBadRequest,
                 "frame holds " + std::to_string(frame.positions.size()) +
                     " atoms; model " + request.model + " expects " +
                     std::to_string(served->second));
      return;
    }
  }
  const std::size_t batch = request.frames.size();
  const std::uint64_t id = request.id;
  const std::string model = request.model;
  {
    const std::scoped_lock lock(queue_mutex_);
    if (draining_.load(std::memory_order_acquire) ||
        queue_.size() >= options_.max_queue) {
      obs::metrics().counter("serve.overload").add();
      send_error(connection, id, ErrorCode::kOverloaded,
                 draining_.load(std::memory_order_acquire)
                     ? "daemon is draining"
                     : "request queue is full");
      return;
    }
    queue_.push_back(Job{connection, std::move(request),
                         std::chrono::steady_clock::now()});
    obs::metrics().gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  obs::metrics().counter("serve.requests").add();
  obs::metrics().counter("serve.frames").add(static_cast<std::int64_t>(batch));
  batch_histogram().record(static_cast<double>(batch));
  obs::events().emit("serve.request",
                     {{"id", id}, {"model", model}, {"frames", batch}});
}

void Server::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return !queue_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (!running_.load(std::memory_order_acquire)) return;  // hard stop
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      obs::metrics().gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    process(std::move(job));
    {
      const std::scoped_lock lock(queue_mutex_);
      --in_flight_;
      if (idle()) drained_cv_.notify_all();
    }
  }
}

void Server::process(Job job) {
  const auto started = std::chrono::steady_clock::now();
  record_timing("serve.queue_wait_seconds",
                std::chrono::duration<double>(started - job.enqueued).count());
  if (options_.debug_delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.debug_delay_seconds));
  }
  try {
    const std::shared_ptr<const dp::Potential> potential =
        cache_.get(job.request.model);
    EvalReply reply;
    reply.id = job.request.id;
    reply.model = job.request.model;
    reply.energies.reserve(job.request.frames.size());
    for (const md::Frame& frame : job.request.frames) {
      const md::ForceEnergy result = potential->evaluate(frame);
      reply.energies.push_back(result.energy);
      if (job.request.want_forces) {
        std::vector<double> flat;
        flat.reserve(result.forces.size() * 3);
        for (const md::Vec3& f : result.forces) {
          flat.push_back(f[0]);
          flat.push_back(f[1]);
          flat.push_back(f[2]);
        }
        reply.forces.push_back(std::move(flat));
      }
    }
    // Count before the write hits the wire: a client that has its reply in
    // hand must never observe a requests_served() that excludes it.
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("serve.replies").add();
    send(job.connection, encode_eval_reply(reply));
    record_timing("serve.request_seconds",
                  std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                job.enqueued)
                      .count());
    obs::events().emit("serve.reply", {{"id", job.request.id},
                                       {"model", job.request.model},
                                       {"frames", reply.energies.size()}});
  } catch (const std::exception& e) {
    send_error(job.connection, job.request.id, ErrorCode::kInternal, e.what());
  }
}

void Server::send_error(const std::shared_ptr<Connection>& connection,
                        std::uint64_t id, ErrorCode code,
                        const std::string& message) {
  obs::metrics().counter("serve.errors").add();
  obs::metrics().counter("serve.errors." + to_string(code)).add();
  obs::events().emit("serve.error",
                     {{"id", id}, {"code", to_string(code)}, {"message", message}});
  send(connection, encode_error(ErrorReply{id, code, message}));
}

void Server::send(const std::shared_ptr<Connection>& connection,
                  const util::Json& message) {
  const std::scoped_lock lock(connection->write_mutex);
  if (!connection->alive.load(std::memory_order_acquire)) return;
  // A false return means the peer vanished mid-reply; the reader side will
  // observe the close on the next drain and retire the connection.
  try {
    hpc::net::write_frame(connection->fd, message.dump());
  } catch (const util::IoError&) {
    // The IO thread owns connection teardown; nothing to do here.
  }
}

}  // namespace dpho::serve
