#include "serve/protocol.hpp"

#include "util/error.hpp"

namespace dpho::serve {

namespace {

/// A non-negative integer field (ids, counts); throws ParseError when the
/// field is missing or not a number, ValueError when negative.
std::uint64_t uint_field(const util::Json& message, const std::string& key) {
  if (!message.contains(key) || !message.at(key).is_number()) {
    throw util::ParseError("serve message: missing numeric field " + key);
  }
  const double value = message.at(key).as_number();
  if (value < 0.0) {
    throw util::ValueError("serve message: field " + key + " must be >= 0");
  }
  return static_cast<std::uint64_t>(value);
}

const std::string& string_field(const util::Json& message, const std::string& key) {
  if (!message.contains(key) || !message.at(key).is_string()) {
    throw util::ParseError("serve message: missing string field " + key);
  }
  return message.at(key).as_string();
}

const util::JsonArray& array_field(const util::Json& message,
                                   const std::string& key) {
  if (!message.contains(key) || !message.at(key).is_array()) {
    throw util::ParseError("serve message: missing array field " + key);
  }
  return message.at(key).as_array();
}

/// Flat [x0,y0,z0,x1,...] triplet list -> Vec3s; validates every element.
std::vector<md::Vec3> decode_triplets(const util::Json& flat,
                                      const std::string& what) {
  if (!flat.is_array()) {
    throw util::ParseError("serve message: " + what + " must be an array");
  }
  const util::JsonArray& values = flat.as_array();
  if (values.empty() || values.size() % 3 != 0) {
    throw util::ValueError("serve message: " + what +
                           " length must be a positive multiple of 3, got " +
                           std::to_string(values.size()));
  }
  std::vector<md::Vec3> out(values.size() / 3);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!values[i].is_number()) {
      throw util::ParseError("serve message: " + what + " holds a non-number");
    }
    out[i / 3][i % 3] = values[i].as_number();
  }
  return out;
}

util::Json encode_triplets(const std::vector<md::Vec3>& vectors) {
  util::JsonArray flat;
  flat.reserve(vectors.size() * 3);
  for (const md::Vec3& v : vectors) {
    flat.emplace_back(v[0]);
    flat.emplace_back(v[1]);
    flat.emplace_back(v[2]);
  }
  return flat;
}

void expect_type(const util::Json& message, const char* tag) {
  if (message_type(message) != tag) {
    throw util::ParseError("serve message: expected t=" + std::string(tag) +
                           ", got t=" + message_type(message));
  }
}

}  // namespace

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownModel: return "unknown_model";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ErrorCode error_code_from_string(const std::string& name) {
  if (name == "overloaded") return ErrorCode::kOverloaded;
  if (name == "bad_request") return ErrorCode::kBadRequest;
  if (name == "unknown_model") return ErrorCode::kUnknownModel;
  if (name == "too_large") return ErrorCode::kTooLarge;
  if (name == "internal") return ErrorCode::kInternal;
  throw util::ValueError("serve message: unknown error code " + name);
}

std::string message_type(const util::Json& message) {
  if (!message.is_object() || !message.contains("t") ||
      !message.at("t").is_string()) {
    throw util::ParseError("serve message: missing \"t\" tag");
  }
  return message.at("t").as_string();
}

util::Json encode_eval_request(const EvalRequest& request) {
  util::Json message;
  message["t"] = kMsgEval;
  message["id"] = request.id;
  message["model"] = request.model;
  message["forces"] = request.want_forces;
  util::JsonArray frames;
  frames.reserve(request.frames.size());
  for (const md::Frame& frame : request.frames) {
    util::Json entry;
    entry["box"] = frame.box_length;
    entry["coords"] = encode_triplets(frame.positions);
    frames.push_back(std::move(entry));
  }
  message["frames"] = std::move(frames);
  return message;
}

EvalRequest decode_eval_request(const util::Json& message) {
  expect_type(message, kMsgEval);
  EvalRequest request;
  request.id = uint_field(message, "id");
  request.model = string_field(message, "model");
  if (message.contains("forces")) {
    if (!message.at("forces").is_bool()) {
      throw util::ParseError("serve message: forces must be a bool");
    }
    request.want_forces = message.at("forces").as_bool();
  }
  const util::JsonArray& frames = array_field(message, "frames");
  if (frames.empty()) {
    throw util::ValueError("serve message: eval request holds no frames");
  }
  if (frames.size() > kMaxBatchFrames) {
    throw util::ValueError("serve message: batch of " +
                           std::to_string(frames.size()) + " frames exceeds " +
                           std::to_string(kMaxBatchFrames));
  }
  request.frames.reserve(frames.size());
  for (const util::Json& entry : frames) {
    if (!entry.is_object()) {
      throw util::ParseError("serve message: frame must be an object");
    }
    md::Frame frame;
    if (!entry.contains("box") || !entry.at("box").is_number()) {
      throw util::ParseError("serve message: frame missing numeric box");
    }
    frame.box_length = entry.at("box").as_number();
    if (frame.box_length <= 0.0) {
      throw util::ValueError("serve message: frame box must be positive");
    }
    frame.positions = decode_triplets(entry.at("coords"), "coords");
    request.frames.push_back(std::move(frame));
  }
  return request;
}

util::Json encode_eval_reply(const EvalReply& reply) {
  util::Json message;
  message["t"] = kMsgResult;
  message["id"] = reply.id;
  message["model"] = reply.model;
  util::JsonArray energies;
  energies.reserve(reply.energies.size());
  for (const double energy : reply.energies) energies.emplace_back(energy);
  message["energies"] = std::move(energies);
  if (!reply.forces.empty()) {
    util::JsonArray forces;
    forces.reserve(reply.forces.size());
    for (const std::vector<double>& frame_forces : reply.forces) {
      util::JsonArray flat;
      flat.reserve(frame_forces.size());
      for (const double f : frame_forces) flat.emplace_back(f);
      forces.push_back(std::move(flat));
    }
    message["forces"] = std::move(forces);
  }
  return message;
}

EvalReply decode_eval_reply(const util::Json& message) {
  expect_type(message, kMsgResult);
  EvalReply reply;
  reply.id = uint_field(message, "id");
  reply.model = string_field(message, "model");
  for (const util::Json& energy : array_field(message, "energies")) {
    if (!energy.is_number()) {
      throw util::ParseError("serve message: energies holds a non-number");
    }
    reply.energies.push_back(energy.as_number());
  }
  if (message.contains("forces")) {
    const util::JsonArray& frames = array_field(message, "forces");
    if (frames.size() != reply.energies.size()) {
      throw util::ValueError("serve message: forces/energies length mismatch");
    }
    reply.forces.reserve(frames.size());
    for (const util::Json& flat : frames) {
      if (!flat.is_array()) {
        throw util::ParseError("serve message: per-frame forces must be an array");
      }
      std::vector<double> frame_forces;
      frame_forces.reserve(flat.as_array().size());
      for (const util::Json& f : flat.as_array()) {
        if (!f.is_number()) {
          throw util::ParseError("serve message: forces holds a non-number");
        }
        frame_forces.push_back(f.as_number());
      }
      if (frame_forces.empty() || frame_forces.size() % 3 != 0) {
        throw util::ValueError(
            "serve message: per-frame forces length must be a positive"
            " multiple of 3");
      }
      reply.forces.push_back(std::move(frame_forces));
    }
  }
  return reply;
}

util::Json encode_error(const ErrorReply& error) {
  util::Json message;
  message["t"] = kMsgError;
  message["id"] = error.id;
  message["code"] = to_string(error.code);
  message["message"] = error.message;
  return message;
}

ErrorReply decode_error(const util::Json& message) {
  expect_type(message, kMsgError);
  ErrorReply error;
  error.id = uint_field(message, "id");
  error.code = error_code_from_string(string_field(message, "code"));
  error.message = message.string_or("message", "");
  return error;
}

util::Json encode_catalog_request(std::uint64_t id) {
  util::Json message;
  message["t"] = kMsgCatalog;
  message["id"] = id;
  return message;
}

util::Json encode_catalog_reply(std::uint64_t id,
                                const std::vector<CatalogModel>& models) {
  util::Json message;
  message["t"] = kMsgCatalog;
  message["id"] = id;
  util::JsonArray rows;
  rows.reserve(models.size());
  for (const CatalogModel& model : models) {
    util::Json row;
    row["id"] = model.id;
    row["rank"] = model.rank;
    row["atoms"] = model.num_atoms;
    row["spec"] = model.spec;
    util::Json objectives;
    for (const auto& [name, value] : model.objectives) objectives[name] = value;
    if (!model.objectives.empty()) row["objectives"] = objectives;
    rows.push_back(std::move(row));
  }
  message["models"] = std::move(rows);
  return message;
}

std::vector<CatalogModel> decode_catalog_reply(const util::Json& message) {
  expect_type(message, kMsgCatalog);
  std::vector<CatalogModel> models;
  for (const util::Json& row : array_field(message, "models")) {
    if (!row.is_object()) {
      throw util::ParseError("serve message: catalog row must be an object");
    }
    CatalogModel model;
    model.id = string_field(row, "id");
    model.rank = static_cast<int>(uint_field(row, "rank"));
    model.num_atoms = static_cast<std::size_t>(uint_field(row, "atoms"));
    model.spec = row.string_or("spec", "");
    if (row.contains("objectives")) {
      if (!row.at("objectives").is_object()) {
        throw util::ParseError("serve message: objectives must be an object");
      }
      for (const auto& [name, value] : row.at("objectives").as_object()) {
        if (!value.is_number()) {
          throw util::ParseError("serve message: objective " + name +
                                 " is not a number");
        }
        model.objectives.emplace_back(name, value.as_number());
      }
    }
    models.push_back(std::move(model));
  }
  return models;
}

}  // namespace dpho::serve
