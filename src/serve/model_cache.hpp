// Bounded LRU cache of loaded potentials over a dp::ModelArchive.
//
// A Pareto front can hold more trained models than fit comfortably in memory
// at serving time (each loaded model pins weights plus per-thread evaluation
// arenas).  The cache keeps at most `capacity` potentials resident, loads on
// miss from the archive checkpoint, and evicts the least recently used entry.
// get() hands out shared_ptr<const Potential>, so an evicted model stays
// alive until every in-flight request holding it finishes -- eviction never
// invalidates a running evaluation.
//
// Thread-safe: workers call get() concurrently; loads happen under the lock
// (simple and correct -- a thundering herd on one cold model loads it once
// per waiter at worst, and checkpoints are small).  Counts hits, misses and
// evictions into serve.cache_* metrics and locally for tests.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "dp/archive.hpp"

namespace dpho::serve {

class ModelCache {
 public:
  /// `archive` must outlive the cache.  capacity >= 1 (throws ValueError).
  ModelCache(const dp::ModelArchive& archive, std::size_t capacity);

  /// The potential behind `id`, loading and/or evicting as needed.  Throws
  /// util::ValueError for an id the archive does not hold.
  std::shared_ptr<const dp::Potential> get(const std::string& id);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  /// hits / (hits + misses); 0 before the first lookup.
  double hit_rate() const;

 private:
  const dp::ModelArchive& archive_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  // Most recently used at the front; size() <= capacity_.
  std::list<std::pair<std::string, std::shared_ptr<const dp::Potential>>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dpho::serve
