#include "serve/model_cache.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dpho::serve {

ModelCache::ModelCache(const dp::ModelArchive& archive, std::size_t capacity)
    : archive_(archive), capacity_(capacity) {
  if (capacity_ == 0) {
    throw util::ValueError("model cache: capacity must be >= 1");
  }
}

std::shared_ptr<const dp::Potential> ModelCache::get(const std::string& id) {
  const std::scoped_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == id) {
      entries_.splice(entries_.begin(), entries_, it);  // refresh recency
      ++hits_;
      obs::metrics().counter("serve.cache_hits").add();
      return entries_.front().second;
    }
  }
  ++misses_;
  obs::metrics().counter("serve.cache_misses").add();
  // Throws ValueError for an unknown id before anything is evicted.
  auto potential = std::make_shared<const dp::Potential>(archive_.load(id));
  if (entries_.size() >= capacity_) {
    entries_.pop_back();
    ++evictions_;
    obs::metrics().counter("serve.cache_evictions").add();
  }
  entries_.emplace_front(id, potential);
  obs::metrics().gauge("serve.cache_size").set(
      static_cast<double>(entries_.size()));
  return potential;
}

std::size_t ModelCache::size() const {
  const std::scoped_lock lock(mutex_);
  return entries_.size();
}

std::uint64_t ModelCache::hits() const {
  const std::scoped_lock lock(mutex_);
  return hits_;
}

std::uint64_t ModelCache::misses() const {
  const std::scoped_lock lock(mutex_);
  return misses_;
}

std::uint64_t ModelCache::evictions() const {
  const std::scoped_lock lock(mutex_);
  return evictions_;
}

double ModelCache::hit_rate() const {
  const std::scoped_lock lock(mutex_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace dpho::serve
