// The dp_serve daemon core: batched inference over archived potentials.
//
// One IO thread multiplexes a loopback listener plus every client connection
// with poll() and per-connection hpc::net::FrameReaders (each capped at
// `max_frame_bytes`, so an oversized length prefix is refused before any
// payload allocation).  Complete frames are decoded into protocol requests
// and pushed onto a bounded queue; `threads` worker threads pop requests,
// resolve the model through the LRU ModelCache, run the analytic primal path
// (dp::Potential::evaluate -- FastGraph forward, no tape) over the batch, and
// write the reply under a per-connection write mutex.
//
// Backpressure is explicit: when the queue is full (or the daemon is
// draining) the IO thread immediately answers `overloaded` instead of
// buffering without bound.  request_drain() -- wired to SIGTERM in the
// dp_serve binary -- closes the listener, lets queued and in-flight requests
// finish and reply, then shuts the workers down; stop() is the hard variant.
//
// Observability (see DESIGN.md section 12 for the catalogue): serve.*
// counters and gauges in the deterministic metrics section, batch-size
// histogram, request/queue-wait timing histograms, and serve.* timeline
// events -- the chaos tests read the timeline to witness a SIGKILL landing
// between serve.request and serve.reply.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dp/archive.hpp"
#include "hpc/net/frame.hpp"
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"

namespace dpho::serve {

struct ServerOptions {
  std::filesystem::path archive_dir;
  /// Which archive entries are served (ModelArchive::select grammar).
  std::string selector = "all";
  std::size_t cache_capacity = 4;   // resident models (LRU beyond this)
  std::size_t threads = 2;          // evaluation worker threads
  std::size_t max_queue = 64;       // queued requests before overload replies
  /// Per-connection frame cap; a larger declared length closes the peer.
  std::uint32_t max_frame_bytes = hpc::net::kMaxFramePayload;
  /// Test/bench hook: hold each request in the worker for this long before
  /// evaluating, so overload/drain/kill races become deterministic.
  double debug_delay_seconds = 0.0;
};

class Server {
 public:
  /// Opens the archive and resolves the selection; start() begins serving.
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds an ephemeral loopback port and spawns the IO + worker threads.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return listener_.port(); }

  /// The served catalog rows, in archive order.
  const std::vector<CatalogModel>& catalog() const { return catalog_; }

  /// Graceful drain: stop accepting connections and new requests, finish and
  /// answer everything already queued or in flight, then stop the threads.
  /// Safe to call from a signal-watching thread; idempotent.
  void request_drain();

  /// Blocks until a drain (or stop) completed.
  void wait();

  /// Hard shutdown: abandons queued requests and joins all threads.
  void stop();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Requests answered with a result (not an error) since start().
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  const ModelCache& cache() const { return cache_; }

 private:
  /// One client connection.  The Connection owns its fd and closes it in the
  /// destructor: the IO thread only erases its shared_ptr from the map, so a
  /// worker still holding the connection for an in-flight reply can never
  /// write to a closed (and possibly reused) descriptor.
  struct Connection {
    explicit Connection(int socket_fd, std::uint32_t max_frame_bytes)
        : fd(socket_fd), reader(max_frame_bytes) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    int fd;
    hpc::net::FrameReader reader;
    std::mutex write_mutex;       // workers and the IO thread both reply
    std::atomic<bool> alive{true};  // cleared when the IO thread retires it
  };

  struct Job {
    std::shared_ptr<Connection> connection;
    EvalRequest request;
    std::chrono::steady_clock::time_point enqueued;
  };

  void io_loop();
  void worker_loop();
  void accept_pending();
  /// Drains one connection; returns false when it should be dropped.
  bool service_connection(const std::shared_ptr<Connection>& connection);
  void handle_frame(const std::shared_ptr<Connection>& connection,
                    const std::string& payload);
  void handle_eval(const std::shared_ptr<Connection>& connection,
                   EvalRequest request);
  void process(Job job);
  void send_error(const std::shared_ptr<Connection>& connection,
                  std::uint64_t id, ErrorCode code, const std::string& message);
  static void send(const std::shared_ptr<Connection>& connection,
                   const util::Json& message);
  /// True once the queue is empty and no worker holds a request.
  bool idle() const;

  ServerOptions options_;
  dp::ModelArchive archive_;
  ModelCache cache_;
  std::vector<CatalogModel> catalog_;
  std::map<std::string, std::size_t> served_;  // id -> expected atom count

  hpc::net::Listener listener_;
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;    // workers wait here
  std::condition_variable drained_cv_;  // wait() blocks here
  std::deque<Job> queue_;
  std::size_t in_flight_ = 0;        // requests popped but not yet replied
  bool drain_complete_ = false;      // guarded by queue_mutex_

  std::map<int, std::shared_ptr<Connection>> connections_;  // IO thread only

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stop_called_{false};
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace dpho::serve
