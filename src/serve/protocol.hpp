// Wire protocol of the dp_serve inference daemon.
//
// Messages ride the hpc::net framing (4-byte big-endian length + compact
// JSON, "t"-tagged) that the process cluster already uses, so dp_serve needs
// no new transport.  Three request kinds:
//
//   {"t":"eval","id":7,"model":"m3","forces":true,
//    "frames":[{"box":17.84,"coords":[x0,y0,z0,x1,...]}, ...]}
//   {"t":"catalog","id":1}
//
// and two reply kinds:
//
//   {"t":"result","id":7,"model":"m3","energies":[...],
//    "forces":[[fx0,fy0,fz0,...], ...]}          // present iff requested
//   {"t":"error","id":7,"code":"overloaded","message":"..."}
//
// Coordinates and results are JSON numbers serialized with the shortest
// round-trip representation (util::Json), so a frame evaluated through the
// daemon is bit-identical to a direct dp::Potential::evaluate of the same
// frame -- the serve e2e tests assert exactly that.
//
// Decoders validate structure and throw util::ParseError (malformed JSON or
// missing/ill-typed fields) or util::ValueError (structurally valid but
// out-of-contract values, e.g. a coords list that is not a multiple of 3, or
// a batch beyond kMaxBatchFrames).  They never crash on hostile input; the
// protocol fuzz tests feed them truncated and bit-flipped frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "md/dataset.hpp"
#include "util/json.hpp"

namespace dpho::serve {

/// Hard batch ceiling per request; a request above this is refused with
/// kTooLarge before any evaluation work is queued.
inline constexpr std::size_t kMaxBatchFrames = 4096;

/// Message type tags ("t" values).
inline constexpr const char* kMsgEval = "eval";
inline constexpr const char* kMsgResult = "result";
inline constexpr const char* kMsgCatalog = "catalog";
inline constexpr const char* kMsgError = "error";

/// Why the daemon refused a request.
enum class ErrorCode {
  kOverloaded,    // request queue full or daemon draining
  kBadRequest,    // malformed message or wrong atom count
  kUnknownModel,  // model id not in the served selection
  kTooLarge,      // frame or batch above the configured caps
  kInternal,      // unexpected server-side failure
};

std::string to_string(ErrorCode code);
/// Throws util::ValueError on an unknown code string.
ErrorCode error_code_from_string(const std::string& name);

/// A batched energy/force request.  Frames carry positions and box only;
/// energy/forces members of md::Frame are ignored on the request path.
struct EvalRequest {
  std::uint64_t id = 0;  // client-chosen correlation id, echoed in the reply
  std::string model;     // archive id of the potential to evaluate with
  bool want_forces = false;
  std::vector<md::Frame> frames;
};

/// The answer to one EvalRequest, in frame order.
struct EvalReply {
  std::uint64_t id = 0;
  std::string model;
  std::vector<double> energies;
  // forces[f] is the flat [x0,y0,z0,x1,...] force vector of frame f; empty
  // when forces were not requested.
  std::vector<std::vector<double>> forces;
};

/// An error reply.  `id` is 0 when the offending request could not be parsed
/// far enough to recover one.
struct ErrorReply {
  std::uint64_t id = 0;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// One catalog row as served to clients (a trimmed ArchiveEntry).
struct CatalogModel {
  std::string id;
  int rank = 0;
  std::size_t num_atoms = 0;
  std::string spec;  // human-readable ModelSpec::describe()
  std::vector<std::pair<std::string, double>> objectives;
};

/// The "t" tag of a decoded message; throws util::ParseError when absent.
std::string message_type(const util::Json& message);

util::Json encode_eval_request(const EvalRequest& request);
EvalRequest decode_eval_request(const util::Json& message);

util::Json encode_eval_reply(const EvalReply& reply);
EvalReply decode_eval_reply(const util::Json& message);

util::Json encode_error(const ErrorReply& error);
ErrorReply decode_error(const util::Json& message);

util::Json encode_catalog_request(std::uint64_t id);
util::Json encode_catalog_reply(std::uint64_t id,
                                const std::vector<CatalogModel>& models);
std::vector<CatalogModel> decode_catalog_reply(const util::Json& message);

}  // namespace dpho::serve
