#include "hpc/thread_pool.hpp"

#include "util/error.hpp"

namespace dpho::hpc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) throw util::ValueError("thread pool needs >= 1 thread");
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([i, &fn] { fn(i); }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace dpho::hpc
