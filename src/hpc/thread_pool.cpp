#include "hpc/thread_pool.hpp"

#include "util/error.hpp"

namespace dpho::hpc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) throw util::ValueError("thread pool needs >= 1 thread");
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::drain_loop(const std::shared_ptr<ForLoop>& loop, std::size_t count,
                            const std::function<void(std::size_t)>* fn) {
  for (;;) {
    const std::size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
    // After exhaustion, return without touching *fn: late-running helper
    // tasks may outlive the parallel_for call frame that owns it.
    if (i >= count) return;
    try {
      (*fn)(i);
    } catch (...) {
      const std::scoped_lock lock(loop->mutex);
      if (i < loop->error_index) {
        loop->error_index = i;
        loop->error = std::current_exception();
      }
    }
    if (loop->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last index done: wake the waiter under the lock so the notification
      // cannot slip between its predicate check and its wait.
      const std::scoped_lock lock(loop->mutex);
      loop->done.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  auto loop = std::make_shared<ForLoop>(count);

  // Helper tasks share the index counter with the caller; any helper that
  // arrives after the loop is exhausted returns immediately.
  const std::size_t helpers = std::min(count, threads_.size());
  {
    const std::scoped_lock lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([loop, count, fnp = &fn] { drain_loop(loop, count, fnp); });
    }
  }
  if (helpers == 1) {
    wake_.notify_one();
  } else if (helpers > 1) {
    wake_.notify_all();
  }

  // The caller participates: even if every worker is blocked inside an
  // enclosing parallel_for (nested use), this thread completes the loop.
  drain_loop(loop, count, &fn);

  {
    std::unique_lock lock(loop->mutex);
    loop->done.wait(lock, [&] {
      return loop->remaining.load(std::memory_order_acquire) == 0;
    });
    if (loop->error) std::rethrow_exception(loop->error);
  }
}

}  // namespace dpho::hpc
