#include "hpc/thread_pool.hpp"

#include "util/error.hpp"

namespace dpho::hpc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) throw util::ValueError("thread pool needs >= 1 thread");
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  // Last static-loop generation this worker drained: without it a worker
  // would busy-spin on the wait predicate between loop exhaustion and the
  // caller clearing static_live_.
  std::uint32_t seen_static_gen = 0;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] {
        return stopping_ || !queue_.empty() ||
               (static_live_ && static_gen_ != seen_static_gen);
      });
      if (static_live_ && static_gen_ != seen_static_gen) {
        seen_static_gen = static_gen_;
        const StaticSnapshot snap = static_desc_;
        lock.unlock();
        drain_static(snap);
        continue;
      }
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::drain_loop(const std::shared_ptr<ForLoop>& loop, std::size_t count,
                            const std::function<void(std::size_t)>* fn) {
  for (;;) {
    const std::size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
    // After exhaustion, return without touching *fn: late-running helper
    // tasks may outlive the parallel_for call frame that owns it.
    if (i >= count) return;
    try {
      (*fn)(i);
    } catch (...) {
      const std::scoped_lock lock(loop->mutex);
      if (i < loop->error_index) {
        loop->error_index = i;
        loop->error = std::current_exception();
      }
    }
    if (loop->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last index done: wake the waiter under the lock so the notification
      // cannot slip between its predicate check and its wait.
      const std::scoped_lock lock(loop->mutex);
      loop->done.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  auto loop = std::make_shared<ForLoop>(count);

  // Helper tasks share the index counter with the caller; any helper that
  // arrives after the loop is exhausted returns immediately.
  const std::size_t helpers = std::min(count, threads_.size());
  {
    const std::scoped_lock lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([loop, count, fnp = &fn] { drain_loop(loop, count, fnp); });
    }
  }
  if (helpers == 1) {
    wake_.notify_one();
  } else if (helpers > 1) {
    wake_.notify_all();
  }

  // The caller participates: even if every worker is blocked inside an
  // enclosing parallel_for (nested use), this thread completes the loop.
  drain_loop(loop, count, &fn);

  {
    std::unique_lock lock(loop->mutex);
    loop->done.wait(lock, [&] {
      return loop->remaining.load(std::memory_order_acquire) == 0;
    });
    if (loop->error) std::rethrow_exception(loop->error);
  }
}

void ThreadPool::drain_static(const StaticSnapshot& snap) {
  std::uint64_t control = static_control_.load(std::memory_order_relaxed);
  while ((control >> 32) == snap.gen &&
         (control & 0xffffffffu) < snap.count) {
    const std::uint32_t i = static_cast<std::uint32_t>(control & 0xffffffffu);
    if (!static_control_.compare_exchange_weak(
            control, (std::uint64_t{snap.gen} << 32) | (i + 1u),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      continue;  // `control` was reloaded by the failed CAS
    }
    try {
      snap.fn(snap.ctx, i);
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (i < static_error_index_) {
        static_error_index_ = i;
        static_error_ = std::current_exception();
      }
    }
    if (static_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last index done: wake the waiter under the lock so the notification
      // cannot slip between its predicate check and its wait.
      const std::scoped_lock lock(mutex_);
      static_done_.notify_all();
    }
    control = static_control_.load(std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for_static(std::size_t count,
                                     void (*fn)(void*, std::size_t), void* ctx) {
  if (count == 0) return;
  if (fn == nullptr) throw util::ValueError("parallel_for_static: fn is null");
  if (count > 0xffffffffu) {
    throw util::ValueError("parallel_for_static: count exceeds 2^32-1");
  }
  if (count == 1) {
    fn(ctx, 0);
    return;
  }

  const std::scoped_lock serial(static_mutex_);
  StaticSnapshot snap;
  snap.fn = fn;
  snap.ctx = ctx;
  snap.count = static_cast<std::uint32_t>(count);
  {
    const std::scoped_lock lock(mutex_);
    if (++static_gen_ == 0) ++static_gen_;  // gen 0 is reserved for "never"
    snap.gen = static_gen_;
    static_desc_ = snap;
    static_error_ = nullptr;
    static_error_index_ = SIZE_MAX;
    static_remaining_.store(snap.count, std::memory_order_relaxed);
    static_control_.store(std::uint64_t{snap.gen} << 32,
                          std::memory_order_release);
    static_live_ = true;
  }
  wake_.notify_all();

  // The caller participates, so the loop completes even when every worker is
  // occupied by an enclosing task (nested use).
  drain_static(snap);

  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    static_done_.wait(lock, [&] {
      return static_remaining_.load(std::memory_order_acquire) == 0;
    });
    static_live_ = false;
    error = static_error_;
    static_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace dpho::hpc
