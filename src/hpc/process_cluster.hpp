// A real multi-process worker pool behind the ClusterSession API.
//
// Where DaskCluster *simulates* the paper's Summit deployment (section
// 2.2.5), ProcessCluster *is* one at laptop scale: the scheduler (this
// object) listens on a loopback TCP port, fork/execs one dpho_worker
// subprocess per "node", and drives them with length-prefixed JSON frames
// (net/frame.hpp, net/wire.hpp).  Nannies are disabled, exactly like the
// paper's deployment: a worker that dies is never restarted; its in-flight
// task is re-dispatched to a survivor.
//
// Robustness model (DESIGN.md section 11):
//
//   * Liveness: workers heartbeat every heartbeat_interval_seconds.  A
//     worker silent past heartbeat_timeout_seconds is declared hung
//     (FailureCause::kHungProcess), SIGKILLed, and its task re-dispatched.
//     A closed connection (process died) maps to kNodeLoss.
//   * Wall limit: a scheduler-side watchdog SIGKILLs any worker whose task
//     exceeds task_wall_limit_seconds of real time; the task resolves as
//     TaskStatus::kTimeout / kWallLimit and is NOT retried (timeouts are
//     deterministic).  Independently, a *completed* evaluation reporting
//     sim_minutes beyond the farm's task_timeout_minutes classifies as a
//     timeout under the same rule the simulator applies.
//   * Retry: re-dispatch waits retry_backoff_seconds(eval_seed, attempt)
//     (hpc/backoff.hpp) -- capped exponential backoff derived from the
//     per-task evaluation seed, so attempt timing is reproducible no matter
//     how completions interleave.  After FarmConfig::max_attempts the task
//     resolves as kNodeFailure / kNodeLoss.
//   * Degradation: when every worker is dead, pending work is evaluated
//     in-process through the stored RemoteWorkFn (with a logged warning)
//     instead of hanging or aborting.
//   * Determinism: completions are delivered in task-id (submission) order,
//     so the engine's breeding sequence -- and therefore every fitness in
//     the archive -- is identical between a faulty run and a fault-free run
//     of the same seed.  Real wall-clock timing only enters the makespan
//     and job-clock figures.
//   * Crash recovery: snapshot()/restore() reuse FarmSnapshot.  Resolved-
//     but-undelivered completions survive a scheduler crash verbatim;
//     unresolved in-flight tasks are reported back from restore() so the
//     engine re-submits them (a real worker's half-finished evaluation dies
//     with the scheduler).
//
// The same FaultPlan JSON that scripts the simulator drives *real* chaos
// here: kKillWorker SIGKILLs the worker that received the matching attempt,
// kStraggler makes the worker sleep before evaluating, kSchedulerRestart
// tears down and rebinds the listener, kCorruptPayload replaces the received
// result.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hpc/cluster_session.hpp"
#include "hpc/net/frame.hpp"

namespace dpho::hpc {

/// Configuration of the real worker pool.
struct ProcessClusterConfig {
  /// The dpho_worker executable (required).
  std::filesystem::path worker_binary;
  /// Worker processes to spawn; 0 -> FarmConfig::job.nodes.
  std::size_t num_workers = 0;
  /// Extra argv entries appended to every worker launch (test knobs).
  std::vector<std::string> worker_extra_args;
  /// Opaque JSON shipped to workers in the init frame; the worker builds its
  /// evaluator from it (core::eval_config_io).  Empty -> worker defaults.
  std::string eval_config_json;

  double heartbeat_interval_seconds = 0.05;
  double heartbeat_timeout_seconds = 2.0;
  /// A spawned worker that has not completed the hello/init handshake within
  /// this budget is declared lost.
  double spawn_timeout_seconds = 10.0;
  /// Real-time per-task wall limit enforced by the scheduler-side watchdog;
  /// 0 disables it (the heartbeat deadline still catches dead workers).
  double task_wall_limit_seconds = 0.0;

  double retry_backoff_base_seconds = 0.02;
  double retry_backoff_cap_seconds = 0.5;
  /// Real seconds a kStraggler event makes the worker sleep, per unit of the
  /// event's runtime factor.
  double straggler_sleep_seconds = 0.2;
  /// Scale from real elapsed seconds to simulated job-clock minutes (the
  /// figure charged against the 12-hour wall limit).
  double sim_minutes_per_real_second = 1.0;
  /// Evaluate in-process when the pool shrinks to zero (vs. throwing).
  bool allow_inprocess_fallback = true;
};

/// Socket-backed scheduler + real worker subprocesses.  Single-threaded and
/// poll-driven: all progress happens inside the session API calls.
class ProcessCluster final : public ClusterSession {
 public:
  ProcessCluster(const ClusterSpec& cluster, const FarmConfig& farm,
                 ProcessClusterConfig config);
  ~ProcessCluster() override;
  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  BatchReport run_batch(const std::vector<TaskSpec>& specs,
                        const RemoteWorkFn& local_eval) override;
  void stream_begin() override;
  void stream_submit(const TaskSpec& spec,
                     const RemoteWorkFn& local_eval) override;
  std::optional<StreamCompletion> stream_next() override;
  BatchReport stream_end() override;
  std::optional<StreamCompletion> stream_try_next(std::size_t lo,
                                                  std::size_t hi) override;
  void poll(double wait_seconds) override;

  bool stream_active() const override { return stream_active_; }
  std::size_t stream_pending() const override { return undelivered_.size(); }
  double stream_now() const override { return stream_now_; }
  std::size_t stream_node_failures() const override { return node_failures_; }

  double clock_minutes() const override { return clock_minutes_; }
  double remaining_minutes() const override;
  std::size_t live_workers() const override;
  std::size_t batches_run() const override { return batches_run_; }

  FarmSnapshot snapshot() const override;
  std::vector<std::size_t> restore(const FarmSnapshot& snapshot) override;

  std::string backend_name() const override { return "process"; }

  /// Test hooks.
  std::uint16_t port() const { return listener_.port(); }
  ::pid_t worker_pid(std::size_t worker) const;
  const ProcessClusterConfig& config() const { return config_; }

 private:
  enum class TaskPhase : std::uint8_t { kPending, kRunning, kResolved, kDelivered };

  struct Task {
    TaskSpec spec;
    RemoteWorkFn local_eval;
    std::size_t attempt = 0;        // dispatches so far
    double ready_at = 0.0;          // backoff gate (elapsed seconds)
    TaskPhase phase = TaskPhase::kPending;
    std::size_t worker = static_cast<std::size_t>(-1);
    TaskReport report;
    double resolved_minutes = 0.0;  // session minutes at resolution
  };

  struct Worker {
    ::pid_t pid = -1;
    int fd = -1;                    // -1 until the hello frame arrived
    net::FrameReader reader;
    bool spawned = false;
    bool alive = false;             // spawned and not declared dead
    bool connected = false;         // hello received, init sent
    double spawn_deadline = 0.0;
    double last_heartbeat = 0.0;
    std::optional<std::size_t> task;
    double task_started = 0.0;
    std::size_t tasks_run = 0;
  };

  struct PendingConn {
    int fd = -1;
    net::FrameReader reader;
    double accepted_at = 0.0;
  };

  double now_seconds() const;
  double session_minutes() const;
  void ensure_listening();
  void spawn_worker(std::size_t index);
  void spawn_missing_workers();
  void begin_session();
  void pump(double wait_seconds);
  void accept_connections();
  void process_pending_conns();
  void process_worker_frames(std::size_t index);
  void check_deadlines();
  void dispatch_ready_tasks();
  void degrade_if_stranded();
  /// Marks `id` delivered (it must be kResolved), advances the session clock
  /// and emits the process.delivery event -- shared by stream_next and
  /// stream_try_next.
  StreamCompletion deliver(std::size_t id);
  void handle_worker_death(std::size_t index, FailureCause cause);
  void requeue_or_fail(std::size_t task_id, FailureCause cause);
  void resolve_task(std::size_t task_id, TaskReport report);
  void apply_result(std::size_t task_id, WorkResult result);
  void reap_zombies();
  void shutdown_workers();
  double straggler_seconds_for(std::size_t task_id) const;
  bool scripted_kill_matches(std::size_t task_id, std::size_t attempt) const;

  ClusterSpec cluster_;
  FarmConfig farm_;
  ProcessClusterConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  net::Listener listener_;
  std::vector<Worker> workers_;
  std::vector<PendingConn> pending_conns_;
  std::vector<::pid_t> zombies_;

  double clock_minutes_ = 0.0;
  std::size_t batches_run_ = 0;

  // Session state.
  bool stream_active_ = false;
  std::size_t session_batch_ = 0;
  double session_started_ = 0.0;         // elapsed-seconds at stream_begin
  double session_offset_minutes_ = 0.0;  // restored mid-session time
  double stream_now_ = 0.0;              // session minutes at last delivery
  std::size_t node_failures_ = 0;
  std::size_t scheduler_restarts_ = 0;
  std::map<std::size_t, Task> tasks_;
  std::set<std::size_t> undelivered_;    // delivery happens in id order
  std::vector<StreamCompletion> delivered_;
  bool degraded_warned_ = false;
};

}  // namespace dpho::hpc
