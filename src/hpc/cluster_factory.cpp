#include "hpc/cluster_factory.hpp"

#include "util/error.hpp"

namespace dpho::hpc {

std::string to_string(ClusterBackendKind kind) {
  switch (kind) {
    case ClusterBackendKind::kSim: return "sim";
    case ClusterBackendKind::kProcess: return "process";
  }
  throw util::ValueError("invalid cluster backend kind");
}

ClusterBackendKind cluster_backend_from_string(const std::string& name) {
  for (const ClusterBackendKind kind :
       {ClusterBackendKind::kSim, ClusterBackendKind::kProcess}) {
    if (to_string(kind) == name) return kind;
  }
  throw util::ParseError("unknown cluster backend: " + name);
}

std::unique_ptr<ClusterSession> make_cluster_session(
    const ClusterSpec& cluster, const FarmConfig& farm,
    const ClusterBackendConfig& backend) {
  switch (backend.kind) {
    case ClusterBackendKind::kSim:
      return std::make_unique<SimClusterSession>(cluster, farm);
    case ClusterBackendKind::kProcess:
      return std::make_unique<ProcessCluster>(cluster, farm, backend.process);
  }
  throw util::ValueError("invalid cluster backend kind");
}

}  // namespace dpho::hpc
