// JSON (de)serialization for scripted fault plans, so deterministic fault
// schedules can be authored in files and passed to tools (`dpho_hpo
// --fault-plan plan.json`) as well as embedded in checkpoints.
//
// Format: {"events": [{"kind": "kill_worker", "batch": 0, "task": 3,
//                      "attempt": 1, "factor": 1.0, "delay_minutes": 0.0}, ...]}
// with `attempt`/`factor`/`delay_minutes` optional (defaults as in FaultEvent).
#pragma once

#include <filesystem>

#include "hpc/taskfarm.hpp"
#include "util/json.hpp"

namespace dpho::hpc {

std::string to_string(FaultKind kind);
FaultKind fault_kind_from_string(const std::string& name);

util::Json fault_plan_to_json(const FaultPlan& plan);
FaultPlan fault_plan_from_json(const util::Json& json);

/// Reads a fault plan from a JSON file; throws IoError / ParseError.
FaultPlan load_fault_plan(const std::filesystem::path& path);

}  // namespace dpho::hpc
