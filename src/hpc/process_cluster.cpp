#include "hpc/process_cluster.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "hpc/backoff.hpp"
#include "hpc/net/wire.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dpho::hpc {

namespace {

constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
/// Sentinel finish_at for an in-flight task whose evaluation died with the
/// scheduler; restore() reports such ids back for re-submission.
constexpr double kUnresolvedFinishAt = -1.0;

void record_worker_gauges(std::size_t live) {
  obs::metrics().gauge("process.live_workers").set(static_cast<double>(live));
}

}  // namespace

ProcessCluster::ProcessCluster(const ClusterSpec& cluster,
                               const FarmConfig& farm,
                               ProcessClusterConfig config)
    : cluster_(cluster),
      farm_(farm),
      config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.worker_binary.empty()) {
    throw util::ValueError("process cluster: worker_binary is required");
  }
  if (config_.num_workers == 0) config_.num_workers = farm_.job.nodes;
  if (config_.num_workers == 0) {
    throw util::ValueError("process cluster: need at least one worker");
  }
  if (config_.heartbeat_interval_seconds <= 0.0 ||
      config_.heartbeat_timeout_seconds <= config_.heartbeat_interval_seconds) {
    throw util::ValueError(
        "process cluster: heartbeat timeout must exceed the interval");
  }
  if (config_.sim_minutes_per_real_second <= 0.0) {
    throw util::ValueError(
        "process cluster: sim_minutes_per_real_second must be positive");
  }
  workers_.resize(config_.num_workers);
  ensure_listening();
  record_worker_gauges(config_.num_workers);
}

ProcessCluster::~ProcessCluster() {
  try {
    shutdown_workers();
  } catch (...) {
    // Destruction must not throw; leftover children were SIGKILLed below.
  }
}

double ProcessCluster::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double ProcessCluster::session_minutes() const {
  return session_offset_minutes_ + (now_seconds() - session_started_) *
                                       config_.sim_minutes_per_real_second;
}

void ProcessCluster::ensure_listening() {
  if (!listener_.is_open()) listener_.open();
}

void ProcessCluster::spawn_worker(std::size_t index) {
  Worker& w = workers_[index];
  std::vector<std::string> args;
  args.push_back(config_.worker_binary.string());
  args.push_back("--port");
  args.push_back(std::to_string(listener_.port()));
  args.push_back("--token");
  args.push_back(std::to_string(index));
  for (const std::string& extra : config_.worker_extra_args) {
    args.push_back(extra);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const ::pid_t pid = ::fork();
  if (pid < 0) {
    throw util::IoError("process cluster: fork failed: " +
                        std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // exec failed; exit without running any parent-owned destructors.
    ::_exit(127);
  }
  w.pid = pid;
  w.fd = -1;
  w.reader = net::FrameReader{};
  w.spawned = true;
  w.alive = true;
  w.connected = false;
  w.spawn_deadline = now_seconds() + config_.spawn_timeout_seconds;
  w.task.reset();
  w.tasks_run = 0;
  obs::events().emit("process.worker_spawn",
                     {{"worker", util::Json(index)},
                      {"pid", util::Json(static_cast<double>(pid))}});
}

void ProcessCluster::spawn_missing_workers() {
  ensure_listening();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].spawned) spawn_worker(i);
  }
  record_worker_gauges(live_workers());
}

void ProcessCluster::begin_session() {
  if (stream_active_) throw util::ValueError("stream session already active");
  session_batch_ = batches_run_++;
  stream_now_ = 0.0;
  node_failures_ = 0;
  scheduler_restarts_ = 0;
  session_offset_minutes_ = 0.0;
  degraded_warned_ = false;
  tasks_.clear();
  undelivered_.clear();
  delivered_.clear();

  // kSchedulerRestart is real here: tear down and rebind the accept socket.
  // Established worker connections survive (exactly Dask's behavior when the
  // scheduler endpoint flaps); the outage length is charged to the job clock
  // the same way the simulator idles its workers.
  for (const FaultEvent& event : farm_.faults.events) {
    if (event.batch != session_batch_ ||
        event.kind != FaultKind::kSchedulerRestart) {
      continue;
    }
    listener_.rebind();
    session_offset_minutes_ =
        std::max(session_offset_minutes_, event.delay_minutes);
    ++scheduler_restarts_;
    obs::metrics().counter("process.scheduler_rebinds_total").add();
    util::log_info() << "process cluster: scheduler restart at batch "
                     << session_batch_ << ", rebound to port "
                     << listener_.port();
  }

  spawn_missing_workers();
  session_started_ = now_seconds();
  stream_active_ = true;
}

void ProcessCluster::stream_begin() { begin_session(); }

void ProcessCluster::stream_submit(const TaskSpec& spec,
                                   const RemoteWorkFn& local_eval) {
  if (!stream_active_) throw util::ValueError("no stream session active");
  if (tasks_.count(spec.id) != 0) {
    throw util::ValueError("process cluster: duplicate task id " +
                           std::to_string(spec.id));
  }
  Task task;
  task.spec = spec;
  task.local_eval = local_eval;
  tasks_.emplace(spec.id, std::move(task));
  undelivered_.insert(spec.id);
  pump(0.0);
}

StreamCompletion ProcessCluster::deliver(std::size_t id) {
  Task& task = tasks_.at(id);
  task.phase = TaskPhase::kDelivered;
  undelivered_.erase(id);
  stream_now_ = std::max(stream_now_, task.resolved_minutes);
  const StreamCompletion done{id, task.report};
  delivered_.push_back(done);
  obs::events().emit(
      "process.delivery",
      {{"id", util::Json(id)},
       {"status", util::Json(to_string(done.report.status))},
       {"attempts", util::Json(done.report.attempts)},
       {"cause", util::Json(to_string(done.report.cause))}});
  return done;
}

std::optional<StreamCompletion> ProcessCluster::stream_next() {
  if (!stream_active_) throw util::ValueError("no stream session active");
  if (undelivered_.empty()) return std::nullopt;
  // Completions are delivered in task-id order regardless of which worker
  // finished first: the engine's breeding sequence then matches the fault-free
  // run of the same seed bit for bit (real timing only enters the makespan).
  const std::size_t id = *undelivered_.begin();
  while (tasks_.at(id).phase != TaskPhase::kResolved) {
    pump(0.002);
  }
  return deliver(id);
}

std::optional<StreamCompletion> ProcessCluster::stream_try_next(std::size_t lo,
                                                                std::size_t hi) {
  if (!stream_active_) throw util::ValueError("no stream session active");
  // The lowest undelivered id within the range is the only candidate: the
  // id-order delivery contract holds per range exactly as stream_next()
  // enforces it globally.  Unlike stream_next() this never blocks -- a
  // not-yet-resolved candidate just reports "nothing deliverable".
  const auto it = undelivered_.lower_bound(lo);
  if (it == undelivered_.end() || *it >= hi) return std::nullopt;
  if (tasks_.at(*it).phase != TaskPhase::kResolved) return std::nullopt;
  return deliver(*it);
}

void ProcessCluster::poll(double wait_seconds) {
  if (!stream_active_) return;
  pump(wait_seconds);
}

BatchReport ProcessCluster::stream_end() {
  if (!stream_active_) throw util::ValueError("no stream session active");
  if (!undelivered_.empty()) {
    throw util::ValueError("stream session still has in-flight tasks");
  }
  BatchReport report;
  std::size_t num_tasks = 0;
  for (const StreamCompletion& done : delivered_) {
    num_tasks = std::max(num_tasks, done.id + 1);
  }
  report.tasks.resize(num_tasks);
  for (const StreamCompletion& done : delivered_) {
    report.tasks[done.id] = done.report;
  }
  report.makespan_minutes = stream_now_;
  report.node_failures = node_failures_;
  report.workers_remaining = live_workers();
  report.scheduler_restarts = scheduler_restarts_;
  clock_minutes_ += stream_now_;
  stream_active_ = false;
  tasks_.clear();
  delivered_.clear();
  return report;
}

BatchReport ProcessCluster::run_batch(const std::vector<TaskSpec>& specs,
                                      const RemoteWorkFn& local_eval) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].id != i) {
      throw util::ValueError("run_batch specs must be indexed 0..n-1");
    }
  }
  stream_begin();
  for (const TaskSpec& spec : specs) stream_submit(spec, local_eval);
  while (stream_next()) {
  }
  return stream_end();
}

double ProcessCluster::remaining_minutes() const {
  return std::max(0.0, farm_.job.wall_limit_minutes - clock_minutes_);
}

std::size_t ProcessCluster::live_workers() const {
  bool any_spawned = false;
  std::size_t alive = 0;
  for (const Worker& w : workers_) {
    any_spawned = any_spawned || w.spawned;
    if (w.alive) ++alive;
  }
  // Before the pool starts, report the configured size (mirrors the sim
  // farm, whose nodes exist from construction).
  return any_spawned ? alive : workers_.size();
}

::pid_t ProcessCluster::worker_pid(std::size_t worker) const {
  if (worker >= workers_.size()) {
    throw util::ValueError("worker index out of range");
  }
  return workers_[worker].pid;
}

// --- Event loop ------------------------------------------------------------

void ProcessCluster::pump(double wait_seconds) {
  reap_zombies();

  std::vector<pollfd> fds;
  if (listener_.is_open()) {
    fds.push_back({listener_.fd(), POLLIN, 0});
  }
  for (const PendingConn& conn : pending_conns_) {
    fds.push_back({conn.fd, POLLIN, 0});
  }
  for (const Worker& w : workers_) {
    if (w.alive && w.fd >= 0) fds.push_back({w.fd, POLLIN, 0});
  }
  const int timeout_ms =
      std::max(0, static_cast<int>(std::lround(wait_seconds * 1000.0)));
  if (::poll(fds.data(), fds.size(), timeout_ms) < 0 && errno != EINTR) {
    throw util::IoError("process cluster: poll failed: " +
                        std::string(std::strerror(errno)));
  }

  accept_connections();
  process_pending_conns();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    process_worker_frames(i);
  }
  check_deadlines();
  dispatch_ready_tasks();
  degrade_if_stranded();
}

void ProcessCluster::accept_connections() {
  if (!listener_.is_open()) return;
  for (;;) {
    const int fd = listener_.accept_nonblocking();
    if (fd < 0) break;
    pending_conns_.push_back({fd, net::FrameReader{}, now_seconds()});
  }
}

void ProcessCluster::process_pending_conns() {
  const double now = now_seconds();
  for (std::size_t c = 0; c < pending_conns_.size();) {
    PendingConn& conn = pending_conns_[c];
    const bool open = conn.reader.drain(conn.fd);
    const std::optional<std::string> frame = conn.reader.next();
    if (!frame) {
      const bool stale =
          now - conn.accepted_at > config_.spawn_timeout_seconds;
      if (!open || stale) {
        ::close(conn.fd);
        pending_conns_.erase(pending_conns_.begin() +
                             static_cast<std::ptrdiff_t>(c));
        continue;
      }
      ++c;
      continue;
    }

    // First frame must be the hello; anything else is a protocol stranger.
    bool adopted = false;
    try {
      const util::Json msg = util::Json::parse(*frame);
      if (net::message_type(msg) == net::kMsgHello) {
        const std::size_t token = net::hello_token(msg);
        if (token < workers_.size() && workers_[token].alive &&
            !workers_[token].connected) {
          Worker& w = workers_[token];
          w.fd = conn.fd;
          w.reader = std::move(conn.reader);
          w.connected = true;
          w.last_heartbeat = now;
          adopted = true;
          if (!net::write_frame(
                  w.fd,
                  net::encode_init(config_.eval_config_json,
                                   config_.heartbeat_interval_seconds)
                      .dump())) {
            handle_worker_death(token, FailureCause::kNodeLoss);
          }
        }
      }
    } catch (const util::Error& e) {
      util::log_warn() << "process cluster: dropping connection with bad "
                          "hello: "
                       << e.what();
    }
    if (!adopted) ::close(conn.fd);
    pending_conns_.erase(pending_conns_.begin() +
                         static_cast<std::ptrdiff_t>(c));
  }
}

void ProcessCluster::process_worker_frames(std::size_t index) {
  Worker& w = workers_[index];
  if (!w.alive || w.fd < 0) return;
  const bool open = w.reader.drain(w.fd);
  while (true) {
    const std::optional<std::string> frame = w.reader.next();
    if (!frame) break;
    try {
      const util::Json msg = util::Json::parse(*frame);
      const std::string type = net::message_type(msg);
      if (type == net::kMsgHeartbeat) {
        const double now = now_seconds();
        obs::metrics()
            .histogram("process.heartbeat_gap_seconds",
                       obs::BucketLayout::timing_seconds())
            .record(now - w.last_heartbeat);
        w.last_heartbeat = now;
      } else if (type == net::kMsgResult) {
        w.last_heartbeat = now_seconds();
        const std::size_t id = net::result_id(msg);
        if (w.task && *w.task == id) {
          w.task.reset();
          ++w.tasks_run;
          apply_result(id, net::decode_result(msg));
        }
      }
    } catch (const util::Error& e) {
      util::log_warn() << "process cluster: bad frame from worker " << index
                       << ": " << e.what();
    }
  }
  if (!open) {
    handle_worker_death(index, FailureCause::kNodeLoss);
  }
}

void ProcessCluster::check_deadlines() {
  const double now = now_seconds();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    if (!w.alive) continue;

    if (!w.connected) {
      // A child that exits before the handshake (bad binary, exec failure)
      // is detected immediately; otherwise the spawn deadline applies.
      int status = 0;
      if (w.pid > 0 && ::waitpid(w.pid, &status, WNOHANG) == w.pid) {
        w.pid = -1;  // already reaped
        util::log_warn() << "process cluster: worker " << i
                         << " exited before handshake";
        handle_worker_death(i, FailureCause::kNodeLoss);
        continue;
      }
      if (now > w.spawn_deadline) {
        util::log_warn() << "process cluster: worker " << i
                         << " missed the spawn deadline";
        handle_worker_death(i, FailureCause::kNodeLoss);
      }
      continue;
    }

    if (now - w.last_heartbeat > config_.heartbeat_timeout_seconds) {
      util::log_warn() << "process cluster: worker " << i
                       << " heartbeat silent for "
                       << now - w.last_heartbeat << " s; declaring hung";
      handle_worker_death(i, FailureCause::kHungProcess);
      continue;
    }

    if (w.task && config_.task_wall_limit_seconds > 0.0 &&
        now - w.task_started > config_.task_wall_limit_seconds) {
      // Deterministic timeout: the task resolves as kTimeout/kWallLimit and
      // is never retried (rerunning it would blow the limit again); the
      // worker is killed because its evaluation cannot be cancelled.
      const std::size_t id = *w.task;
      Task& task = tasks_.at(id);
      TaskReport report;
      report.status = TaskStatus::kTimeout;
      report.cause = FailureCause::kWallLimit;
      report.sim_minutes = farm_.task_timeout_minutes;
      report.attempts = task.attempt;
      report.payload_attempts = 1;
      report.node = i;
      resolve_task(id, std::move(report));
      w.task.reset();
      util::log_warn() << "process cluster: task " << id
                       << " exceeded the wall limit on worker " << i;
      handle_worker_death(i, FailureCause::kWallLimit);
    }
  }
}

void ProcessCluster::dispatch_ready_tasks() {
  const double now = now_seconds();
  for (const std::size_t id : undelivered_) {
    Task& task = tasks_.at(id);
    if (task.phase != TaskPhase::kPending || task.ready_at > now) continue;

    std::size_t target = kNoWorker;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& w = workers_[i];
      if (w.alive && w.connected && !w.task) {
        target = i;
        break;
      }
    }
    if (target == kNoWorker) return;  // every live worker is busy

    Worker& w = workers_[target];
    ++task.attempt;
    task.phase = TaskPhase::kRunning;
    task.worker = target;
    w.task = id;
    w.task_started = now;
    const double straggle = straggler_seconds_for(id);
    if (!net::write_frame(w.fd,
                          net::encode_task(task.spec, straggle).dump())) {
      handle_worker_death(target, FailureCause::kNodeLoss);
      return;  // the requeue reset task state; retry on the next pump
    }
    obs::events().emit("process.dispatch",
                       {{"id", util::Json(id)},
                        {"worker", util::Json(target)},
                        {"attempt", util::Json(task.attempt)}});

    // Real chaos: a scripted kKillWorker event SIGKILLs the worker that just
    // received the matching attempt -- the task is mid-flight on a process
    // that is about to die, exactly the scenario the simulator models.
    if (scripted_kill_matches(id, task.attempt)) {
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
      util::log_info() << "process cluster: fault plan killed worker "
                       << target << " running task " << id << " attempt "
                       << task.attempt;
      handle_worker_death(target, FailureCause::kNodeLoss);
      return;  // iterator into undelivered_ is unaffected, but state moved on
    }
  }
}

void ProcessCluster::degrade_if_stranded() {
  if (!stream_active_) return;
  bool unresolved = false;
  for (const std::size_t id : undelivered_) {
    const TaskPhase phase = tasks_.at(id).phase;
    if (phase == TaskPhase::kPending || phase == TaskPhase::kRunning) {
      unresolved = true;
      break;
    }
  }
  if (!unresolved) return;
  for (const Worker& w : workers_) {
    if (w.alive) return;  // someone can still make progress
  }
  if (!config_.allow_inprocess_fallback) {
    throw util::ValueError("process cluster: no live workers remain");
  }
  if (!degraded_warned_) {
    degraded_warned_ = true;
    util::log_warn() << "process cluster: all " << workers_.size()
                     << " workers are dead; degrading to in-process "
                        "evaluation";
    obs::events().emit("process.degraded",
                       {{"workers", util::Json(workers_.size())}});
  }
  for (const std::size_t id : undelivered_) {
    Task& task = tasks_.at(id);
    if (task.phase != TaskPhase::kPending &&
        task.phase != TaskPhase::kRunning) {
      continue;
    }
    if (!task.local_eval) {
      // A restored task has no closure; it should have been re-submitted.
      throw util::ValueError(
          "process cluster: degraded task has no local evaluator");
    }
    ++task.attempt;
    obs::metrics().counter("process.inprocess_evals_total").add();
    apply_result(id, task.local_eval(task.spec));
  }
}

void ProcessCluster::handle_worker_death(std::size_t index,
                                         FailureCause cause) {
  Worker& w = workers_[index];
  if (!w.alive) return;
  w.alive = false;
  w.connected = false;
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);  // idempotent; ESRCH if it already died
    zombies_.push_back(w.pid);
    w.pid = -1;
  }
  ++node_failures_;
  obs::metrics().counter("process.worker_deaths_total").add();
  record_worker_gauges(live_workers());
  obs::events().emit("process.worker_death",
                     {{"worker", util::Json(index)},
                      {"cause", util::Json(to_string(cause))}});

  if (w.task) {
    const std::size_t id = *w.task;
    w.task.reset();
    if (tasks_.count(id) != 0 &&
        tasks_.at(id).phase == TaskPhase::kRunning) {
      requeue_or_fail(id, cause == FailureCause::kHungProcess
                              ? FailureCause::kHungProcess
                              : FailureCause::kNodeLoss);
    }
  }
}

void ProcessCluster::requeue_or_fail(std::size_t task_id, FailureCause cause) {
  Task& task = tasks_.at(task_id);
  const std::size_t last_worker = task.worker;
  task.worker = kNoWorker;
  if (task.attempt >= farm_.max_attempts) {
    TaskReport report;
    report.status = TaskStatus::kNodeFailure;
    report.cause = cause;
    report.attempts = task.attempt;
    report.payload_attempts = 1;
    report.node = last_worker == kNoWorker ? 0 : last_worker;
    resolve_task(task_id, std::move(report));
    return;
  }
  task.phase = TaskPhase::kPending;
  // Deterministic retry pacing: the delay is a pure function of the task's
  // evaluation seed and attempt number (hpc/backoff.hpp), never of how other
  // tasks' completions happened to interleave.
  task.ready_at =
      now_seconds() +
      retry_backoff_seconds(task.spec.eval_seed, task.attempt,
                            config_.retry_backoff_base_seconds,
                            config_.retry_backoff_cap_seconds);
  obs::metrics().counter("process.redispatch_total").add();
  obs::events().emit("process.redispatch",
                     {{"id", util::Json(task_id)},
                      {"attempt", util::Json(task.attempt)},
                      {"cause", util::Json(to_string(cause))}});
}

void ProcessCluster::resolve_task(std::size_t task_id, TaskReport report) {
  Task& task = tasks_.at(task_id);
  task.resolved_minutes = session_minutes();
  report.finish_minute = clock_minutes_ + task.resolved_minutes;
  task.report = std::move(report);
  task.phase = TaskPhase::kResolved;
}

void ProcessCluster::apply_result(std::size_t task_id, WorkResult result) {
  Task& task = tasks_.at(task_id);
  if (task.phase == TaskPhase::kResolved ||
      task.phase == TaskPhase::kDelivered) {
    return;  // e.g. a result racing the wall-limit watchdog
  }

  for (const FaultEvent& event : farm_.faults.events) {
    if (event.batch != session_batch_ || event.task != task_id ||
        event.kind != FaultKind::kCorruptPayload) {
      continue;
    }
    result.fitness.clear();
    result.training_error = true;
    result.cause = FailureCause::kPayloadCorruption;
  }

  // Classification mirrors DaskCluster (taskfarm.cpp): a reported failure
  // beats the timeout check, which beats success.
  TaskReport report;
  report.attempts = task.attempt;
  report.payload_attempts = result.attempts;
  report.node = task.worker == kNoWorker ? 0 : task.worker;
  if (result.training_error) {
    report.sim_minutes = std::min(1.0, result.sim_minutes);
    report.status = TaskStatus::kTrainingError;
    report.cause = result.cause != FailureCause::kNone
                       ? result.cause
                       : FailureCause::kTrainingFailure;
  } else if (result.sim_minutes > farm_.task_timeout_minutes) {
    report.sim_minutes = farm_.task_timeout_minutes;
    report.status = TaskStatus::kTimeout;
    report.cause = result.cause != FailureCause::kNone
                       ? result.cause
                       : FailureCause::kWallLimit;
  } else {
    report.sim_minutes = result.sim_minutes;
    report.status = TaskStatus::kOk;
    report.cause = FailureCause::kNone;
    report.fitness = result.fitness;
  }
  resolve_task(task_id, std::move(report));
}

double ProcessCluster::straggler_seconds_for(std::size_t task_id) const {
  double seconds = 0.0;
  for (const FaultEvent& event : farm_.faults.events) {
    if (event.batch == session_batch_ && event.task == task_id &&
        event.kind == FaultKind::kStraggler) {
      seconds += config_.straggler_sleep_seconds * event.factor;
    }
  }
  return seconds;
}

bool ProcessCluster::scripted_kill_matches(std::size_t task_id,
                                           std::size_t attempt) const {
  for (const FaultEvent& event : farm_.faults.events) {
    if (event.kind == FaultKind::kKillWorker &&
        event.batch == session_batch_ && event.task == task_id &&
        event.attempt == attempt) {
      return true;
    }
  }
  return false;
}

void ProcessCluster::reap_zombies() {
  for (std::size_t i = 0; i < zombies_.size();) {
    int status = 0;
    const ::pid_t reaped = ::waitpid(zombies_[i], &status, WNOHANG);
    if (reaped == zombies_[i] || (reaped < 0 && errno == ECHILD)) {
      zombies_.erase(zombies_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

void ProcessCluster::shutdown_workers() {
  for (Worker& w : workers_) {
    if (w.alive && w.connected && w.fd >= 0) {
      net::write_frame(w.fd, net::encode_shutdown().dump());
    }
  }
  // Give workers a short grace window to exit on their own, then SIGKILL.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  for (Worker& w : workers_) {
    if (!w.spawned || w.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const ::pid_t reaped = ::waitpid(w.pid, &status, WNOHANG);
      if (reaped == w.pid || (reaped < 0 && errno == ECHILD)) {
        w.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
        w.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    w.alive = false;
    w.connected = false;
  }
  for (const ::pid_t pid : zombies_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  zombies_.clear();
  for (PendingConn& conn : pending_conns_) ::close(conn.fd);
  pending_conns_.clear();
  listener_.close();
}

// --- Checkpointing ---------------------------------------------------------

FarmSnapshot ProcessCluster::snapshot() const {
  FarmSnapshot snap;
  snap.clock_minutes = clock_minutes_;
  snap.live_workers = live_workers();
  snap.tasks_run_on_node.resize(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = workers_[i];
    snap.tasks_run_on_node[i] =
        (w.spawned && !w.alive) ? static_cast<std::size_t>(-1) : w.tasks_run;
  }
  snap.batches_run = batches_run_;
  snap.stream_active = stream_active_;
  if (stream_active_) {
    snap.stream_now = stream_now_;
    snap.stream_batch = session_batch_;
    snap.stream_node_failures = node_failures_;
    snap.stream_scheduler_restarts = scheduler_restarts_;
    snap.stream_free_at.assign(workers_.size(), 0.0);
    for (const std::size_t id : undelivered_) {
      const Task& task = tasks_.at(id);
      InFlightTask entry;
      entry.id = id;
      if (task.phase == TaskPhase::kResolved) {
        entry.finish_at = task.resolved_minutes;
        entry.report = task.report;
      } else {
        // A live worker's half-finished evaluation cannot be serialized; the
        // sentinel tells restore() to report the id back for re-submission.
        entry.finish_at = kUnresolvedFinishAt;
      }
      snap.stream_in_flight.push_back(std::move(entry));
    }
    snap.stream_delivered = delivered_;
  }
  return snap;
}

std::vector<std::size_t> ProcessCluster::restore(const FarmSnapshot& snap) {
  if (snap.tasks_run_on_node.size() != workers_.size()) {
    throw util::ValueError(
        "process cluster restore: snapshot has " +
        std::to_string(snap.tasks_run_on_node.size()) +
        " nodes but the cluster is configured with " +
        std::to_string(workers_.size()));
  }
  for (const Worker& w : workers_) {
    if (w.spawned) {
      throw util::ValueError(
          "process cluster restore: worker pool already started");
    }
  }

  clock_minutes_ = snap.clock_minutes;
  batches_run_ = snap.batches_run;
  // Dead nodes stay dead across a scheduler relaunch (nannies are disabled);
  // surviving slots get fresh worker processes below.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (snap.tasks_run_on_node[i] == static_cast<std::size_t>(-1)) {
      workers_[i].spawned = true;
      workers_[i].alive = false;
    } else {
      workers_[i].tasks_run = snap.tasks_run_on_node[i];
    }
  }

  std::vector<std::size_t> lost;
  if (snap.stream_active) {
    stream_active_ = true;
    session_batch_ = snap.stream_batch;
    node_failures_ = snap.stream_node_failures;
    scheduler_restarts_ = snap.stream_scheduler_restarts;
    session_offset_minutes_ = snap.stream_now;
    stream_now_ = snap.stream_now;
    delivered_ = snap.stream_delivered;
    degraded_warned_ = false;
    for (const InFlightTask& entry : snap.stream_in_flight) {
      if (entry.finish_at < 0.0) {
        // Unresolved at crash time: the evaluation died with the scheduler.
        lost.push_back(entry.id);
        continue;
      }
      Task task;
      task.spec.id = entry.id;
      task.phase = TaskPhase::kResolved;
      task.report = entry.report;
      task.resolved_minutes = entry.finish_at;
      tasks_.emplace(entry.id, std::move(task));
      undelivered_.insert(entry.id);
    }
    std::sort(lost.begin(), lost.end());
  }
  spawn_missing_workers();
  session_started_ = now_seconds();
  obs::events().emit("process.restore",
                     {{"lost", util::Json(lost.size())},
                      {"delivered", util::Json(delivered_.size())},
                      {"resolved", util::Json(undelivered_.size())}});
  return lost;
}

}  // namespace dpho::hpc
