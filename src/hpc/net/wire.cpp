#include "hpc/net/wire.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace dpho::hpc::net {

std::string message_type(const util::Json& message) {
  if (!message.is_object() || !message.contains("t")) {
    throw util::ParseError("wire message without a \"t\" tag");
  }
  return message.at("t").as_string();
}

std::string encode_u64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t decode_u64(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    throw util::ParseError("bad u64 hex field: \"" + hex + "\"");
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + hex.size()) {
    throw util::ParseError("bad u64 hex field: \"" + hex + "\"");
  }
  return static_cast<std::uint64_t>(value);
}

util::Json encode_hello(std::size_t token, std::int64_t pid) {
  util::Json msg;
  msg["t"] = kMsgHello;
  msg["token"] = token;
  msg["pid"] = pid;
  return msg;
}

util::Json encode_init(const std::string& eval_config_json,
                       double heartbeat_interval_seconds) {
  util::Json msg;
  msg["t"] = kMsgInit;
  msg["eval_config"] = eval_config_json.empty()
                           ? util::Json(util::JsonObject{})
                           : util::Json::parse(eval_config_json);
  msg["heartbeat_interval_seconds"] = heartbeat_interval_seconds;
  return msg;
}

util::Json encode_heartbeat(std::uint64_t seq) {
  util::Json msg;
  msg["t"] = kMsgHeartbeat;
  msg["seq"] = encode_u64(seq);
  return msg;
}

util::Json encode_task(const TaskSpec& spec, double straggler_seconds) {
  util::Json msg;
  msg["t"] = kMsgTask;
  msg["id"] = spec.id;
  util::JsonArray genome;
  for (double gene : spec.genome) genome.emplace_back(gene);
  msg["genome"] = util::Json(std::move(genome));
  msg["eval_seed"] = encode_u64(spec.eval_seed);
  msg["uuid"] = spec.uuid;
  if (straggler_seconds > 0.0) msg["straggler_seconds"] = straggler_seconds;
  return msg;
}

util::Json encode_result(std::size_t id, const WorkResult& result) {
  util::Json msg;
  msg["t"] = kMsgResult;
  msg["id"] = id;
  util::JsonArray fitness;
  for (double f : result.fitness) fitness.emplace_back(f);
  msg["fitness"] = util::Json(std::move(fitness));
  msg["sim_minutes"] = result.sim_minutes;
  msg["training_error"] = result.training_error;
  msg["cause"] = to_string(result.cause);
  msg["attempts"] = result.attempts;
  return msg;
}

util::Json encode_shutdown() {
  util::Json msg;
  msg["t"] = kMsgShutdown;
  return msg;
}

std::size_t hello_token(const util::Json& message) {
  return static_cast<std::size_t>(message.at("token").as_int());
}

TaskSpec decode_task(const util::Json& message) {
  TaskSpec spec;
  spec.id = static_cast<std::size_t>(message.at("id").as_int());
  for (const util::Json& gene : message.at("genome").as_array()) {
    spec.genome.push_back(gene.as_number());
  }
  spec.eval_seed = decode_u64(message.at("eval_seed").as_string());
  spec.uuid = message.at("uuid").as_string();
  return spec;
}

double task_straggler_seconds(const util::Json& message) {
  return message.number_or("straggler_seconds", 0.0);
}

std::size_t result_id(const util::Json& message) {
  return static_cast<std::size_t>(message.at("id").as_int());
}

WorkResult decode_result(const util::Json& message) {
  WorkResult result;
  for (const util::Json& f : message.at("fitness").as_array()) {
    result.fitness.push_back(f.as_number());
  }
  result.sim_minutes = message.at("sim_minutes").as_number();
  result.training_error = message.at("training_error").as_bool();
  result.cause = failure_cause_from_string(message.at("cause").as_string());
  result.attempts = static_cast<std::size_t>(message.number_or("attempts", 1.0));
  return result;
}

}  // namespace dpho::hpc::net
