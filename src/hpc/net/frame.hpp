// Length-prefixed message framing over local TCP sockets.
//
// The wire layer of hpc::ProcessCluster: the scheduler listens on a loopback
// ephemeral port, each dpho_worker subprocess connects back, and both sides
// exchange frames -- a 4-byte big-endian length followed by that many bytes
// of compact JSON.  The framing is deliberately dumb: no versioning beyond
// the JSON payload's "t" tag, no compression, no TLS -- workers are local
// children of the scheduler process, exactly like the paper's one-node Dask
// deployment (section 2.2.5) where scheduler and workers share the batch
// node.
//
// All reads are non-blocking and poll-driven: FrameReader accumulates
// whatever bytes are available and yields complete frames, so the scheduler
// event loop can multiplex many workers plus heartbeat/watchdog deadlines
// from a single thread.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace dpho::hpc::net {

/// Maximum accepted frame payload (16 MiB); a length prefix beyond this is
/// treated as a protocol violation (the peer is declared dead).
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

/// A loopback TCP listener on an ephemeral port.  Non-copyable; closes the
/// socket on destruction.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:0 and listens; throws util::IoError on failure.
  void open();

  /// Closes the socket (idempotent).
  void close();

  /// Closes and re-opens on a fresh ephemeral port -- the real backend of
  /// FaultKind::kSchedulerRestart.  Established connections survive; only
  /// the accept queue is torn down.
  void rebind();

  /// Accepts one pending connection without blocking; returns the new
  /// non-blocking fd, or -1 when none is pending.
  int accept_nonblocking() const;

  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port` (blocking) and returns the fd; throws
/// util::IoError on failure.  Used by the worker side.
int connect_loopback(std::uint16_t port);

/// Makes `fd` non-blocking; throws util::IoError on failure.
void set_nonblocking(int fd);

/// Writes one complete frame (length prefix + payload).  Blocks until the
/// frame is fully queued (local sockets: effectively immediate) and returns
/// false when the peer is gone (EPIPE/ECONNRESET) instead of raising
/// SIGPIPE.  Throws util::IoError on unexpected errors.
bool write_frame(int fd, const std::string& payload);

/// Reads one complete frame from a *blocking* fd (the worker side's view of
/// the scheduler connection).  Returns nullopt on orderly EOF or connection
/// reset; throws util::IoError on unexpected errors or protocol violations.
/// `max_payload` caps the declared length (checked before the payload buffer
/// is allocated).
std::optional<std::string> read_frame(int fd,
                                      std::uint32_t max_payload = kMaxFramePayload);

/// Why a FrameReader stopped accepting input.
enum class FrameError {
  kNone,       // connection healthy
  kClosed,     // orderly EOF from the peer
  kReset,      // connection reset or unexpected recv error
  kOversized,  // declared frame length exceeded the reader's cap
};

std::string to_string(FrameError error);

/// Incremental frame decoder for one connection.
class FrameReader {
 public:
  FrameReader() = default;
  /// Caps the declared payload length this reader accepts.  The cap is
  /// enforced against the 4-byte length prefix as soon as it arrives --
  /// BEFORE any payload-sized allocation -- so a hostile or corrupt peer
  /// cannot drive an unbounded resize; violation surfaces as
  /// FrameError::kOversized rather than being conflated with EOF.
  explicit FrameReader(std::uint32_t max_payload) : max_payload_(max_payload) {}

  /// Drains every byte currently readable from `fd` (non-blocking).
  /// Returns false when the peer closed the connection or violated the
  /// protocol (see error()); decoded frames remain available.
  bool drain(int fd);

  /// Pops the next complete frame payload, if any.
  std::optional<std::string> next();

  bool closed() const { return error_ != FrameError::kNone; }
  FrameError error() const { return error_; }
  std::uint32_t max_payload() const { return max_payload_; }
  /// The offending declared length after a kOversized error (diagnostics).
  std::uint32_t oversized_length() const { return oversized_length_; }

 private:
  void slice_frames();

  std::uint32_t max_payload_ = kMaxFramePayload;
  std::vector<char> buffer_;
  std::deque<std::string> frames_;
  FrameError error_ = FrameError::kNone;
  std::uint32_t oversized_length_ = 0;
};

}  // namespace dpho::hpc::net
