// Message codec for the scheduler <-> worker wire protocol.
//
// Every frame payload (net/frame.hpp) is one compact JSON object tagged by
// "t".  The vocabulary is deliberately small:
//
//   worker -> scheduler
//     {"t":"hello","token":3,"pid":4711}     first frame after connect
//     {"t":"hb","seq":17}                    heartbeat (liveness proof)
//     {"t":"result","id":5,...}              one finished evaluation
//
//   scheduler -> worker
//     {"t":"init","eval_config":{...},"heartbeat_interval_ms":50}
//     {"t":"task","id":5,"genome":[...],"eval_seed":"1a2b...","uuid":"...",
//      "straggler_seconds":0}                one evaluation to run
//     {"t":"shutdown"}                       orderly exit
//
// eval_seed travels as a hex string: JSON numbers are doubles and cannot
// hold a 64-bit seed losslessly.  straggler_seconds is the real injection
// backend of FaultKind::kStraggler -- the worker sleeps that long before
// evaluating, exactly where the simulator multiplies the runtime.
#pragma once

#include <cstdint>
#include <string>

#include "hpc/cluster_session.hpp"
#include "util/json.hpp"

namespace dpho::hpc::net {

/// Message type tags ("t" values).
inline constexpr const char* kMsgHello = "hello";
inline constexpr const char* kMsgInit = "init";
inline constexpr const char* kMsgHeartbeat = "hb";
inline constexpr const char* kMsgTask = "task";
inline constexpr const char* kMsgResult = "result";
inline constexpr const char* kMsgShutdown = "shutdown";

/// The "t" tag of a decoded message; throws util::ParseError when missing.
std::string message_type(const util::Json& message);

/// Lossless 64-bit <-> hex-string conversion for seeds (JSON numbers are
/// doubles).
std::string encode_u64(std::uint64_t value);
std::uint64_t decode_u64(const std::string& hex);

util::Json encode_hello(std::size_t token, std::int64_t pid);
util::Json encode_init(const std::string& eval_config_json,
                       double heartbeat_interval_seconds);
util::Json encode_heartbeat(std::uint64_t seq);
util::Json encode_task(const TaskSpec& spec, double straggler_seconds);
util::Json encode_result(std::size_t id, const WorkResult& result);
util::Json encode_shutdown();

/// Field extraction; each throws util::ParseError on malformed messages.
std::size_t hello_token(const util::Json& message);
TaskSpec decode_task(const util::Json& message);
double task_straggler_seconds(const util::Json& message);
std::size_t result_id(const util::Json& message);
WorkResult decode_result(const util::Json& message);

}  // namespace dpho::hpc::net
