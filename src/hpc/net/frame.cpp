#include "hpc/net/frame.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace dpho::hpc::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw util::IoError(what + ": " + std::strerror(errno));
}

// Every scheduler-side socket must be close-on-exec: forked workers would
// otherwise inherit each other's connections, and a dead worker's fd would
// never reach EOF (a live sibling still holds a duplicate).
void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0) {
    throw_errno("fcntl FD_CLOEXEC");
  }
}

}  // namespace

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

void Listener::open() {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("listener socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned ephemeral port
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("listener bind");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listener listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw_errno("listener getsockname");
  }
  set_nonblocking(fd);
  set_cloexec(fd);
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

void Listener::rebind() { open(); }

int Listener::accept_nonblocking() const {
  if (fd_ < 0) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
    throw_errno("listener accept");
  }
  set_nonblocking(client);
  set_cloexec(client);
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("connect socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    throw_errno("connect to 127.0.0.1:" + std::to_string(port));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw util::ValueError("frame payload exceeds " +
                           std::to_string(kMaxFramePayload) + " bytes");
  }
  std::string wire;
  wire.reserve(4 + payload.size());
  const auto length = static_cast<std::uint32_t>(payload.size());
  wire.push_back(static_cast<char>((length >> 24) & 0xFF));
  wire.push_back(static_cast<char>((length >> 16) & 0xFF));
  wire.push_back(static_cast<char>((length >> 8) & 0xFF));
  wire.push_back(static_cast<char>(length & 0xFF));
  wire += payload;

  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Local sockets drain fast; wait for writability rather than spin.
      fd_set writable;
      FD_ZERO(&writable);
      FD_SET(fd, &writable);
      timeval tv{1, 0};
      if (::select(fd + 1, nullptr, &writable, nullptr, &tv) < 0 &&
          errno != EINTR) {
        throw_errno("frame select");
      }
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    throw_errno("frame send");
  }
  return true;
}

namespace {

/// Reads exactly `count` bytes from a blocking fd; false on EOF/reset.
bool read_exact(int fd, char* out, std::size_t count) {
  std::size_t got = 0;
  while (got < count) {
    const ssize_t n = ::recv(fd, out + got, count - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return false;
    throw_errno("frame recv");
  }
  return true;
}

}  // namespace

namespace {

std::uint32_t decode_length(const char* header) {
  const auto* p = reinterpret_cast<const unsigned char*>(header);
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

}  // namespace

std::optional<std::string> read_frame(int fd, std::uint32_t max_payload) {
  char header[4];
  if (!read_exact(fd, header, 4)) return std::nullopt;
  const std::uint32_t length = decode_length(header);
  // Validated before the payload string is sized, so a corrupt prefix cannot
  // trigger a multi-gigabyte allocation.
  if (length > max_payload) {
    throw util::IoError("frame length " + std::to_string(length) +
                        " exceeds the " + std::to_string(max_payload) +
                        "-byte cap");
  }
  std::string payload(length, '\0');
  if (length > 0 && !read_exact(fd, payload.data(), length)) return std::nullopt;
  return payload;
}

std::string to_string(FrameError error) {
  switch (error) {
    case FrameError::kNone:
      return "none";
    case FrameError::kClosed:
      return "closed";
    case FrameError::kReset:
      return "reset";
    case FrameError::kOversized:
      return "oversized";
  }
  return "unknown";
}

bool FrameReader::drain(int fd) {
  if (error_ != FrameError::kNone) return false;
  char chunk[4096];
  for (;;) {
    // Slicing between chunks validates each pending length prefix as soon as
    // its 4 bytes arrive, so an oversized declaration stops the read loop
    // before the peer can make us buffer (let alone allocate) its payload.
    slice_frames();
    if (error_ == FrameError::kOversized) return false;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      error_ = FrameError::kClosed;  // orderly shutdown by the peer
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    error_ = FrameError::kReset;  // treat the peer as gone
    break;
  }
  slice_frames();
  return error_ == FrameError::kNone;
}

void FrameReader::slice_frames() {
  // Slice complete frames off the front of the buffer.
  std::size_t offset = 0;
  while (buffer_.size() - offset >= 4) {
    const std::uint32_t length = decode_length(buffer_.data() + offset);
    if (length > max_payload_) {
      if (error_ == FrameError::kNone) {
        error_ = FrameError::kOversized;
        oversized_length_ = length;
      }
      break;
    }
    if (buffer_.size() - offset - 4 < length) break;
    frames_.emplace_back(buffer_.data() + offset + 4, length);
    offset += 4 + length;
  }
  if (offset > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

std::optional<std::string> FrameReader::next() {
  if (frames_.empty()) return std::nullopt;
  std::string frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

}  // namespace dpho::hpc::net
