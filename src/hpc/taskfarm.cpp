#include "hpc/taskfarm.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"
#include "util/log.hpp"

namespace dpho::hpc {

std::string to_string(TaskStatus status) {
  switch (status) {
    case TaskStatus::kOk: return "ok";
    case TaskStatus::kTimeout: return "timeout";
    case TaskStatus::kTrainingError: return "training_error";
    case TaskStatus::kNodeFailure: return "node_failure";
  }
  throw util::ValueError("invalid task status");
}

std::string to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone: return "none";
    case FailureCause::kTrainingFailure: return "training_failure";
    case FailureCause::kNonZeroExit: return "nonzero_exit";
    case FailureCause::kWallLimit: return "wall_limit";
    case FailureCause::kHungProcess: return "hung_process";
    case FailureCause::kMissingArtifact: return "missing_artifact";
    case FailureCause::kCorruptArtifact: return "corrupt_artifact";
    case FailureCause::kNonFiniteFitness: return "nonfinite_fitness";
    case FailureCause::kException: return "exception";
    case FailureCause::kNodeLoss: return "node_loss";
    case FailureCause::kMpiRelaunch: return "mpi_relaunch";
    case FailureCause::kPayloadCorruption: return "payload_corruption";
  }
  throw util::ValueError("invalid failure cause");
}

DaskCluster::DaskCluster(const ClusterSpec& cluster, const FarmConfig& config)
    : cluster_(cluster), config_(config), rng_(config.seed),
      pool_(std::max<std::size_t>(config.real_threads, 1)),
      live_workers_(config.job.nodes),
      tasks_run_on_node_(config.job.nodes, 0) {
  if (config.job.nodes == 0) throw util::ValueError("job needs at least one node");
  if (config.job.nodes > cluster.total_nodes) {
    throw util::ValueError("job requests more nodes than the cluster has");
  }
}

double DaskCluster::remaining_minutes() const {
  return std::max(0.0, config_.job.wall_limit_minutes - clock_minutes_);
}

FarmSnapshot DaskCluster::snapshot() const {
  FarmSnapshot snap;
  snap.clock_minutes = clock_minutes_;
  snap.live_workers = live_workers_;
  snap.tasks_run_on_node = tasks_run_on_node_;
  snap.rng = rng_.save_state();
  snap.batches_run = batches_run_;
  return snap;
}

void DaskCluster::restore(const FarmSnapshot& snapshot) {
  if (snapshot.tasks_run_on_node.size() != tasks_run_on_node_.size()) {
    throw util::ValueError("farm snapshot node count mismatch");
  }
  clock_minutes_ = snapshot.clock_minutes;
  live_workers_ = snapshot.live_workers;
  tasks_run_on_node_ = snapshot.tasks_run_on_node;
  rng_.restore_state(snapshot.rng);
  batches_run_ = snapshot.batches_run;
}

BatchReport DaskCluster::run_batch(std::size_t num_tasks, const WorkFn& work) {
  const std::size_t batch = batches_run_++;
  BatchReport report;
  report.tasks.resize(num_tasks);
  if (num_tasks == 0) {
    report.workers_remaining = live_workers_;
    return report;
  }
  if (live_workers_ == 0) throw util::ValueError("no live workers remain");

  // 1. Execute the real payloads in parallel: the CPU work is independent of
  //    the simulated timeline.
  std::vector<WorkResult> results(num_tasks);
  pool_.parallel_for(num_tasks, [&](std::size_t i) { results[i] = work(i); });

  // 1b. Scripted payload-level faults (stragglers, corruption) and scheduler
  //     outages for this batch.
  double scheduler_delay = 0.0;
  for (const FaultEvent& event : config_.faults.events) {
    if (event.batch != batch) continue;
    switch (event.kind) {
      case FaultKind::kStraggler:
        if (event.task < num_tasks) results[event.task].sim_minutes *= event.factor;
        break;
      case FaultKind::kCorruptPayload:
        if (event.task < num_tasks) {
          results[event.task].fitness.clear();
          results[event.task].training_error = true;
          results[event.task].cause = FailureCause::kPayloadCorruption;
        }
        break;
      case FaultKind::kSchedulerRestart:
        scheduler_delay = std::max(scheduler_delay, event.delay_minutes);
        ++report.scheduler_restarts;
        util::log_info() << "taskfarm: scheduler restart at batch " << batch
                         << ", workers idle for " << event.delay_minutes << " min";
        break;
      case FaultKind::kKillWorker:
        break;  // handled attempt-by-attempt below
    }
  }
  const auto scripted_kill = [&](std::size_t task, std::size_t attempt) {
    for (const FaultEvent& event : config_.faults.events) {
      if (event.kind == FaultKind::kKillWorker && event.batch == batch &&
          event.task == task && event.attempt == attempt) {
        return true;
      }
    }
    return false;
  };

  // 2. Discrete-event replay onto the simulated workers.
  struct WorkerSlot {
    double free_at = 0.0;
    std::size_t node = 0;
    bool operator>(const WorkerSlot& other) const { return free_at > other.free_at; }
  };
  std::priority_queue<WorkerSlot, std::vector<WorkerSlot>, std::greater<>> workers;
  std::size_t live = 0;
  for (std::size_t node = 0; node < tasks_run_on_node_.size(); ++node) {
    if (tasks_run_on_node_[node] == static_cast<std::size_t>(-1)) continue;  // dead
    workers.push(WorkerSlot{scheduler_delay, node});
    ++live;
  }

  std::queue<std::pair<std::size_t, std::size_t>> pending;  // task, attempt
  for (std::size_t i = 0; i < num_tasks; ++i) pending.emplace(i, 1);

  double makespan = scheduler_delay;
  while (!pending.empty()) {
    if (workers.empty()) {
      // Every node died; remaining tasks are unrecoverable.
      while (!pending.empty()) {
        TaskReport& tr = report.tasks[pending.front().first];
        tr.status = TaskStatus::kNodeFailure;
        tr.cause = FailureCause::kNodeLoss;
        tr.attempts = pending.front().second;
        tr.payload_attempts = results[pending.front().first].attempts;
        pending.pop();
      }
      break;
    }
    auto [task, attempt] = pending.front();
    pending.pop();
    WorkerSlot slot = workers.top();
    workers.pop();

    TaskReport& tr = report.tasks[task];
    tr.attempts = attempt;
    tr.payload_attempts = results[task].attempts;
    tr.node = slot.node;
    const WorkResult& result = results[task];

    // Node-failure injection (nannies disabled: the node never comes back):
    // either scripted by the fault plan or drawn from the random model.
    const bool killed = scripted_kill(task, attempt);
    if (killed || rng_.bernoulli(config_.node_failure_probability)) {
      const double run_cap = std::min(result.sim_minutes, config_.task_timeout_minutes);
      const double elapsed = killed ? 0.5 * run_cap : rng_.uniform(0.0, run_cap);
      makespan = std::max(makespan, slot.free_at + elapsed);
      tasks_run_on_node_[slot.node] = static_cast<std::size_t>(-1);
      --live;
      ++report.node_failures;
      util::log_info() << "taskfarm: node " << slot.node << " died; reassigning task "
                       << task;
      if (attempt < config_.max_attempts) {
        pending.emplace(task, attempt + 1);
      } else {
        tr.status = TaskStatus::kNodeFailure;
        tr.cause = FailureCause::kNodeLoss;
        tr.finish_minute = clock_minutes_ + slot.free_at + elapsed;
      }
      continue;
    }

    // The MPI-relaunch rule: workers resident on compute nodes cannot start a
    // second MPI_init-based training (section 2.2.5).
    const bool mpi_blocked = config_.job.placement == WorkerPlacement::kComputeNode &&
                             tasks_run_on_node_[slot.node] > 0;

    if (mpi_blocked || result.training_error) {
      // Fast failure: the dp subprocess exits almost immediately.
      const double failure_minutes = std::min(1.0, result.sim_minutes);
      slot.free_at += failure_minutes;
      tr.status = TaskStatus::kTrainingError;
      tr.cause = mpi_blocked ? FailureCause::kMpiRelaunch
                 : result.cause != FailureCause::kNone ? result.cause
                                                       : FailureCause::kTrainingFailure;
      tr.sim_minutes = failure_minutes;
      tr.finish_minute = clock_minutes_ + slot.free_at;
    } else if (result.sim_minutes > config_.task_timeout_minutes) {
      slot.free_at += config_.task_timeout_minutes;
      tr.status = TaskStatus::kTimeout;
      tr.cause = result.cause != FailureCause::kNone ? result.cause
                                                     : FailureCause::kWallLimit;
      tr.sim_minutes = config_.task_timeout_minutes;
      tr.finish_minute = clock_minutes_ + slot.free_at;
    } else {
      slot.free_at += result.sim_minutes;
      tr.status = TaskStatus::kOk;
      tr.cause = FailureCause::kNone;
      tr.sim_minutes = result.sim_minutes;
      tr.fitness = result.fitness;
      tr.finish_minute = clock_minutes_ + slot.free_at;
    }
    ++tasks_run_on_node_[slot.node];
    makespan = std::max(makespan, slot.free_at);
    workers.push(slot);
  }

  live_workers_ = live;
  report.workers_remaining = live;
  report.makespan_minutes = makespan;
  clock_minutes_ += makespan;
  return report;
}

}  // namespace dpho::hpc
