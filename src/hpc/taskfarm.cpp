#include "hpc/taskfarm.hpp"

#include <algorithm>
#include <queue>

#include "hpc/backoff.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dpho::hpc {

namespace {

/// Layout shared by all simulated-minutes histograms: 0.5 min .. ~17 h.
const obs::BucketLayout& sim_minutes_layout() {
  static const obs::BucketLayout layout = obs::BucketLayout::exponential(0.5, 2.0, 12);
  return layout;
}

/// Records one resolved task into the deterministic metrics section and the
/// event timeline.  Called only from the single-threaded discrete-event
/// resolution paths, so counter/histogram updates happen in a fixed order.
void record_task_metrics(std::size_t id, const TaskReport& report) {
  auto& registry = obs::metrics();
  registry.counter("farm.tasks_total").add(1);
  registry.counter("farm.task_retries_total")
      .add(report.attempts > 0 ? static_cast<std::int64_t>(report.attempts) - 1 : 0);
  registry.counter("farm.task_failures_total")
      .add(report.status == TaskStatus::kOk ? 0 : 1);
  registry
      .histogram("farm.task_sim_minutes", sim_minutes_layout(),
                 obs::Section::kDeterministic)
      .record(report.sim_minutes);
  obs::events().emit("farm.task",
                     {{"id", static_cast<std::int64_t>(id)},
                      {"status", to_string(report.status)},
                      {"cause", to_string(report.cause)},
                      {"attempts", static_cast<std::int64_t>(report.attempts)},
                      {"node", static_cast<std::int64_t>(report.node)},
                      {"sim_minutes", report.sim_minutes},
                      {"finish_minute", report.finish_minute}});
}

/// Simulated minutes a killed attempt ran before the node died.  Scripted
/// kills use a fixed half-run; random kills derive the fraction from the
/// task's evaluation seed and attempt index, NOT from the farm's shared RNG
/// stream -- a shared stream would make retry timing depend on global draw
/// order (i.e. on completion interleaving), destroying reproducibility.
double kill_elapsed_minutes(bool scripted, double run_cap,
                            std::uint64_t eval_seed, std::size_t task,
                            std::size_t attempt) {
  if (scripted) return 0.5 * run_cap;
  const std::uint64_t key = util::hash_combine(
      eval_seed, util::hash_combine(util::hash_mix(task), attempt));
  return run_cap * seeded_unit(key);
}

/// Batch-level roll-up: failures, restarts, and how busy the (simulated)
/// allocation was while the batch ran.
void record_batch_metrics(const BatchReport& report, std::size_t total_nodes) {
  auto& registry = obs::metrics();
  registry.counter("farm.batches_total").add(1);
  registry.counter("farm.node_failures_total")
      .add(static_cast<std::int64_t>(report.node_failures));
  registry.counter("farm.scheduler_restarts_total")
      .add(static_cast<std::int64_t>(report.scheduler_restarts));
  double busy_minutes = 0.0;
  for (const TaskReport& task : report.tasks) busy_minutes += task.sim_minutes;
  const double capacity = report.makespan_minutes * static_cast<double>(total_nodes);
  registry.gauge("farm.busy_fraction")
      .set(capacity > 0.0 ? busy_minutes / capacity : 0.0);
}

}  // namespace

std::string to_string(TaskStatus status) {
  switch (status) {
    case TaskStatus::kOk: return "ok";
    case TaskStatus::kTimeout: return "timeout";
    case TaskStatus::kTrainingError: return "training_error";
    case TaskStatus::kNodeFailure: return "node_failure";
  }
  throw util::ValueError("invalid task status");
}

TaskStatus task_status_from_string(const std::string& name) {
  for (const TaskStatus status :
       {TaskStatus::kOk, TaskStatus::kTimeout, TaskStatus::kTrainingError,
        TaskStatus::kNodeFailure}) {
    if (to_string(status) == name) return status;
  }
  throw util::ParseError("unknown task status: " + name);
}

std::string to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone: return "none";
    case FailureCause::kTrainingFailure: return "training_failure";
    case FailureCause::kNonZeroExit: return "nonzero_exit";
    case FailureCause::kWallLimit: return "wall_limit";
    case FailureCause::kHungProcess: return "hung_process";
    case FailureCause::kMissingArtifact: return "missing_artifact";
    case FailureCause::kCorruptArtifact: return "corrupt_artifact";
    case FailureCause::kNonFiniteFitness: return "nonfinite_fitness";
    case FailureCause::kException: return "exception";
    case FailureCause::kNodeLoss: return "node_loss";
    case FailureCause::kMpiRelaunch: return "mpi_relaunch";
    case FailureCause::kPayloadCorruption: return "payload_corruption";
  }
  throw util::ValueError("invalid failure cause");
}

FailureCause failure_cause_from_string(const std::string& name) {
  for (const FailureCause cause :
       {FailureCause::kNone, FailureCause::kTrainingFailure,
        FailureCause::kNonZeroExit, FailureCause::kWallLimit,
        FailureCause::kHungProcess, FailureCause::kMissingArtifact,
        FailureCause::kCorruptArtifact, FailureCause::kNonFiniteFitness,
        FailureCause::kException, FailureCause::kNodeLoss,
        FailureCause::kMpiRelaunch, FailureCause::kPayloadCorruption}) {
    if (to_string(cause) == name) return cause;
  }
  throw util::ParseError("unknown failure cause: " + name);
}

DaskCluster::DaskCluster(const ClusterSpec& cluster, const FarmConfig& config)
    : cluster_(cluster), config_(config), rng_(config.seed),
      pool_(std::max<std::size_t>(config.real_threads, 1)),
      live_workers_(config.job.nodes),
      tasks_run_on_node_(config.job.nodes, 0) {
  if (config.job.nodes == 0) throw util::ValueError("job needs at least one node");
  if (config.job.nodes > cluster.total_nodes) {
    throw util::ValueError("job requests more nodes than the cluster has");
  }
}

double DaskCluster::remaining_minutes() const {
  return std::max(0.0, config_.job.wall_limit_minutes - clock_minutes_);
}

FarmSnapshot DaskCluster::snapshot() const {
  FarmSnapshot snap;
  snap.clock_minutes = clock_minutes_;
  snap.live_workers = live_workers_;
  snap.tasks_run_on_node = tasks_run_on_node_;
  snap.rng = rng_.save_state();
  snap.batches_run = batches_run_;
  snap.stream_active = stream_active_;
  snap.stream_now = stream_now_;
  snap.stream_batch = stream_batch_;
  snap.stream_node_failures = stream_node_failures_;
  snap.stream_scheduler_restarts = stream_scheduler_restarts_;
  snap.stream_free_at = stream_free_at_;
  snap.stream_in_flight = stream_in_flight_;
  snap.stream_delivered = stream_delivered_;
  return snap;
}

void DaskCluster::restore(const FarmSnapshot& snapshot) {
  // Validate the snapshot's shape against this farm's configuration before
  // touching any state: resuming from a checkpoint taken on a differently
  // sized cluster would otherwise index out of the node-health map mid-run.
  const std::size_t nodes = tasks_run_on_node_.size();
  if (snapshot.tasks_run_on_node.size() != nodes) {
    throw util::ValueError(
        "farm snapshot node count mismatch: snapshot holds " +
        std::to_string(snapshot.tasks_run_on_node.size()) +
        " nodes, this farm is configured for " + std::to_string(nodes));
  }
  if (snapshot.live_workers > nodes) {
    throw util::ValueError("farm snapshot reports " +
                           std::to_string(snapshot.live_workers) +
                           " live workers on a " + std::to_string(nodes) +
                           "-node farm");
  }
  if (snapshot.stream_active && snapshot.stream_free_at.size() != nodes) {
    throw util::ValueError(
        "farm snapshot stream_free_at size mismatch: snapshot holds " +
        std::to_string(snapshot.stream_free_at.size()) +
        " entries, this farm is configured for " + std::to_string(nodes) +
        " nodes");
  }
  for (const InFlightTask& task : snapshot.stream_in_flight) {
    if (task.report.node >= nodes) {
      throw util::ValueError(
          "farm snapshot in-flight task " + std::to_string(task.id) +
          " ran on node " + std::to_string(task.report.node) +
          ", beyond this farm's " + std::to_string(nodes) + " nodes");
    }
  }
  clock_minutes_ = snapshot.clock_minutes;
  live_workers_ = snapshot.live_workers;
  tasks_run_on_node_ = snapshot.tasks_run_on_node;
  rng_.restore_state(snapshot.rng);
  batches_run_ = snapshot.batches_run;
  stream_active_ = snapshot.stream_active;
  stream_now_ = snapshot.stream_now;
  stream_batch_ = snapshot.stream_batch;
  stream_node_failures_ = snapshot.stream_node_failures;
  stream_scheduler_restarts_ = snapshot.stream_scheduler_restarts;
  stream_free_at_ = snapshot.stream_free_at;
  stream_in_flight_ = snapshot.stream_in_flight;
  stream_delivered_ = snapshot.stream_delivered;
}

BatchReport DaskCluster::run_batch(std::size_t num_tasks, const WorkFn& work,
                                   const std::vector<std::uint64_t>& eval_seeds) {
  if (!eval_seeds.empty() && eval_seeds.size() != num_tasks) {
    throw util::ValueError("run_batch: eval_seeds must be empty or one per task");
  }
  const std::size_t batch = batches_run_++;
  BatchReport report;
  report.tasks.resize(num_tasks);
  if (num_tasks == 0) {
    report.workers_remaining = live_workers_;
    return report;
  }
  if (live_workers_ == 0) throw util::ValueError("no live workers remain");

  // 1. Execute the real payloads in parallel: the CPU work is independent of
  //    the simulated timeline.
  std::vector<WorkResult> results(num_tasks);
  pool_.parallel_for(num_tasks, [&](std::size_t i) { results[i] = work(i); });

  // 1b. Scripted payload-level faults (stragglers, corruption) and scheduler
  //     outages for this batch.
  double scheduler_delay = 0.0;
  for (const FaultEvent& event : config_.faults.events) {
    if (event.batch != batch) continue;
    switch (event.kind) {
      case FaultKind::kStraggler:
        if (event.task < num_tasks) results[event.task].sim_minutes *= event.factor;
        break;
      case FaultKind::kCorruptPayload:
        if (event.task < num_tasks) {
          results[event.task].fitness.clear();
          results[event.task].training_error = true;
          results[event.task].cause = FailureCause::kPayloadCorruption;
        }
        break;
      case FaultKind::kSchedulerRestart:
        scheduler_delay = std::max(scheduler_delay, event.delay_minutes);
        ++report.scheduler_restarts;
        util::log_info() << "taskfarm: scheduler restart at batch " << batch
                         << ", workers idle for " << event.delay_minutes << " min";
        break;
      case FaultKind::kKillWorker:
        break;  // handled attempt-by-attempt below
    }
  }
  const auto scripted_kill = [&](std::size_t task, std::size_t attempt) {
    for (const FaultEvent& event : config_.faults.events) {
      if (event.kind == FaultKind::kKillWorker && event.batch == batch &&
          event.task == task && event.attempt == attempt) {
        return true;
      }
    }
    return false;
  };

  // 2. Discrete-event replay onto the simulated workers.
  struct WorkerSlot {
    double free_at = 0.0;
    std::size_t node = 0;
    bool operator>(const WorkerSlot& other) const { return free_at > other.free_at; }
  };
  std::priority_queue<WorkerSlot, std::vector<WorkerSlot>, std::greater<>> workers;
  std::size_t live = 0;
  for (std::size_t node = 0; node < tasks_run_on_node_.size(); ++node) {
    if (tasks_run_on_node_[node] == static_cast<std::size_t>(-1)) continue;  // dead
    workers.push(WorkerSlot{scheduler_delay, node});
    ++live;
  }

  std::queue<std::pair<std::size_t, std::size_t>> pending;  // task, attempt
  for (std::size_t i = 0; i < num_tasks; ++i) pending.emplace(i, 1);

  double makespan = scheduler_delay;
  while (!pending.empty()) {
    if (workers.empty()) {
      // Every node died; remaining tasks are unrecoverable.
      while (!pending.empty()) {
        TaskReport& tr = report.tasks[pending.front().first];
        tr.status = TaskStatus::kNodeFailure;
        tr.cause = FailureCause::kNodeLoss;
        tr.attempts = pending.front().second;
        tr.payload_attempts = results[pending.front().first].attempts;
        pending.pop();
      }
      break;
    }
    auto [task, attempt] = pending.front();
    pending.pop();
    WorkerSlot slot = workers.top();
    workers.pop();

    TaskReport& tr = report.tasks[task];
    tr.attempts = attempt;
    tr.payload_attempts = results[task].attempts;
    tr.node = slot.node;
    const WorkResult& result = results[task];

    // Node-failure injection (nannies disabled: the node never comes back):
    // either scripted by the fault plan or drawn from the random model.
    const bool killed = scripted_kill(task, attempt);
    if (killed || rng_.bernoulli(config_.node_failure_probability)) {
      const double run_cap = std::min(result.sim_minutes, config_.task_timeout_minutes);
      const double elapsed = kill_elapsed_minutes(
          killed, run_cap, eval_seeds.empty() ? 0 : eval_seeds[task], task,
          attempt);
      makespan = std::max(makespan, slot.free_at + elapsed);
      tasks_run_on_node_[slot.node] = static_cast<std::size_t>(-1);
      --live;
      ++report.node_failures;
      util::log_info() << "taskfarm: node " << slot.node << " died; reassigning task "
                       << task;
      if (attempt < config_.max_attempts) {
        pending.emplace(task, attempt + 1);
      } else {
        tr.status = TaskStatus::kNodeFailure;
        tr.cause = FailureCause::kNodeLoss;
        tr.finish_minute = clock_minutes_ + slot.free_at + elapsed;
      }
      continue;
    }

    // The MPI-relaunch rule: workers resident on compute nodes cannot start a
    // second MPI_init-based training (section 2.2.5).
    const bool mpi_blocked = config_.job.placement == WorkerPlacement::kComputeNode &&
                             tasks_run_on_node_[slot.node] > 0;

    if (mpi_blocked || result.training_error) {
      // Fast failure: the dp subprocess exits almost immediately.
      const double failure_minutes = std::min(1.0, result.sim_minutes);
      slot.free_at += failure_minutes;
      tr.status = TaskStatus::kTrainingError;
      tr.cause = mpi_blocked ? FailureCause::kMpiRelaunch
                 : result.cause != FailureCause::kNone ? result.cause
                                                       : FailureCause::kTrainingFailure;
      tr.sim_minutes = failure_minutes;
      tr.finish_minute = clock_minutes_ + slot.free_at;
    } else if (result.sim_minutes > config_.task_timeout_minutes) {
      slot.free_at += config_.task_timeout_minutes;
      tr.status = TaskStatus::kTimeout;
      tr.cause = result.cause != FailureCause::kNone ? result.cause
                                                     : FailureCause::kWallLimit;
      tr.sim_minutes = config_.task_timeout_minutes;
      tr.finish_minute = clock_minutes_ + slot.free_at;
    } else {
      slot.free_at += result.sim_minutes;
      tr.status = TaskStatus::kOk;
      tr.cause = FailureCause::kNone;
      tr.sim_minutes = result.sim_minutes;
      tr.fitness = result.fitness;
      tr.finish_minute = clock_minutes_ + slot.free_at;
    }
    ++tasks_run_on_node_[slot.node];
    makespan = std::max(makespan, slot.free_at);
    workers.push(slot);
  }

  live_workers_ = live;
  report.workers_remaining = live;
  report.makespan_minutes = makespan;
  clock_minutes_ += makespan;
  for (std::size_t i = 0; i < report.tasks.size(); ++i) {
    record_task_metrics(i, report.tasks[i]);
  }
  record_batch_metrics(report, tasks_run_on_node_.size());
  return report;
}

void DaskCluster::stream_begin() {
  if (stream_active_) throw util::ValueError("stream session already active");
  if (live_workers_ == 0) throw util::ValueError("no live workers remain");
  stream_active_ = true;
  stream_batch_ = batches_run_++;
  stream_now_ = 0.0;
  stream_node_failures_ = 0;
  stream_scheduler_restarts_ = 0;
  stream_in_flight_.clear();
  stream_delivered_.clear();

  double scheduler_delay = 0.0;
  for (const FaultEvent& event : config_.faults.events) {
    if (event.batch != stream_batch_ ||
        event.kind != FaultKind::kSchedulerRestart) {
      continue;
    }
    scheduler_delay = std::max(scheduler_delay, event.delay_minutes);
    ++stream_scheduler_restarts_;
    util::log_info() << "taskfarm: scheduler restart at batch " << stream_batch_
                     << ", workers idle for " << event.delay_minutes << " min";
  }
  stream_free_at_.assign(tasks_run_on_node_.size(), scheduler_delay);
}

void DaskCluster::stream_submit(std::size_t id, WorkResult result,
                                std::uint64_t eval_seed) {
  if (!stream_active_) throw util::ValueError("no stream session active");

  // Payload-level scripted faults, keyed (session batch, task id) exactly as
  // run_batch keys (batch, task index).
  for (const FaultEvent& event : config_.faults.events) {
    if (event.batch != stream_batch_ || event.task != id) continue;
    switch (event.kind) {
      case FaultKind::kStraggler:
        result.sim_minutes *= event.factor;
        break;
      case FaultKind::kCorruptPayload:
        result.fitness.clear();
        result.training_error = true;
        result.cause = FailureCause::kPayloadCorruption;
        break;
      case FaultKind::kKillWorker:
      case FaultKind::kSchedulerRestart:
        break;
    }
  }
  const auto scripted_kill = [&](std::size_t attempt) {
    for (const FaultEvent& event : config_.faults.events) {
      if (event.kind == FaultKind::kKillWorker && event.batch == stream_batch_ &&
          event.task == id && event.attempt == attempt) {
        return true;
      }
    }
    return false;
  };

  InFlightTask entry;
  entry.id = id;
  TaskReport& tr = entry.report;
  // Causality: the scheduler only submits once it has seen the completion
  // that freed a slot, so no attempt starts before the session clock.
  double ready_at = stream_now_;
  for (std::size_t attempt = 1;; ++attempt) {
    tr.attempts = attempt;
    tr.payload_attempts = result.attempts;
    // Earliest-free live node, ties broken by the lowest index.
    constexpr auto kNoNode = static_cast<std::size_t>(-1);
    std::size_t node = kNoNode;
    for (std::size_t n = 0; n < tasks_run_on_node_.size(); ++n) {
      if (tasks_run_on_node_[n] == kNoNode) continue;  // dead
      if (node == kNoNode || stream_free_at_[n] < stream_free_at_[node]) node = n;
    }
    if (node == kNoNode) {
      // Every node died; the task is unrecoverable.
      tr.status = TaskStatus::kNodeFailure;
      tr.cause = FailureCause::kNodeLoss;
      entry.finish_at = ready_at;
      break;
    }
    tr.node = node;
    const double start = std::max(stream_free_at_[node], ready_at);

    // Node-failure injection (nannies disabled: the node never comes back).
    const bool killed = scripted_kill(attempt);
    if (killed || rng_.bernoulli(config_.node_failure_probability)) {
      const double run_cap =
          std::min(result.sim_minutes, config_.task_timeout_minutes);
      const double elapsed =
          kill_elapsed_minutes(killed, run_cap, eval_seed, id, attempt);
      tasks_run_on_node_[node] = kNoNode;
      --live_workers_;
      ++stream_node_failures_;
      util::log_info() << "taskfarm: node " << node << " died; reassigning task "
                       << id;
      ready_at = start + elapsed;  // the retry waits for the failure signal
      if (attempt < config_.max_attempts) continue;
      tr.status = TaskStatus::kNodeFailure;
      tr.cause = FailureCause::kNodeLoss;
      entry.finish_at = ready_at;
      break;
    }

    // The MPI-relaunch rule: workers resident on compute nodes cannot start
    // a second MPI_init-based training (section 2.2.5).
    const bool mpi_blocked =
        config_.job.placement == WorkerPlacement::kComputeNode &&
        tasks_run_on_node_[node] > 0;
    double duration = 0.0;
    if (mpi_blocked || result.training_error) {
      duration = std::min(1.0, result.sim_minutes);
      tr.status = TaskStatus::kTrainingError;
      tr.cause = mpi_blocked ? FailureCause::kMpiRelaunch
                 : result.cause != FailureCause::kNone
                     ? result.cause
                     : FailureCause::kTrainingFailure;
    } else if (result.sim_minutes > config_.task_timeout_minutes) {
      duration = config_.task_timeout_minutes;
      tr.status = TaskStatus::kTimeout;
      tr.cause = result.cause != FailureCause::kNone ? result.cause
                                                     : FailureCause::kWallLimit;
    } else {
      duration = result.sim_minutes;
      tr.status = TaskStatus::kOk;
      tr.cause = FailureCause::kNone;
      tr.fitness = result.fitness;
    }
    tr.sim_minutes = duration;
    ++tasks_run_on_node_[node];
    stream_free_at_[node] = start + duration;
    entry.finish_at = start + duration;
    break;
  }
  tr.finish_minute = clock_minutes_ + entry.finish_at;
  stream_in_flight_.push_back(entry);
  record_task_metrics(id, tr);
  obs::metrics()
      .gauge("farm.queue_depth")
      .set(static_cast<double>(stream_in_flight_.size()));
}

namespace {

/// Index of the earliest-finishing in-flight task (ties broken by id).
std::size_t earliest_in_flight(const std::vector<InFlightTask>& in_flight) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < in_flight.size(); ++i) {
    const InFlightTask& a = in_flight[i];
    const InFlightTask& b = in_flight[best];
    if (a.finish_at < b.finish_at ||
        (a.finish_at == b.finish_at && a.id < b.id)) {
      best = i;
    }
  }
  return best;
}

}  // namespace

std::optional<StreamCompletion> DaskCluster::stream_next() {
  if (!stream_active_) throw util::ValueError("no stream session active");
  if (stream_in_flight_.empty()) return std::nullopt;
  const std::size_t best = earliest_in_flight(stream_in_flight_);
  const InFlightTask task = stream_in_flight_[best];
  stream_in_flight_.erase(stream_in_flight_.begin() +
                          static_cast<std::ptrdiff_t>(best));
  stream_now_ = std::max(stream_now_, task.finish_at);
  const StreamCompletion done{task.id, task.report};
  stream_delivered_.push_back(done);
  obs::metrics()
      .gauge("farm.queue_depth")
      .set(static_cast<double>(stream_in_flight_.size()));
  return done;
}

std::optional<StreamCompletion> DaskCluster::stream_try_next(std::size_t lo,
                                                             std::size_t hi) {
  if (!stream_active_) throw util::ValueError("no stream session active");
  if (stream_in_flight_.empty()) return std::nullopt;
  // Only the globally earliest finisher may be delivered: delivering a later
  // task out of turn would rewind stream_now for whichever tenant owns the
  // earlier one.  When it belongs to another range the caller tries again
  // after that tenant (or the mux, for a closed tenant) has pulled it.
  const std::size_t best = earliest_in_flight(stream_in_flight_);
  if (stream_in_flight_[best].id < lo || stream_in_flight_[best].id >= hi) {
    return std::nullopt;
  }
  const InFlightTask task = stream_in_flight_[best];
  stream_in_flight_.erase(stream_in_flight_.begin() +
                          static_cast<std::ptrdiff_t>(best));
  stream_now_ = std::max(stream_now_, task.finish_at);
  const StreamCompletion done{task.id, task.report};
  stream_delivered_.push_back(done);
  obs::metrics()
      .gauge("farm.queue_depth")
      .set(static_cast<double>(stream_in_flight_.size()));
  return done;
}

BatchReport DaskCluster::stream_end() {
  if (!stream_active_) throw util::ValueError("no stream session active");
  if (!stream_in_flight_.empty()) {
    throw util::ValueError("stream session still has in-flight tasks");
  }
  BatchReport report;
  std::size_t num_tasks = 0;
  for (const StreamCompletion& done : stream_delivered_) {
    num_tasks = std::max(num_tasks, done.id + 1);
  }
  report.tasks.resize(num_tasks);
  for (const StreamCompletion& done : stream_delivered_) {
    report.tasks[done.id] = done.report;
  }
  report.makespan_minutes = stream_now_;
  report.node_failures = stream_node_failures_;
  report.workers_remaining = live_workers_;
  report.scheduler_restarts = stream_scheduler_restarts_;
  clock_minutes_ += stream_now_;
  stream_active_ = false;
  stream_free_at_.clear();
  stream_delivered_.clear();
  record_batch_metrics(report, tasks_run_on_node_.size());
  return report;
}

}  // namespace dpho::hpc
