#include "hpc/cluster_session.hpp"

#include "util/error.hpp"

namespace dpho::hpc {

BatchReport SimClusterSession::run_batch(const std::vector<TaskSpec>& specs,
                                         const RemoteWorkFn& local_eval) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].id != i) {
      throw util::ValueError("run_batch specs must be indexed 0..n-1");
    }
  }
  std::vector<std::uint64_t> eval_seeds;
  eval_seeds.reserve(specs.size());
  for (const TaskSpec& spec : specs) eval_seeds.push_back(spec.eval_seed);
  const WorkFn work = [&](std::size_t index) -> WorkResult {
    return local_eval(specs[index]);
  };
  return farm_.run_batch(specs.size(), work, eval_seeds);
}

void SimClusterSession::stream_submit(const TaskSpec& spec,
                                      const RemoteWorkFn& local_eval) {
  farm_.stream_submit(spec.id, local_eval(spec), spec.eval_seed);
}

}  // namespace dpho::hpc
