#include "hpc/task_mux.hpp"

#include <algorithm>

#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dpho::hpc {

namespace {

/// Mirrors the process cluster's sentinel: a snapshot entry whose result the
/// scheduler did not hold at crash time and which must be re-submitted.
constexpr double kUnresolvedFinishAt = -1.0;

obs::Histogram& dispatch_latency() {
  return obs::metrics().histogram("sched.mux.dispatch_latency_seconds",
                                  obs::BucketLayout::timing_seconds());
}

}  // namespace

TaskMux::TaskMux(ClusterSession& shared, TaskMuxConfig config)
    : shared_(shared), config_(config) {
  if (config_.slot_stride == 0) {
    throw util::ValueError("task mux: slot stride must be positive");
  }
  shared_.stream_begin();
}

std::size_t TaskMux::open_slot(const SlotOptions& options) {
  if (options.weight == 0) {
    throw util::ValueError("task mux: slot weight must be >= 1");
  }
  Slot slot;
  slot.weight = options.weight;
  slot.max_in_flight = options.max_in_flight;
  slots_.push_back(std::move(slot));
  obs::metrics().gauge("sched.mux.slots_open").set(static_cast<double>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const Slot& s) { return s.open; })));
  return slots_.size() - 1;
}

void TaskMux::close_slot(std::size_t slot) {
  Slot& s = at(slot);
  if (!s.open) return;
  s.open = false;
  // Queued tasks are simply dropped; outstanding ones keep occupying workers
  // until they resolve, at which point drain_shared() discards them.
  s.queue.clear();
  s.ready.clear();
  s.undelivered.clear();
  obs::metrics().gauge("sched.mux.slots_open").set(static_cast<double>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const Slot& sl) { return sl.open; })));
}

bool TaskMux::slot_open(std::size_t slot) const { return at(slot).open; }

void TaskMux::submit(std::size_t slot, const TaskSpec& spec,
                     const RemoteWorkFn& work) {
  Slot& s = at(slot);
  if (!s.open) throw util::ValueError("task mux: slot is closed");
  if (spec.id >= config_.slot_stride) {
    throw util::ValueError("task mux: task id " + std::to_string(spec.id) +
                           " exceeds the slot stride");
  }
  if (!s.submitted.insert(spec.id).second) {
    throw util::ValueError("task mux: duplicate task id " +
                           std::to_string(spec.id));
  }
  Pending pending;
  pending.spec = spec;
  pending.work = work;
  pending.queued_at = std::chrono::steady_clock::now();
  s.queue.push_back(std::move(pending));
  s.undelivered.insert(spec.id);
  forward_ready();
}

std::optional<StreamCompletion> TaskMux::try_take(std::size_t slot) {
  Slot& s = at(slot);
  if (s.undelivered.empty()) return std::nullopt;
  const std::size_t lowest = *s.undelivered.begin();
  const auto it = s.ready.find(lowest);
  if (it == s.ready.end()) return std::nullopt;
  const StreamCompletion done = it->second;
  s.ready.erase(it);
  s.undelivered.erase(s.undelivered.begin());
  s.now_minutes = std::max(s.now_minutes, shared_.stream_now());
  s.delivered.push_back(done);
  return done;
}

void TaskMux::pump(double wait_seconds) {
  shared_.poll(wait_seconds);
  drain_shared();
  forward_ready();
  // Forwarding may resolve instantly (the simulation evaluates at submit
  // time); a second drain makes those completions takeable this round.
  drain_shared();
}

bool TaskMux::eligible(const Slot& slot) const {
  if (!slot.open || slot.queue.empty()) return false;
  return slot.max_in_flight == 0 || slot.outstanding < slot.max_in_flight;
}

std::size_t TaskMux::outstanding_total() const {
  std::size_t total = 0;
  for (const Slot& slot : slots_) total += slot.outstanding;
  return total;
}

void TaskMux::drain_shared() {
  // Pull every deliverable completion -- closed slots included, so a
  // cancelled tenant's leftovers never wedge the shared session's delivery
  // order (the simulation only releases its globally earliest finisher).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      while (std::optional<StreamCompletion> done =
                 shared_.stream_try_next(lo(i), hi(i))) {
        progress = true;
        if (s.outstanding > 0) --s.outstanding;
        if (!s.open) continue;  // cancelled: discard
        const std::size_t local = done->id - lo(i);
        s.ready.emplace(local, StreamCompletion{local, done->report});
      }
    }
  }
}

void TaskMux::forward_ready() {
  if (slots_.empty()) return;
  // Never hold more unfinished work at the shared backend than it has live
  // workers: with no backlog there, its own id-ordered dispatch reduces to
  // "dispatch in forwarding order", i.e. to WRR order.  A fully dead pool
  // still forwards (the process backend degrades to in-process evaluation).
  const std::size_t capacity = std::max<std::size_t>(shared_.live_workers(), 1);
  while (outstanding_total() < capacity) {
    // Resume an interrupted burst first: when the capacity gate cut a slot's
    // burst short, the remaining credit is spent before the cursor moves on,
    // so long-run forward shares stay weight-proportional instead of
    // collapsing toward equal shares whenever capacity < sum of weights.
    if (burst_left_ > 0 && eligible(slots_[rr_cursor_])) {
      forward_one(rr_cursor_);
      --burst_left_;
      if (burst_left_ == 0) rr_cursor_ = (rr_cursor_ + 1) % slots_.size();
      continue;
    }
    burst_left_ = 0;
    bool found = false;
    for (std::size_t step = 0; step < slots_.size(); ++step) {
      const std::size_t index = (rr_cursor_ + step) % slots_.size();
      if (!eligible(slots_[index])) continue;
      rr_cursor_ = index;
      burst_left_ = slots_[index].weight;
      found = true;
      break;
    }
    if (!found) break;
  }
  // An ineligible slot forfeits the rest of its burst (its queue ran dry or
  // its per-slot cap engaged); the next pump starts from the slot after it.
  if (burst_left_ > 0 && !eligible(slots_[rr_cursor_])) {
    burst_left_ = 0;
    rr_cursor_ = (rr_cursor_ + 1) % slots_.size();
  }
}

void TaskMux::forward_one(std::size_t slot) {
  Slot& s = slots_[slot];
  Pending pending = std::move(s.queue.front());
  s.queue.pop_front();
  TaskSpec spec = pending.spec;
  const std::size_t local = spec.id;
  spec.id = lo(slot) + local;
  shared_.stream_submit(spec, pending.work);
  ++s.outstanding;
  forward_log_.push_back(slot);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending.queued_at)
          .count();
  dispatch_latency().record(waited);
  obs::metrics().counter("sched.mux.forwards_total").add(1);
  obs::events().emit("mux.forward",
                     {{"slot", util::Json(slot)},
                      {"id", util::Json(local)},
                      {"global_id", util::Json(spec.id)}});
}

std::size_t TaskMux::slot_undelivered(std::size_t slot) const {
  return at(slot).undelivered.size();
}

std::size_t TaskMux::slot_queued(std::size_t slot) const {
  return at(slot).queue.size();
}

std::size_t TaskMux::slot_outstanding(std::size_t slot) const {
  return at(slot).outstanding;
}

double TaskMux::slot_now(std::size_t slot) const { return at(slot).now_minutes; }

const std::vector<StreamCompletion>& TaskMux::slot_delivered(
    std::size_t slot) const {
  return at(slot).delivered;
}

FarmSnapshot TaskMux::slot_snapshot(std::size_t slot) const {
  const Slot& s = at(slot);
  FarmSnapshot snap;
  snap.clock_minutes = shared_.clock_minutes();
  snap.live_workers = shared_.live_workers();
  snap.stream_active = true;
  snap.stream_now = s.now_minutes;
  for (const std::size_t id : s.undelivered) {
    InFlightTask entry;
    entry.id = id;
    const auto ready = s.ready.find(id);
    if (ready != s.ready.end()) {
      entry.finish_at = std::max(0.0, ready->second.report.finish_minute);
      entry.report = ready->second.report;
    } else {
      // Queued at the mux or unresolved at the shared backend: either way the
      // result does not survive a scheduler crash and must be re-submitted.
      entry.finish_at = kUnresolvedFinishAt;
    }
    snap.stream_in_flight.push_back(std::move(entry));
  }
  snap.stream_delivered = s.delivered;
  return snap;
}

std::vector<std::size_t> TaskMux::slot_restore(std::size_t slot,
                                               const FarmSnapshot& snap) {
  Slot& s = at(slot);
  if (!s.open) throw util::ValueError("task mux: restore into a closed slot");
  if (!s.submitted.empty() || !s.delivered.empty()) {
    throw util::ValueError("task mux: restore into a non-fresh slot");
  }
  s.now_minutes = snap.stream_now;
  s.delivered = snap.stream_delivered;
  for (const StreamCompletion& done : s.delivered) s.submitted.insert(done.id);
  std::vector<std::size_t> lost;
  for (const InFlightTask& entry : snap.stream_in_flight) {
    if (entry.finish_at < 0.0) {
      lost.push_back(entry.id);
      continue;
    }
    s.submitted.insert(entry.id);
    s.undelivered.insert(entry.id);
    s.ready.emplace(entry.id, StreamCompletion{entry.id, entry.report});
  }
  std::sort(lost.begin(), lost.end());
  obs::events().emit("mux.restore",
                     {{"slot", util::Json(slot)},
                      {"lost", util::Json(lost.size())},
                      {"resolved", util::Json(s.ready.size())},
                      {"delivered", util::Json(s.delivered.size())}});
  return lost;
}

const TaskMux::Slot& TaskMux::at(std::size_t slot) const {
  if (slot >= slots_.size()) {
    throw util::ValueError("task mux: unknown slot " + std::to_string(slot));
  }
  return slots_[slot];
}

TaskMux::Slot& TaskMux::at(std::size_t slot) {
  if (slot >= slots_.size()) {
    throw util::ValueError("task mux: unknown slot " + std::to_string(slot));
  }
  return slots_[slot];
}

// --- MuxSession ------------------------------------------------------------

MuxSession::MuxSession(TaskMux& mux, const SlotOptions& options)
    : mux_(mux), slot_(mux.open_slot(options)) {}

MuxSession::~MuxSession() { mux_.close_slot(slot_); }

BatchReport MuxSession::run_batch(const std::vector<TaskSpec>& /*specs*/,
                                  const RemoteWorkFn& /*local_eval*/) {
  throw util::ValueError("mux session: run_batch is unsupported; "
                         "multiplexed runs are stream-only");
}

void MuxSession::stream_begin() {
  if (active_) throw util::ValueError("mux session: stream already active");
  active_ = true;
}

void MuxSession::stream_submit(const TaskSpec& spec,
                               const RemoteWorkFn& local_eval) {
  if (!active_) throw util::ValueError("no stream session active");
  mux_.submit(slot_, spec, local_eval);
}

std::optional<StreamCompletion> MuxSession::stream_next() {
  if (!active_) throw util::ValueError("no stream session active");
  while (true) {
    if (std::optional<StreamCompletion> done = mux_.try_take(slot_)) {
      return done;
    }
    if (mux_.slot_undelivered(slot_) == 0) return std::nullopt;
    mux_.pump(0.002);
  }
}

BatchReport MuxSession::stream_end() {
  if (!active_) throw util::ValueError("no stream session active");
  if (mux_.slot_undelivered(slot_) != 0) {
    throw util::ValueError("stream session still has in-flight tasks");
  }
  const std::vector<StreamCompletion>& delivered = mux_.slot_delivered(slot_);
  BatchReport report;
  std::size_t num_tasks = 0;
  for (const StreamCompletion& done : delivered) {
    num_tasks = std::max(num_tasks, done.id + 1);
  }
  report.tasks.resize(num_tasks);
  for (const StreamCompletion& done : delivered) {
    report.tasks[done.id] = done.report;
  }
  report.makespan_minutes = mux_.slot_now(slot_);
  report.node_failures = mux_.shared().stream_node_failures();
  report.workers_remaining = mux_.shared().live_workers();
  clock_minutes_ = mux_.slot_now(slot_);
  active_ = false;
  mux_.close_slot(slot_);
  return report;
}

std::vector<std::size_t> MuxSession::restore(const FarmSnapshot& snapshot) {
  active_ = true;
  return mux_.slot_restore(slot_, snapshot);
}

}  // namespace dpho::hpc
