// Dask-style task farm over a simulated cluster.
//
// Reproduces the deployment of section 2.2.5: a scheduler and client on the
// batch node hand evaluation tasks to one Dask worker per compute node; each
// task launches one DeePMD training (its own jsrun).  Nannies are disabled:
// when a node dies mid-task, the worker is simply lost and the scheduler
// reassigns the task to a surviving worker.  Per-task runtimes come from the
// work items themselves (real seconds or a surrogate's simulated minutes);
// the farm turns them into a discrete-event schedule, yielding batch
// makespans, per-task completion times, timeout/failed statuses, and the
// running job wall clock that the 12-hour limit is charged against.
//
// Real CPU work is distributed over a ThreadPool, decoupled from the
// simulated time axis -- a 100-node Summit generation can be "replayed" on a
// laptop while preserving its timing structure.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hpc/cluster.hpp"
#include "hpc/thread_pool.hpp"
#include "util/rng.hpp"

namespace dpho::hpc {

/// Fine-grained reason a task-attempt produced no usable fitness.  TaskStatus
/// stays the coarse classification the EA acts on; the cause is bookkeeping
/// surfaced in run records and CSV exports for post-mortem analysis.
enum class FailureCause : std::uint8_t {
  kNone = 0,
  kTrainingFailure,    // payload reported a generic failure (e.g. divergence)
  kNonZeroExit,        // subprocess exited with an unexpected code
  kWallLimit,          // per-task wall limit exceeded
  kHungProcess,        // child stopped responding; killed by the watchdog
  kMissingArtifact,    // training "succeeded" but produced no lcurve.out
  kCorruptArtifact,    // lcurve.out unparseable / truncated
  kNonFiniteFitness,   // lcurve.out held NaN/Inf losses
  kException,          // in-process evaluation threw
  kNodeLoss,           // worker node died and retries were exhausted
  kMpiRelaunch,        // compute-node worker could not start a second MPI job
  kPayloadCorruption,  // injected payload corruption (fault plan)
};

std::string to_string(FailureCause cause);
/// Inverse of to_string(FailureCause); throws util::ParseError on unknown names.
FailureCause failure_cause_from_string(const std::string& name);

/// What one unit of work reports back.
struct WorkResult {
  std::vector<double> fitness;   // objective values (empty on failure)
  double sim_minutes = 0.0;      // simulated training runtime
  bool training_error = false;   // diverged / invalid configuration
  FailureCause cause = FailureCause::kNone;
  std::size_t attempts = 1;      // evaluator-internal attempts (retry policy)
};

/// work(task_index) computes the payload; it must be thread-safe.
using WorkFn = std::function<WorkResult(std::size_t)>;

/// Terminal status of one farmed task.
enum class TaskStatus : std::uint8_t {
  kOk = 0,
  kTimeout,        // exceeded the per-task limit (2 h in the paper)
  kTrainingError,  // payload reported failure
  kNodeFailure,    // lost its node and no retry succeeded
};

std::string to_string(TaskStatus status);
/// Inverse of to_string(TaskStatus); throws util::ParseError on unknown names.
TaskStatus task_status_from_string(const std::string& name);

/// Per-task accounting.
struct TaskReport {
  TaskStatus status = TaskStatus::kOk;
  std::vector<double> fitness;
  double sim_minutes = 0.0;     // time the task occupied its final node
  double finish_minute = 0.0;   // completion time on the job clock
  std::size_t attempts = 1;          // scheduler attempts (node reassignments)
  std::size_t payload_attempts = 1;  // evaluator-internal attempts
  std::size_t node = 0;         // node that ran the final attempt
  FailureCause cause = FailureCause::kNone;
};

/// Per-batch accounting.
struct BatchReport {
  std::vector<TaskReport> tasks;
  double makespan_minutes = 0.0;      // batch wall time on the simulated clock
  std::size_t node_failures = 0;      // nodes lost during the batch
  std::size_t workers_remaining = 0;  // surviving workers after the batch
  std::size_t scheduler_restarts = 0; // injected scheduler outages this batch
};

/// Scripted fault kinds for deterministic fault-injection tests; generalizes
/// the single random `node_failure_probability` knob.
enum class FaultKind : std::uint8_t {
  kKillWorker,        // the node running (batch, task, attempt) dies mid-task
  kStraggler,         // the task's runtime is multiplied by `factor`
  kCorruptPayload,    // the task's result is replaced by corrupt output
  kSchedulerRestart,  // the scheduler is down `delay_minutes` at batch start
};

/// One scripted fault.  `batch` counts run_batch() calls on the cluster
/// (generation index when driven by Nsga2Driver); `task` is the index within
/// the batch; `attempt` lets kill events target retries (schedule kills at
/// attempts 1..max_attempts to deterministically exhaust the retry budget).
struct FaultEvent {
  FaultKind kind = FaultKind::kKillWorker;
  std::size_t batch = 0;
  std::size_t task = 0;
  std::size_t attempt = 1;      // kKillWorker only
  double factor = 1.0;          // kStraggler runtime multiplier
  double delay_minutes = 0.0;   // kSchedulerRestart outage length
};

/// A deterministic fault schedule driving the simulated farm.
struct FaultPlan {
  std::vector<FaultEvent> events;
  bool empty() const { return events.empty(); }
};

/// Farm configuration.
struct FarmConfig {
  BatchJob job;                          // nodes, wall limit, worker placement
  double task_timeout_minutes = 120.0;   // the paper's 2-hour training cap
  double node_failure_probability = 0.0; // per task-attempt (random faults)
  FaultPlan faults;                      // scripted faults (deterministic)
  std::size_t max_attempts = 3;
  std::size_t real_threads = 1;          // CPU threads for the actual payloads
  std::uint64_t seed = 0;
};

/// One resolved completion handed back by stream_next(), in simulated-time
/// order.  `id` is the caller-chosen task id passed to stream_submit().
struct StreamCompletion {
  std::size_t id = 0;
  TaskReport report;
};

/// A submitted task whose completion has not yet been delivered.  The report
/// is fully resolved at submit time (the farm is a deterministic replay);
/// only its *delivery* waits for the simulated clock to reach `finish_at`.
struct InFlightTask {
  std::size_t id = 0;
  double finish_at = 0.0;  // minutes since stream_begin()
  TaskReport report;
};

/// Serializable mutable state of a DaskCluster; lets a resumed run continue
/// the farm's RNG stream, job clock and node-health map bit-for-bit.  The
/// stream_* fields capture a mid-wave steady-state session so an async run
/// can crash between completions and resume without re-running any task.
struct FarmSnapshot {
  double clock_minutes = 0.0;
  std::size_t live_workers = 0;
  std::vector<std::size_t> tasks_run_on_node;  // SIZE_MAX marks a dead node
  util::RngState rng;
  std::size_t batches_run = 0;
  bool stream_active = false;
  double stream_now = 0.0;
  std::size_t stream_batch = 0;
  std::size_t stream_node_failures = 0;
  std::size_t stream_scheduler_restarts = 0;
  std::vector<double> stream_free_at;          // per-node next-free minute
  std::vector<InFlightTask> stream_in_flight;
  std::vector<StreamCompletion> stream_delivered;
};

/// The scheduler + workers + client ensemble.
class DaskCluster {
 public:
  DaskCluster(const ClusterSpec& cluster, const FarmConfig& config);

  /// Farms `num_tasks` work items; advances the job clock by the makespan.
  /// `eval_seeds` (optional, per task) key the seed-derived retry timing: the
  /// elapsed-before-failure of a randomly killed attempt is a pure function
  /// of (eval_seed, attempt), not a shared RNG draw, so attempt timing is
  /// reproducible regardless of completion interleaving.
  BatchReport run_batch(std::size_t num_tasks, const WorkFn& work,
                        const std::vector<std::uint64_t>& eval_seeds = {});

  /// --- Streaming (steady-state) session -------------------------------
  /// One session is the event-driven analogue of one run_batch() call: it
  /// consumes one batch index (fault events key on it), applies any
  /// scheduler-restart delay up front, and advances the job clock by the
  /// session makespan at stream_end().  Tasks are submitted one at a time
  /// as completions free workers; kills, stragglers, corruption, retries
  /// and the MPI-relaunch rule behave exactly as in run_batch().

  /// Opens a streaming session.  Throws if one is already active.
  void stream_begin();

  /// Schedules one already-computed payload onto the earliest-free live
  /// worker.  Retries node kills up to max_attempts; the fully resolved
  /// report becomes deliverable once the simulated clock reaches its
  /// finish time.  A task submitted now never starts before the latest
  /// delivered completion (causality: the scheduler only learned of the
  /// free slot then).  `eval_seed` keys the seed-derived retry timing (see
  /// run_batch).
  void stream_submit(std::size_t id, WorkResult result,
                     std::uint64_t eval_seed = 0);

  /// Delivers the earliest-finishing in-flight task (ties broken by id)
  /// and advances the session clock to it; nullopt when none remain.
  std::optional<StreamCompletion> stream_next();

  /// Range-scoped variant for shared sessions (hpc::TaskMux): delivers the
  /// earliest-finishing in-flight task ONLY when its id lies in [lo, hi);
  /// nullopt otherwise.  Restricting delivery to the globally earliest
  /// finisher keeps the session clock monotone no matter how tenants
  /// interleave their pulls.
  std::optional<StreamCompletion> stream_try_next(std::size_t lo,
                                                  std::size_t hi);

  /// Closes the session: advances the job clock by the makespan and folds
  /// every delivered report into a BatchReport indexed by task id.  Throws
  /// if undelivered tasks remain.
  BatchReport stream_end();

  bool stream_active() const { return stream_active_; }
  std::size_t stream_pending() const { return stream_in_flight_.size(); }
  double stream_now() const { return stream_now_; }
  std::size_t stream_node_failures() const { return stream_node_failures_; }

  /// Minutes of job wall clock consumed so far.
  double clock_minutes() const { return clock_minutes_; }

  /// Minutes left before the job's wall limit.
  double remaining_minutes() const;

  std::size_t live_workers() const { return live_workers_; }
  const ClusterSpec& cluster() const { return cluster_; }

  /// Number of run_batch() calls so far (fault events key on this).
  std::size_t batches_run() const { return batches_run_; }

  /// Captures the farm's mutable state for checkpointing.
  FarmSnapshot snapshot() const;

  /// Restores a snapshot taken from an identically configured farm.
  void restore(const FarmSnapshot& snapshot);

 private:
  ClusterSpec cluster_;
  FarmConfig config_;
  util::Rng rng_;
  ThreadPool pool_;
  double clock_minutes_ = 0.0;
  std::size_t live_workers_ = 0;
  std::vector<std::size_t> tasks_run_on_node_;  // for the MPI-relaunch rule
  std::size_t batches_run_ = 0;
  // Streaming-session state (valid while stream_active_).
  bool stream_active_ = false;
  double stream_now_ = 0.0;
  std::size_t stream_batch_ = 0;
  std::size_t stream_node_failures_ = 0;
  std::size_t stream_scheduler_restarts_ = 0;
  std::vector<double> stream_free_at_;
  std::vector<InFlightTask> stream_in_flight_;
  std::vector<StreamCompletion> stream_delivered_;
};

}  // namespace dpho::hpc
