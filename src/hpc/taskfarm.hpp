// Dask-style task farm over a simulated cluster.
//
// Reproduces the deployment of section 2.2.5: a scheduler and client on the
// batch node hand evaluation tasks to one Dask worker per compute node; each
// task launches one DeePMD training (its own jsrun).  Nannies are disabled:
// when a node dies mid-task, the worker is simply lost and the scheduler
// reassigns the task to a surviving worker.  Per-task runtimes come from the
// work items themselves (real seconds or a surrogate's simulated minutes);
// the farm turns them into a discrete-event schedule, yielding batch
// makespans, per-task completion times, timeout/failed statuses, and the
// running job wall clock that the 12-hour limit is charged against.
//
// Real CPU work is distributed over a ThreadPool, decoupled from the
// simulated time axis -- a 100-node Summit generation can be "replayed" on a
// laptop while preserving its timing structure.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hpc/cluster.hpp"
#include "hpc/thread_pool.hpp"
#include "util/rng.hpp"

namespace dpho::hpc {

/// What one unit of work reports back.
struct WorkResult {
  std::vector<double> fitness;   // objective values (empty on failure)
  double sim_minutes = 0.0;      // simulated training runtime
  bool training_error = false;   // diverged / invalid configuration
};

/// work(task_index) computes the payload; it must be thread-safe.
using WorkFn = std::function<WorkResult(std::size_t)>;

/// Terminal status of one farmed task.
enum class TaskStatus : std::uint8_t {
  kOk = 0,
  kTimeout,        // exceeded the per-task limit (2 h in the paper)
  kTrainingError,  // payload reported failure
  kNodeFailure,    // lost its node and no retry succeeded
};

std::string to_string(TaskStatus status);

/// Per-task accounting.
struct TaskReport {
  TaskStatus status = TaskStatus::kOk;
  std::vector<double> fitness;
  double sim_minutes = 0.0;     // time the task occupied its final node
  double finish_minute = 0.0;   // completion time on the job clock
  std::size_t attempts = 1;
  std::size_t node = 0;         // node that ran the final attempt
};

/// Per-batch accounting.
struct BatchReport {
  std::vector<TaskReport> tasks;
  double makespan_minutes = 0.0;      // batch wall time on the simulated clock
  std::size_t node_failures = 0;      // nodes lost during the batch
  std::size_t workers_remaining = 0;  // surviving workers after the batch
};

/// Farm configuration.
struct FarmConfig {
  BatchJob job;                          // nodes, wall limit, worker placement
  double task_timeout_minutes = 120.0;   // the paper's 2-hour training cap
  double node_failure_probability = 0.0; // per task-attempt
  std::size_t max_attempts = 3;
  std::size_t real_threads = 1;          // CPU threads for the actual payloads
  std::uint64_t seed = 0;
};

/// The scheduler + workers + client ensemble.
class DaskCluster {
 public:
  DaskCluster(const ClusterSpec& cluster, const FarmConfig& config);

  /// Farms `num_tasks` work items; advances the job clock by the makespan.
  BatchReport run_batch(std::size_t num_tasks, const WorkFn& work);

  /// Minutes of job wall clock consumed so far.
  double clock_minutes() const { return clock_minutes_; }

  /// Minutes left before the job's wall limit.
  double remaining_minutes() const;

  std::size_t live_workers() const { return live_workers_; }
  const ClusterSpec& cluster() const { return cluster_; }

 private:
  ClusterSpec cluster_;
  FarmConfig config_;
  util::Rng rng_;
  ThreadPool pool_;
  double clock_minutes_ = 0.0;
  std::size_t live_workers_ = 0;
  std::vector<std::size_t> tasks_run_on_node_;  // for the MPI-relaunch rule
};

}  // namespace dpho::hpc
