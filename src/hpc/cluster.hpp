// Cluster and batch-job model of the OLCF Summit deployment.
//
// Summit (paper section 2.1.1): 4608 nodes, each with six NVIDIA V100 GPUs
// and two POWER9 sockets exposing 42 usable cores.  The experiments allocate
// 100 nodes for 12 hours, one Dask worker per node, with every DeePMD
// training data-parallel over the node's 6 GPUs.  Section 2.1.2 reports a
// ~65x per-node speedup of GPU training over the CPU-only build.
#pragma once

#include <cstddef>
#include <string>

namespace dpho::hpc {

/// Static description of the machine.
struct ClusterSpec {
  std::string name = "summit";
  std::size_t total_nodes = 4608;
  std::size_t gpus_per_node = 6;
  std::size_t cores_per_node = 42;
  double gpu_speedup = 65.0;  // GPU node vs CPU-only training throughput

  static ClusterSpec summit() { return {}; }

  /// A small machine for tests.
  static ClusterSpec testbed(std::size_t nodes, std::size_t gpus = 6) {
    ClusterSpec spec;
    spec.name = "testbed";
    spec.total_nodes = nodes;
    spec.gpus_per_node = gpus;
    spec.cores_per_node = 8;
    return spec;
  }
};

/// Where the Dask workers live (paper section 2.2.5): launching workers on
/// compute nodes leaves MPI in a state where a second MPI_init-based training
/// cannot start; the production configuration runs workers on the batch node
/// and jsruns each training separately.
enum class WorkerPlacement { kBatchNode, kComputeNode };

/// One allocation of nodes for a fixed wall-clock window.
struct BatchJob {
  std::size_t nodes = 100;
  double wall_limit_minutes = 12.0 * 60.0;
  WorkerPlacement placement = WorkerPlacement::kBatchNode;
};

}  // namespace dpho::hpc
