// Fixed-size worker thread pool for real (not simulated) parallel evaluation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dpho::hpc {

/// Simple FIFO thread pool.  Tasks must not throw unhandled exceptions other
/// than through the returned future.
///
/// parallel_for is safe to call from inside a pool task (nested parallelism):
/// the calling thread claims and executes loop indices itself rather than
/// blocking on futures, so even when every worker is occupied -- including by
/// the caller's own enclosing task -- the loop always makes progress.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task; the future resolves with its result or exception.
  /// A worker must not block on a future for work queued behind it; use
  /// parallel_for for fork/join inside pool tasks.
  template <typename F>
  auto submit(F&& fn) -> std::future<decltype(fn())> {
    using Result = decltype(fn());
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool (and the calling thread)
  /// and waits for all.  The first exception, by lowest index, is rethrown
  /// after every claimed index has finished.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Zero-allocation static fork/join: runs fn(ctx, i) for i in [0, count)
  /// across the pool and the calling thread and waits for all.  Unlike
  /// parallel_for nothing is enqueued -- workers observe a generation-tagged
  /// broadcast word and claim indices with gen-checked CAS -- so steady-state
  /// callers (the MD step path) stay allocation-free.  Concurrent calls are
  /// serialized (one static loop at a time); nesting inside pool tasks is
  /// safe because the caller participates.  The first exception, by lowest
  /// index, is rethrown after every index has finished.
  void parallel_for_static(std::size_t count, void (*fn)(void*, std::size_t),
                           void* ctx);

 private:
  /// Shared state of one parallel_for: indices are claimed via `next`; the
  /// loop is complete when `remaining` reaches zero.
  struct ForLoop {
    explicit ForLoop(std::size_t count) : remaining(count) {}
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;                // first error by index order
    std::size_t error_index = SIZE_MAX;      // guarded by mutex
  };

  static void drain_loop(const std::shared_ptr<ForLoop>& loop, std::size_t count,
                         const std::function<void(std::size_t)>* fn);

  /// Immutable per-loop descriptor of one parallel_for_static call.  Workers
  /// copy it under mutex_ before participating, so a slow worker still
  /// draining generation G never races the publication of G+1's fields.
  struct StaticSnapshot {
    void (*fn)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
    std::uint32_t count = 0;
    std::uint32_t gen = 0;
  };

  void drain_static(const StaticSnapshot& snap);

  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;

  // parallel_for_static state.  The control word packs {generation, next
  // index}; a claim succeeds only while the generation matches, so a stale
  // worker can never claim indices of a later loop.  Generation 0 means "no
  // loop has ever run".
  std::mutex static_mutex_;  // serializes parallel_for_static callers
  std::atomic<std::uint64_t> static_control_{0};
  std::atomic<std::uint32_t> static_remaining_{0};
  std::condition_variable static_done_;
  bool static_live_ = false;           // guarded by mutex_
  std::uint32_t static_gen_ = 0;       // guarded by mutex_
  StaticSnapshot static_desc_;         // guarded by mutex_
  std::exception_ptr static_error_;    // guarded by mutex_
  std::size_t static_error_index_ = SIZE_MAX;  // guarded by mutex_
};

}  // namespace dpho::hpc
