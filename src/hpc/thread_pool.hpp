// Fixed-size worker thread pool for real (not simulated) parallel evaluation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dpho::hpc {

/// Simple FIFO thread pool.  Tasks must not throw unhandled exceptions other
/// than through the returned future.
///
/// parallel_for is safe to call from inside a pool task (nested parallelism):
/// the calling thread claims and executes loop indices itself rather than
/// blocking on futures, so even when every worker is occupied -- including by
/// the caller's own enclosing task -- the loop always makes progress.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task; the future resolves with its result or exception.
  /// A worker must not block on a future for work queued behind it; use
  /// parallel_for for fork/join inside pool tasks.
  template <typename F>
  auto submit(F&& fn) -> std::future<decltype(fn())> {
    using Result = decltype(fn());
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool (and the calling thread)
  /// and waits for all.  The first exception, by lowest index, is rethrown
  /// after every claimed index has finished.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  /// Shared state of one parallel_for: indices are claimed via `next`; the
  /// loop is complete when `remaining` reaches zero.
  struct ForLoop {
    explicit ForLoop(std::size_t count) : remaining(count) {}
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;                // first error by index order
    std::size_t error_index = SIZE_MAX;      // guarded by mutex
  };

  static void drain_loop(const std::shared_ptr<ForLoop>& loop, std::size_t count,
                         const std::function<void(std::size_t)>* fn);

  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace dpho::hpc
