// Fixed-size worker thread pool for real (not simulated) parallel evaluation.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dpho::hpc {

/// Simple FIFO thread pool.  Tasks must not throw unhandled exceptions other
/// than through the returned future.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task; the future resolves with its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<decltype(fn())> {
    using Result = decltype(fn());
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace dpho::hpc
