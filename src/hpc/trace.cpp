#include "hpc/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/csv.hpp"

namespace dpho::hpc {

std::string trace_csv(const BatchReport& report) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"task", "node", "start_minute", "finish_minute", "sim_minutes",
                    "attempts", "status"});
  const auto fmt = util::CsvWriter::format;
  for (std::size_t t = 0; t < report.tasks.size(); ++t) {
    const TaskReport& task = report.tasks[t];
    writer.write_row({std::to_string(t), std::to_string(task.node),
                      fmt(task.finish_minute - task.sim_minutes),
                      fmt(task.finish_minute), fmt(task.sim_minutes),
                      std::to_string(task.attempts), to_string(task.status)});
  }
  return out.str();
}

std::string gantt_art(const BatchReport& report, std::size_t columns) {
  if (report.tasks.empty() || columns == 0) return "";
  double t_min = 1e300, t_max = -1e300;
  std::map<std::size_t, std::vector<const TaskReport*>> by_node;
  for (const TaskReport& task : report.tasks) {
    t_min = std::min(t_min, task.finish_minute - task.sim_minutes);
    t_max = std::max(t_max, task.finish_minute);
    by_node[task.node].push_back(&task);
  }
  if (!(t_max > t_min)) t_max = t_min + 1.0;
  const double scale = static_cast<double>(columns) / (t_max - t_min);

  const auto glyph = [](TaskStatus status) {
    switch (status) {
      case TaskStatus::kOk: return '#';
      case TaskStatus::kTimeout: return 'T';
      case TaskStatus::kTrainingError: return 'x';
      case TaskStatus::kNodeFailure: return '!';
    }
    return '?';
  };

  std::ostringstream out;
  for (const auto& [node, tasks] : by_node) {
    std::string row(columns, '.');
    for (const TaskReport* task : tasks) {
      const double start = task->finish_minute - task->sim_minutes;
      auto c0 = static_cast<std::size_t>((start - t_min) * scale);
      auto c1 = static_cast<std::size_t>((task->finish_minute - t_min) * scale);
      c0 = std::min(c0, columns - 1);
      c1 = std::min(std::max(c1, c0 + 1), columns);
      for (std::size_t c = c0; c < c1; ++c) row[c] = glyph(task->status);
    }
    char label[32];
    std::snprintf(label, sizeof label, "node %4zu |", node);
    out << label << row << "|\n";
  }
  return out.str();
}

}  // namespace dpho::hpc
