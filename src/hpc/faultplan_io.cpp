#include "hpc/faultplan_io.hpp"

#include "util/error.hpp"
#include "util/fs.hpp"

namespace dpho::hpc {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillWorker: return "kill_worker";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCorruptPayload: return "corrupt_payload";
    case FaultKind::kSchedulerRestart: return "scheduler_restart";
  }
  throw util::ValueError("invalid fault kind");
}

FaultKind fault_kind_from_string(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kKillWorker, FaultKind::kStraggler, FaultKind::kCorruptPayload,
        FaultKind::kSchedulerRestart}) {
    if (to_string(kind) == name) return kind;
  }
  throw util::ParseError("unknown fault kind: " + name);
}

util::Json fault_plan_to_json(const FaultPlan& plan) {
  util::JsonArray events;
  for (const FaultEvent& event : plan.events) {
    util::JsonObject obj;
    obj["kind"] = to_string(event.kind);
    obj["batch"] = event.batch;
    obj["task"] = event.task;
    obj["attempt"] = event.attempt;
    obj["factor"] = event.factor;
    obj["delay_minutes"] = event.delay_minutes;
    events.push_back(util::Json(std::move(obj)));
  }
  util::JsonObject doc;
  doc["events"] = util::Json(std::move(events));
  return util::Json(std::move(doc));
}

FaultPlan fault_plan_from_json(const util::Json& json) {
  if (!json.is_object() || !json.contains("events")) {
    throw util::ParseError("fault plan: expected {\"events\": [...]}");
  }
  FaultPlan plan;
  for (const util::Json& entry : json.at("events").as_array()) {
    FaultEvent event;
    event.kind = fault_kind_from_string(entry.at("kind").as_string());
    event.batch = static_cast<std::size_t>(entry.at("batch").as_int());
    // task is meaningless for scheduler_restart events, so it is optional.
    event.task = static_cast<std::size_t>(entry.number_or("task", 0.0));
    event.attempt = static_cast<std::size_t>(entry.number_or("attempt", 1.0));
    event.factor = entry.number_or("factor", 1.0);
    event.delay_minutes = entry.number_or("delay_minutes", 0.0);
    plan.events.push_back(event);
  }
  return plan;
}

FaultPlan load_fault_plan(const std::filesystem::path& path) {
  return fault_plan_from_json(util::Json::parse(util::read_file(path)));
}

}  // namespace dpho::hpc
