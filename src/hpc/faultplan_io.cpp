#include "hpc/faultplan_io.hpp"

#include "util/error.hpp"
#include "util/fs.hpp"

namespace dpho::hpc {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillWorker: return "kill_worker";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCorruptPayload: return "corrupt_payload";
    case FaultKind::kSchedulerRestart: return "scheduler_restart";
  }
  throw util::ValueError("invalid fault kind");
}

FaultKind fault_kind_from_string(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kKillWorker, FaultKind::kStraggler, FaultKind::kCorruptPayload,
        FaultKind::kSchedulerRestart}) {
    if (to_string(kind) == name) return kind;
  }
  throw util::ParseError("unknown fault kind: " + name);
}

util::Json fault_plan_to_json(const FaultPlan& plan) {
  util::JsonArray events;
  for (const FaultEvent& event : plan.events) {
    util::JsonObject obj;
    obj["kind"] = to_string(event.kind);
    obj["batch"] = event.batch;
    obj["task"] = event.task;
    obj["attempt"] = event.attempt;
    obj["factor"] = event.factor;
    obj["delay_minutes"] = event.delay_minutes;
    events.push_back(util::Json(std::move(obj)));
  }
  util::JsonObject doc;
  doc["events"] = util::Json(std::move(events));
  return util::Json(std::move(doc));
}

FaultPlan fault_plan_from_json(const util::Json& json) {
  if (!json.is_object() || !json.contains("events")) {
    throw util::ParseError("fault plan: expected {\"events\": [...]}");
  }
  FaultPlan plan;
  std::size_t index = 0;
  for (const util::Json& entry : json.at("events").as_array()) {
    // Name the offending event in every error: a malformed plan otherwise
    // loads silently and misbehaves mid-run, where the symptom (a fault that
    // never fires, or a task that runs backwards in time) is far from the
    // bad JSON line.
    const std::string where = "fault plan event " + std::to_string(index);
    try {
      FaultEvent event;
      event.kind = fault_kind_from_string(entry.at("kind").as_string());
      event.batch = static_cast<std::size_t>(entry.at("batch").as_int());
      // task is meaningless for scheduler_restart events, so it is optional.
      event.task = static_cast<std::size_t>(entry.number_or("task", 0.0));
      const double attempt = entry.number_or("attempt", 1.0);
      if (attempt < 1.0) {
        throw util::ParseError("attempt must be >= 1, got " +
                               std::to_string(attempt));
      }
      event.attempt = static_cast<std::size_t>(attempt);
      event.factor = entry.number_or("factor", 1.0);
      if (event.factor < 0.0) {
        throw util::ParseError("factor must be >= 0, got " +
                               std::to_string(event.factor));
      }
      event.delay_minutes = entry.number_or("delay_minutes", 0.0);
      if (event.delay_minutes < 0.0) {
        throw util::ParseError("delay_minutes must be >= 0, got " +
                               std::to_string(event.delay_minutes));
      }
      plan.events.push_back(event);
    } catch (const util::Error& e) {
      throw util::ParseError(where + ": " + e.what());
    }
    ++index;
  }
  return plan;
}

FaultPlan load_fault_plan(const std::filesystem::path& path) {
  return fault_plan_from_json(util::Json::parse(util::read_file(path)));
}

}  // namespace dpho::hpc
