// Per-thread scratch slots for data-parallel hot loops.
//
// The trainer's gradient workers each need a private arena (tape storage,
// analytic-kernel workspaces) that survives across work items so the steady
// state performs no allocations.  A bare `static thread_local` gives one
// slot per thread *per call site*, shared by every instance in the process;
// ThreadScratch gives one slot per (thread, owner instance) with no locking
// on the hot path: each thread keeps its own map from owner to slot, so
// local() never synchronizes with other threads.
//
// Lifetime: slots die with their thread.  A slot belonging to a destroyed
// owner is reclaimed only when a new ThreadScratch reuses that address, so
// owners should be long-lived (a Trainer member, not a per-frame temporary)
// and T must tolerate reuse after arbitrary prior state -- true of
// workspaces that size themselves on every use.
#pragma once

#include <memory>
#include <unordered_map>

namespace dpho::hpc {

template <typename T>
class ThreadScratch {
 public:
  ThreadScratch() = default;
  ThreadScratch(const ThreadScratch&) = delete;
  ThreadScratch& operator=(const ThreadScratch&) = delete;

  /// The calling thread's slot for this owner; default-constructed on first
  /// use by each thread.
  T& local() const {
    thread_local std::unordered_map<const void*, std::unique_ptr<T>> slots;
    std::unique_ptr<T>& slot = slots[this];
    if (!slot) slot = std::make_unique<T>();
    return *slot;
  }
};

}  // namespace dpho::hpc
