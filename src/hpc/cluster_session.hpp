// The cluster-backend seam: one session API over simulated and real workers.
//
// core::EvolutionEngine used to talk to hpc::DaskCluster directly, which
// hard-wired it to the discrete-event *simulation* -- the engine computed
// every payload in-process and the farm replayed its timing.  Real worker
// processes invert that: the payload must travel to the worker as data.
// ClusterSession is the common session surface:
//
//   * TaskSpec is the wire-form of one evaluation: caller-chosen id, genome,
//     the deterministic per-evaluation seed (core::derive_eval_seed), and the
//     individual's UUID (the run-directory name of section 2.2.4).
//   * RemoteWorkFn is the *local* evaluation closure.  The sim backend calls
//     it inline (preserving the engine's historical behavior bit for bit);
//     the process backend holds it as the graceful-degradation fallback used
//     when every real worker has died.
//
// Two implementations exist: SimClusterSession (below), a zero-cost adapter
// over DaskCluster, and ProcessCluster (process_cluster.hpp), a socket-backed
// scheduler over fork/exec'd dpho_worker subprocesses.  make_cluster_session
// (cluster_factory.hpp) is the selection switch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hpc/taskfarm.hpp"
#include "util/error.hpp"

namespace dpho::hpc {

/// Everything a worker needs to run one evaluation.
struct TaskSpec {
  std::size_t id = 0;              // caller-chosen task id (birth index)
  std::vector<double> genome;
  std::uint64_t eval_seed = 0;     // derive_eval_seed(run, wave, genome)
  std::string uuid;                // canonical UUID of the individual
};

/// Local evaluation of one spec; must be thread-safe (the sim backend farms
/// run_batch payloads over a thread pool).
using RemoteWorkFn = std::function<WorkResult(const TaskSpec&)>;

/// The session API both cluster backends implement.  Semantics follow
/// DaskCluster (taskfarm.hpp): run_batch is the generational barrier;
/// stream_* is the steady-state session.  The one extension is restore(),
/// which returns the ids of in-flight tasks the snapshot could not preserve
/// (a real worker's half-finished evaluation dies with the scheduler); the
/// caller must re-submit those.  The sim backend always returns an empty
/// list: its snapshots carry fully resolved in-flight reports.
class ClusterSession {
 public:
  virtual ~ClusterSession() = default;

  /// Farms one barrier wave; specs[i].id must equal i.
  virtual BatchReport run_batch(const std::vector<TaskSpec>& specs,
                                const RemoteWorkFn& local_eval) = 0;

  virtual void stream_begin() = 0;
  virtual void stream_submit(const TaskSpec& spec,
                             const RemoteWorkFn& local_eval) = 0;
  virtual std::optional<StreamCompletion> stream_next() = 0;
  virtual BatchReport stream_end() = 0;

  /// Non-blocking, range-scoped delivery for session sharing (hpc::TaskMux):
  /// delivers the next in-order completion whose id lies in [lo, hi), or
  /// nullopt when none is deliverable yet.  Each id range is one tenant's
  /// namespace, so per-tenant delivery order is exactly what stream_next()
  /// would produce for that tenant alone.  Backends that cannot share a
  /// session keep the default and throw.
  virtual std::optional<StreamCompletion> stream_try_next(std::size_t /*lo*/,
                                                          std::size_t /*hi*/) {
    throw util::ValueError("stream_try_next: unsupported by " + backend_name());
  }

  /// Drives backend progress (socket IO, deadlines, dispatch) for up to
  /// `wait_seconds` without delivering anything.  No-op for backends whose
  /// work resolves at submit time (the simulation).
  virtual void poll(double /*wait_seconds*/) {}

  virtual bool stream_active() const = 0;
  virtual std::size_t stream_pending() const = 0;
  virtual double stream_now() const = 0;
  virtual std::size_t stream_node_failures() const = 0;

  virtual double clock_minutes() const = 0;
  virtual double remaining_minutes() const = 0;
  virtual std::size_t live_workers() const = 0;
  virtual std::size_t batches_run() const = 0;

  virtual FarmSnapshot snapshot() const = 0;
  /// Adopts `snapshot` and returns the ids of in-flight tasks that were lost
  /// with the previous scheduler process and must be re-submitted.
  virtual std::vector<std::size_t> restore(const FarmSnapshot& snapshot) = 0;

  /// Human-readable backend name ("sim" / "process") for logs and events.
  virtual std::string backend_name() const = 0;
};

/// The discrete-event simulation behind the ClusterSession surface.  Payloads
/// are evaluated locally at submit time -- the exact call order the engine
/// used against DaskCluster directly, so records, metrics and goldens are
/// unchanged.
class SimClusterSession final : public ClusterSession {
 public:
  SimClusterSession(const ClusterSpec& cluster, const FarmConfig& config)
      : farm_(cluster, config) {}

  BatchReport run_batch(const std::vector<TaskSpec>& specs,
                        const RemoteWorkFn& local_eval) override;
  void stream_begin() override { farm_.stream_begin(); }
  void stream_submit(const TaskSpec& spec,
                     const RemoteWorkFn& local_eval) override;
  std::optional<StreamCompletion> stream_next() override {
    return farm_.stream_next();
  }
  BatchReport stream_end() override { return farm_.stream_end(); }
  std::optional<StreamCompletion> stream_try_next(std::size_t lo,
                                                  std::size_t hi) override {
    return farm_.stream_try_next(lo, hi);
  }

  bool stream_active() const override { return farm_.stream_active(); }
  std::size_t stream_pending() const override { return farm_.stream_pending(); }
  double stream_now() const override { return farm_.stream_now(); }
  std::size_t stream_node_failures() const override {
    return farm_.stream_node_failures();
  }

  double clock_minutes() const override { return farm_.clock_minutes(); }
  double remaining_minutes() const override { return farm_.remaining_minutes(); }
  std::size_t live_workers() const override { return farm_.live_workers(); }
  std::size_t batches_run() const override { return farm_.batches_run(); }

  FarmSnapshot snapshot() const override { return farm_.snapshot(); }
  std::vector<std::size_t> restore(const FarmSnapshot& snapshot) override {
    farm_.restore(snapshot);
    return {};  // sim snapshots carry fully resolved in-flight reports
  }

  std::string backend_name() const override { return "sim"; }

  DaskCluster& farm() { return farm_; }

 private:
  DaskCluster farm_;
};

}  // namespace dpho::hpc
