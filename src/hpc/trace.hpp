// Task-trace export: per-task Gantt rows for batch reports.
//
// The paper's runs were tuned by watching where generation wall-clock went
// (section 2.2.5 discusses the Dask dashboard being impractical at this
// scale); this text trace is the equivalent artifact for the simulated
// cluster -- one row per task with node, start/finish minutes, and status.
#pragma once

#include <string>

#include "hpc/taskfarm.hpp"

namespace dpho::hpc {

/// CSV rows: task, node, start_minute, finish_minute, sim_minutes, attempts,
/// status.  Start is derived as finish - sim_minutes.
std::string trace_csv(const BatchReport& report);

/// Character-art Gantt chart (one row per node, time binned across columns).
/// Compact diagnostic for examples and logs.
std::string gantt_art(const BatchReport& report, std::size_t columns = 64);

}  // namespace dpho::hpc
