// Fair-share multiplexing of many streaming tenants over ONE ClusterSession.
//
// The dpho_sched daemon runs N independent steady-state HPO runs against a
// single shared worker pool.  Each tenant opens a *slot*; the mux gives it a
// disjoint task-id namespace ([slot*stride, (slot+1)*stride)), queues its
// submissions, and forwards them to the shared session under weighted
// round-robin so no tenant can starve another by submitting faster.  The
// per-tenant contracts the single-run path guarantees survive multiplexing:
//
//   * Ordered delivery: a tenant's completions come back in ascending local
//     task id (the engine's determinism contract), enforced by draining the
//     shared session with stream_try_next() per namespace and buffering
//     out-of-order arrivals in per-slot ready maps.
//   * Fairness: one forward decision at a time, rotating over slots with
//     `weight` forwards per visit (weighted round robin).  Between two
//     consecutive forwards of an eligible slot at most sum(other weights)
//     foreign forwards happen -- the bounded-dispatch-gap property the sched
//     tests pin down.
//   * Capacity: forwarded-but-unresolved tasks never exceed the live worker
//     count, so the shared backend's own id-ordered dispatch cannot build a
//     backlog that would bias dispatch toward low slots.
//   * Recovery: slot_snapshot()/slot_restore() scope FarmSnapshot recovery
//     to one tenant; resolved-but-untaken completions survive a scheduler
//     crash verbatim, unresolved ones are reported back for re-submission.
//
// MuxSession adapts one slot to the ClusterSession API, so an unmodified
// core::EvolutionEngine drives its share of the pool exactly as it would
// drive a private cluster.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "hpc/cluster_session.hpp"

namespace dpho::hpc {

struct TaskMuxConfig {
  /// Width of each slot's id namespace; a tenant may submit at most this
  /// many tasks over its lifetime.  Kept far below 2^53 so namespaced ids
  /// survive JSON's double representation.
  std::size_t slot_stride = std::size_t{1} << 20;
};

/// Per-tenant scheduling knobs.
struct SlotOptions {
  std::size_t weight = 1;         // weighted-round-robin share (>= 1)
  /// Tasks this slot may have forwarded-but-unfinished at the shared backend
  /// at once; 0 = no per-slot cap (the global capacity gate still applies).
  std::size_t max_in_flight = 0;
};

class TaskMux {
 public:
  /// Opens the shared session (stream_begin) immediately; `shared` must
  /// outlive the mux.
  explicit TaskMux(ClusterSession& shared, TaskMuxConfig config = {});

  /// Registers a tenant and returns its slot index.  Slots are never reused:
  /// a retired slot's namespace stays burned so late completions of a
  /// cancelled run can never collide with a live one.
  std::size_t open_slot(const SlotOptions& options);

  /// Retires a slot: queued submissions are dropped and every future
  /// completion in its namespace is drained and discarded.  Idempotent.
  void close_slot(std::size_t slot);
  bool slot_open(std::size_t slot) const;

  /// Queues one task (spec.id is slot-local) for weighted-round-robin
  /// forwarding.  Throws when the slot is closed, the id exceeds the stride,
  /// or the id was already submitted.
  void submit(std::size_t slot, const TaskSpec& spec, const RemoteWorkFn& work);

  /// Delivers the slot's next in-order completion if it is ready; local ids.
  std::optional<StreamCompletion> try_take(std::size_t slot);

  /// One scheduling round: drive the shared backend for up to `wait_seconds`,
  /// drain deliverable completions into the per-slot ready maps, then forward
  /// queued tasks under WRR while capacity remains.
  void pump(double wait_seconds);

  // Per-slot introspection (status replies, metrics, tests).
  std::size_t slot_undelivered(std::size_t slot) const;
  std::size_t slot_queued(std::size_t slot) const;
  std::size_t slot_outstanding(std::size_t slot) const;
  double slot_now(std::size_t slot) const;
  const std::vector<StreamCompletion>& slot_delivered(std::size_t slot) const;

  /// Scopes FarmSnapshot to one tenant: resolved-but-untaken completions are
  /// embedded verbatim; queued or unresolved tasks get the unresolved
  /// sentinel so slot_restore() reports them back for re-submission.
  FarmSnapshot slot_snapshot(std::size_t slot) const;
  /// Adopts a tenant snapshot into a freshly opened slot and returns the
  /// lost (must re-submit) local ids, ascending.
  std::vector<std::size_t> slot_restore(std::size_t slot,
                                        const FarmSnapshot& snapshot);

  ClusterSession& shared() { return shared_; }
  const ClusterSession& shared() const { return shared_; }
  std::size_t num_slots() const { return slots_.size(); }
  std::size_t slot_stride() const { return config_.slot_stride; }

  /// The slot of every forward decision, in order -- the fairness witness the
  /// property tests and bench_sched assert over.
  const std::vector<std::size_t>& forward_log() const { return forward_log_; }

 private:
  struct Pending {
    TaskSpec spec;  // slot-local id
    RemoteWorkFn work;
    std::chrono::steady_clock::time_point queued_at;
  };

  struct Slot {
    bool open = true;
    std::size_t weight = 1;
    std::size_t max_in_flight = 0;  // 0 = uncapped
    std::deque<Pending> queue;      // submitted, not yet forwarded
    std::set<std::size_t> undelivered;            // local ids awaiting take
    std::set<std::size_t> submitted;              // all local ids ever seen
    std::map<std::size_t, StreamCompletion> ready;  // local id -> completion
    std::vector<StreamCompletion> delivered;      // taken, local ids
    std::size_t outstanding = 0;    // forwarded to shared, not yet drained
    double now_minutes = 0.0;       // shared session time at last take
  };

  std::size_t lo(std::size_t slot) const { return slot * config_.slot_stride; }
  std::size_t hi(std::size_t slot) const {
    return (slot + 1) * config_.slot_stride;
  }
  bool eligible(const Slot& slot) const;
  std::size_t outstanding_total() const;
  void drain_shared();
  void forward_ready();
  void forward_one(std::size_t slot);
  const Slot& at(std::size_t slot) const;
  Slot& at(std::size_t slot);

  ClusterSession& shared_;
  TaskMuxConfig config_;
  std::vector<Slot> slots_;
  std::size_t rr_cursor_ = 0;
  /// Unspent forwards of the slot under the cursor: a burst the capacity
  /// gate interrupted resumes before the rotation moves on, keeping forward
  /// shares weight-proportional even when capacity < sum of weights.
  std::size_t burst_left_ = 0;
  std::vector<std::size_t> forward_log_;
};

/// One tenant's slot behind the ClusterSession API.  Stream-only: run_batch
/// throws (the scheduler multiplexes steady-state runs).  The mux must
/// outlive the session; the destructor retires the slot.
class MuxSession final : public ClusterSession {
 public:
  MuxSession(TaskMux& mux, const SlotOptions& options);
  ~MuxSession() override;
  MuxSession(const MuxSession&) = delete;
  MuxSession& operator=(const MuxSession&) = delete;

  BatchReport run_batch(const std::vector<TaskSpec>& specs,
                        const RemoteWorkFn& local_eval) override;
  void stream_begin() override;
  void stream_submit(const TaskSpec& spec,
                     const RemoteWorkFn& local_eval) override;
  std::optional<StreamCompletion> stream_next() override;
  BatchReport stream_end() override;

  bool stream_active() const override { return active_; }
  std::size_t stream_pending() const override {
    return mux_.slot_undelivered(slot_);
  }
  double stream_now() const override { return mux_.slot_now(slot_); }
  std::size_t stream_node_failures() const override {
    return mux_.shared().stream_node_failures();
  }

  double clock_minutes() const override { return clock_minutes_; }
  double remaining_minutes() const override {
    return mux_.shared().remaining_minutes();
  }
  std::size_t live_workers() const override {
    return mux_.shared().live_workers();
  }
  std::size_t batches_run() const override { return 0; }

  FarmSnapshot snapshot() const override { return mux_.slot_snapshot(slot_); }
  std::vector<std::size_t> restore(const FarmSnapshot& snapshot) override;

  std::string backend_name() const override {
    return "mux+" + mux_.shared().backend_name();
  }

  std::size_t slot() const { return slot_; }

 private:
  TaskMux& mux_;
  std::size_t slot_;
  bool active_ = false;
  double clock_minutes_ = 0.0;
};

}  // namespace dpho::hpc
