// Deterministic fork/join helpers on top of ThreadPool.
//
// Floating-point addition is not associative, so a reduction whose order
// depends on thread scheduling makes training runs irreproducible.  These
// helpers split the classic parallel reduce into (a) an embarrassingly
// parallel map into an index-ordered buffer and (b) a serial combine in
// strict index order, so the result is bit-identical for any thread count --
// including the serial pool == nullptr path.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "hpc/thread_pool.hpp"

namespace dpho::hpc {

/// Evaluates map(i) for i in [0, count) and returns the results in index
/// order.  Runs on `pool` when it is non-null and the trip count warrants it;
/// otherwise serially on the calling thread.  `map` must be pure with respect
/// to shared state (it may run concurrently with itself).
template <typename T, typename Map>
std::vector<T> parallel_map(ThreadPool* pool, std::size_t count, Map&& map) {
  std::vector<T> results(count);
  if (pool == nullptr || pool->size() <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = map(i);
  } else {
    pool->parallel_for(count, [&](std::size_t i) { results[i] = map(i); });
  }
  return results;
}

/// Parallel map + fixed-order reduce: `combine(acc, value, i)` is applied
/// strictly for i = 0, 1, ..., count-1 on the calling thread, so the
/// accumulated result is independent of how the map was scheduled.
template <typename Acc, typename T, typename Map, typename Combine>
Acc parallel_reduce_ordered(ThreadPool* pool, std::size_t count, Acc init,
                            Map&& map, Combine&& combine) {
  const std::vector<T> mapped =
      parallel_map<T>(pool, count, std::forward<Map>(map));
  Acc acc = std::move(init);
  for (std::size_t i = 0; i < count; ++i) combine(acc, mapped[i], i);
  return acc;
}

}  // namespace dpho::hpc
