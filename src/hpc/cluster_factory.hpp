// Backend selection for ClusterSession: simulated farm or real worker pool.
//
// The `--cluster sim|process` seam of dpho_hpo resolves here; the engine only
// ever sees the ClusterSession interface, so generational and async modes
// drive either backend unchanged.
#pragma once

#include <memory>

#include "hpc/cluster_session.hpp"
#include "hpc/process_cluster.hpp"

namespace dpho::hpc {

enum class ClusterBackendKind : std::uint8_t {
  kSim = 0,     // discrete-event DaskCluster simulation
  kProcess,     // fork/exec'd dpho_worker subprocesses over loopback TCP
};

std::string to_string(ClusterBackendKind kind);
/// Inverse of to_string; throws util::ParseError on unknown names.
ClusterBackendKind cluster_backend_from_string(const std::string& name);

/// How a run wants its workers realized.  `process` is only consulted for
/// kProcess; eval_config_json is typically filled in by the driver from its
/// evaluator configuration (core::eval_config_io).
struct ClusterBackendConfig {
  ClusterBackendKind kind = ClusterBackendKind::kSim;
  ProcessClusterConfig process;
};

std::unique_ptr<ClusterSession> make_cluster_session(
    const ClusterSpec& cluster, const FarmConfig& farm,
    const ClusterBackendConfig& backend);

}  // namespace dpho::hpc
