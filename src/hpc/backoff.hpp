// Deterministic, seed-derived retry backoff.
//
// Every retrying layer in the repo (the simulated DaskCluster's node-kill
// reassignments, the SubprocessEvaluator's transient-artifact retries, and
// the ProcessCluster's real re-dispatch) derives its attempt timing from the
// *per-task evaluation seed* rather than from a shared RNG stream.  A shared
// stream makes attempt timing depend on the global draw order -- i.e. on
// completion interleaving -- which destroys reproducibility the moment two
// runs retry tasks in a different order.  A pure function of
// (eval_seed, attempt) gives every task the same retry schedule no matter
// when, where, or in what order its attempts happen.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace dpho::hpc {

/// Maps a 64-bit seed to a uniform double in [0, 1).
inline double seeded_unit(std::uint64_t seed) {
  return static_cast<double>(util::hash_mix(seed) >> 11) * 0x1.0p-53;
}

/// Capped exponential backoff before retry `attempt` (1-based: the delay
/// applied after attempt N failed).  base * 2^(attempt-1), jittered to
/// [0.75x, 1.25x] by a hash of (eval_seed, attempt), capped at `cap`.
/// Pure and deterministic: no RNG stream is consumed.
inline double retry_backoff_seconds(std::uint64_t eval_seed, std::size_t attempt,
                                    double base, double cap) {
  if (base <= 0.0) return 0.0;
  const double exponential =
      base * std::ldexp(1.0, static_cast<int>(std::min<std::size_t>(attempt, 32)) - 1);
  const std::uint64_t key =
      util::hash_combine(eval_seed, util::hash_combine(0xBACC0FFull, attempt));
  const double jitter = 0.75 + 0.5 * seeded_unit(key);
  return std::min(cap, exponential * jitter);
}

}  // namespace dpho::hpc
