#include "moo/nsga2.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace dpho::moo {

RankAnnotation assign_rank_and_crowding(const std::vector<ObjectiveVector>& objectives,
                                        SortBackend backend) {
  RankAnnotation annotation;
  annotation.rank = backend == SortBackend::kRankOrdinal
                        ? rank_ordinal_sort(objectives)
                        : fast_nondominated_sort(objectives);
  annotation.crowding = crowding_distance(objectives, annotation.rank);
  return annotation;
}

std::vector<std::size_t> nsga2_select(const std::vector<ObjectiveVector>& objectives,
                                      std::size_t mu, SortBackend backend) {
  if (mu > objectives.size()) throw util::ValueError("nsga2_select: mu > population");
  const RankAnnotation annotation = assign_rank_and_crowding(objectives, backend);
  std::vector<std::size_t> order(objectives.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (annotation.rank[a] != annotation.rank[b]) {
      return annotation.rank[a] < annotation.rank[b];
    }
    return annotation.crowding[a] > annotation.crowding[b];
  });
  order.resize(mu);
  return order;
}

Nsga2Optimizer::Nsga2Optimizer(Problem problem, Config config)
    : problem_(std::move(problem)), config_(config) {
  if (config_.population_size < 4) {
    throw util::ValueError("nsga2: population must be >= 4");
  }
  if (config_.mutation_probability < 0.0) {
    config_.mutation_probability = 1.0 / static_cast<double>(problem_.num_variables);
  }
}

std::vector<double> Nsga2Optimizer::sbx_child(const std::vector<double>& a,
                                              const std::vector<double>& b,
                                              util::Rng& rng) const {
  std::vector<double> child(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (rng.uniform() < 0.5) {
      child[i] = a[i];
      continue;
    }
    const double u = rng.uniform();
    const double eta = config_.eta_crossover;
    const double beta = u <= 0.5 ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
                                 : std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    // SBX yields two symmetric children; keep either with equal probability
    // (always keeping the a-biased one loses diversity).
    const double sign = rng.uniform() < 0.5 ? 1.0 : -1.0;
    child[i] = 0.5 * ((1.0 + sign * beta) * a[i] + (1.0 - sign * beta) * b[i]);
    child[i] = std::clamp(child[i], problem_.lower[i], problem_.upper[i]);
  }
  return child;
}

void Nsga2Optimizer::polynomial_mutation(std::vector<double>& x, util::Rng& rng) const {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (rng.uniform() >= config_.mutation_probability) continue;
    const double lo = problem_.lower[i];
    const double hi = problem_.upper[i];
    const double u = rng.uniform();
    const double eta = config_.eta_mutation;
    double delta = 0.0;
    if (u < 0.5) {
      delta = std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0;
    } else {
      delta = 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
    }
    x[i] = std::clamp(x[i] + delta * (hi - lo), lo, hi);
  }
}

std::vector<Nsga2Optimizer::Solution> Nsga2Optimizer::run() {
  util::Rng rng(config_.seed);
  const std::size_t mu = config_.population_size;

  std::vector<Solution> population;
  population.reserve(2 * mu);
  for (std::size_t i = 0; i < mu; ++i) {
    Solution s;
    s.variables.resize(problem_.num_variables);
    for (std::size_t v = 0; v < problem_.num_variables; ++v) {
      s.variables[v] = rng.uniform(problem_.lower[v], problem_.upper[v]);
    }
    s.objectives = problem_.evaluate(s.variables);
    population.push_back(std::move(s));
  }

  for (std::size_t gen = 0; gen < config_.generations; ++gen) {
    std::vector<ObjectiveVector> parent_objectives;
    parent_objectives.reserve(population.size());
    for (const Solution& s : population) parent_objectives.push_back(s.objectives);
    const RankAnnotation annotation = assign_rank_and_crowding(
        parent_objectives, config_.sort_backend);

    const auto tournament = [&]() -> const Solution& {
      const auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1));
      const auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1));
      if (annotation.rank[a] != annotation.rank[b]) {
        return population[annotation.rank[a] < annotation.rank[b] ? a : b];
      }
      return population[annotation.crowding[a] > annotation.crowding[b] ? a : b];
    };

    std::vector<Solution> offspring;
    offspring.reserve(mu);
    while (offspring.size() < mu) {
      const Solution& p1 = tournament();
      const Solution& p2 = tournament();
      Solution child;
      if (rng.uniform() < config_.crossover_probability) {
        child.variables = sbx_child(p1.variables, p2.variables, rng);
      } else {
        child.variables = p1.variables;
      }
      polynomial_mutation(child.variables, rng);
      child.objectives = problem_.evaluate(child.variables);
      offspring.push_back(std::move(child));
    }

    // (mu + lambda) elitist survivor selection.
    std::vector<Solution> combined = std::move(population);
    combined.insert(combined.end(), std::make_move_iterator(offspring.begin()),
                    std::make_move_iterator(offspring.end()));
    std::vector<ObjectiveVector> combined_objectives;
    combined_objectives.reserve(combined.size());
    for (const Solution& s : combined) combined_objectives.push_back(s.objectives);
    const std::vector<std::size_t> survivors =
        nsga2_select(combined_objectives, mu, config_.sort_backend);
    population.clear();
    population.reserve(mu);
    for (std::size_t i : survivors) population.push_back(std::move(combined[i]));
  }
  return population;
}

std::vector<Nsga2Optimizer::Solution> Nsga2Optimizer::pareto_subset(
    const std::vector<Solution>& population) {
  std::vector<ObjectiveVector> objectives;
  objectives.reserve(population.size());
  for (const Solution& s : population) objectives.push_back(s.objectives);
  const FrontAssignment ranks = rank_ordinal_sort(objectives);
  std::vector<Solution> front;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (ranks[i] == 0) front.push_back(population[i]);
  }
  return front;
}

}  // namespace dpho::moo
