#include "moo/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dpho::moo {

namespace {

double euclidean(const ObjectiveVector& a, const ObjectiveVector& b) {
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) ss += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(ss);
}

}  // namespace

double spread_delta(std::vector<ObjectiveVector> front,
                    const ObjectiveVector& ideal_extreme_low_f1,
                    const ObjectiveVector& ideal_extreme_high_f1) {
  if (front.size() < 2) throw util::ValueError("spread: need >= 2 front points");
  for (const auto& p : front) {
    if (p.size() != 2) throw util::ValueError("spread: 2 objectives only");
  }
  std::sort(front.begin(), front.end());

  const double d_first = euclidean(front.front(), ideal_extreme_low_f1);
  const double d_last = euclidean(front.back(), ideal_extreme_high_f1);
  std::vector<double> gaps;
  gaps.reserve(front.size() - 1);
  for (std::size_t i = 1; i < front.size(); ++i) {
    gaps.push_back(euclidean(front[i - 1], front[i]));
  }
  double mean_gap = 0.0;
  for (double gap : gaps) mean_gap += gap;
  mean_gap /= static_cast<double>(gaps.size());
  double deviation = 0.0;
  for (double gap : gaps) deviation += std::abs(gap - mean_gap);
  const double denom =
      d_first + d_last + mean_gap * static_cast<double>(gaps.size());
  if (denom <= 0.0) return 0.0;
  return (d_first + d_last + deviation) / denom;
}

double additive_epsilon(const std::vector<ObjectiveVector>& front,
                        const std::vector<ObjectiveVector>& reference_front) {
  if (front.empty() || reference_front.empty()) {
    throw util::ValueError("epsilon: empty fronts");
  }
  double epsilon = -1e300;
  for (const ObjectiveVector& ref : reference_front) {
    double best = 1e300;
    for (const ObjectiveVector& p : front) {
      if (p.size() != ref.size()) throw util::ValueError("epsilon: dim mismatch");
      double worst = -1e300;
      for (std::size_t k = 0; k < ref.size(); ++k) {
        worst = std::max(worst, p[k] - ref[k]);
      }
      best = std::min(best, worst);
    }
    epsilon = std::max(epsilon, best);
  }
  return epsilon;
}

}  // namespace dpho::moo
