// Non-dominated sorting.
//
// Two interchangeable implementations:
//   * fast_nondominated_sort -- the classic O(M N^2) algorithm from Deb et
//     al. 2002 (NSGA-II), kept as the reference implementation; and
//   * rank_ordinal_sort -- a rank-based efficient non-dominated sort in the
//     spirit of Burlacu 2022 ("Rank-based non-dominated sorting",
//     arXiv:2203.13654): objectives are first compressed to ordinal ranks so
//     dominance checks become integer comparisons, then solutions are
//     inserted into fronts in lexicographic order with a binary search over
//     fronts (the ENS-BS strategy).  The paper credits this variant with a
//     significant NSGA-II speed-up; bench_sort_ablation quantifies it here.
//
// Both return the same front index per solution (0 = Pareto front), and the
// property tests assert they agree on random populations.
#pragma once

#include <cstddef>
#include <vector>

#include "moo/domination.hpp"

namespace dpho::moo {

/// Front index per solution; front 0 is non-dominated.
using FrontAssignment = std::vector<int>;

/// Solutions grouped by front (indices into the input).
using Fronts = std::vector<std::vector<std::size_t>>;

FrontAssignment fast_nondominated_sort(const std::vector<ObjectiveVector>& objectives);

FrontAssignment rank_ordinal_sort(const std::vector<ObjectiveVector>& objectives);

/// Groups a front assignment into per-front index lists.
Fronts group_fronts(const FrontAssignment& assignment);

}  // namespace dpho::moo
