#include "moo/sorting.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace dpho::moo {

namespace {

void check_rectangular(const std::vector<ObjectiveVector>& objectives) {
  if (objectives.empty()) return;
  const std::size_t m = objectives.front().size();
  if (m == 0) throw util::ValueError("sorting: empty objective vectors");
  for (const ObjectiveVector& row : objectives) {
    if (row.size() != m) throw util::ValueError("sorting: ragged objective matrix");
  }
}

}  // namespace

FrontAssignment fast_nondominated_sort(const std::vector<ObjectiveVector>& objectives) {
  check_rectangular(objectives);
  const std::size_t n = objectives.size();
  FrontAssignment rank(n, -1);
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<int> domination_count(n, 0);
  std::vector<std::size_t> current;

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      switch (compare(objectives[p], objectives[q])) {
        case Dominance::kADominatesB:
          dominated[p].push_back(q);
          ++domination_count[q];
          break;
        case Dominance::kBDominatesA:
          dominated[q].push_back(p);
          ++domination_count[p];
          break;
        case Dominance::kNonDominated:
        case Dominance::kEqual:
          break;
      }
    }
    if (domination_count[p] == 0) {
      rank[p] = 0;
      current.push_back(p);
    }
  }

  int front = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : current) {
      for (std::size_t q : dominated[p]) {
        if (--domination_count[q] == 0) {
          rank[q] = front + 1;
          next.push_back(q);
        }
      }
    }
    ++front;
    current = std::move(next);
  }
  return rank;
}

FrontAssignment rank_ordinal_sort(const std::vector<ObjectiveVector>& objectives) {
  check_rectangular(objectives);
  const std::size_t n = objectives.size();
  FrontAssignment rank(n, -1);
  if (n == 0) return rank;
  const std::size_t m = objectives.front().size();

  // 1. Compress every objective to ordinal ranks (equal values share a rank)
  //    so all subsequent comparisons are on small integers.
  std::vector<std::vector<std::size_t>> ordinal(n, std::vector<std::size_t>(m));
  {
    std::vector<std::size_t> order(n);
    for (std::size_t obj = 0; obj < m; ++obj) {
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return objectives[a][obj] < objectives[b][obj];
      });
      std::size_t next_rank = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && objectives[order[i]][obj] != objectives[order[i - 1]][obj]) {
          next_rank = i;
        }
        ordinal[order[i]][obj] = next_rank;
      }
    }
  }

  const auto dominates_ordinal = [&](std::size_t a, std::size_t b) {
    bool strictly = false;
    for (std::size_t obj = 0; obj < m; ++obj) {
      if (ordinal[a][obj] > ordinal[b][obj]) return false;
      if (ordinal[a][obj] < ordinal[b][obj]) strictly = true;
    }
    return strictly;
  };

  // 2. Process solutions in lexicographic order of their rank vectors: a
  //    solution can only be dominated by solutions that precede it.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ordinal[a] < ordinal[b];
  });

  // 3. Insert into fronts with a binary search over fronts (ENS-BS): if some
  //    member of front k dominates s, then s is also dominated in every
  //    earlier front, so the feasible fronts form a suffix.
  std::vector<std::vector<std::size_t>> fronts;
  const auto dominated_in_front = [&](std::size_t solution, std::size_t front) {
    const auto& members = fronts[front];
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      if (dominates_ordinal(*it, solution)) return true;
    }
    return false;
  };

  for (std::size_t s : order) {
    std::size_t lo = 0;
    std::size_t hi = fronts.size();  // candidate front in [lo, hi]
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (dominated_in_front(s, mid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == fronts.size()) fronts.emplace_back();
    fronts[lo].push_back(s);
    rank[s] = static_cast<int>(lo);
  }
  return rank;
}

Fronts group_fronts(const FrontAssignment& assignment) {
  Fronts fronts;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const int f = assignment[i];
    if (f < 0) throw util::ValueError("group_fronts: unassigned solution");
    if (static_cast<std::size_t>(f) >= fronts.size()) {
      fronts.resize(static_cast<std::size_t>(f) + 1);
    }
    fronts[static_cast<std::size_t>(f)].push_back(i);
  }
  return fronts;
}

}  // namespace dpho::moo
