#include "moo/problems.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dpho::moo {

namespace {

std::vector<ObjectiveVector> convex_front(std::size_t n) {
  std::vector<ObjectiveVector> front;
  front.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f1 = static_cast<double>(i) / static_cast<double>(n - 1);
    front.push_back({f1, 1.0 - std::sqrt(f1)});
  }
  return front;
}

std::vector<ObjectiveVector> concave_front(std::size_t n) {
  std::vector<ObjectiveVector> front;
  front.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f1 = static_cast<double>(i) / static_cast<double>(n - 1);
    front.push_back({f1, 1.0 - f1 * f1});
  }
  return front;
}

Problem zdt_base(std::string name, std::size_t num_variables) {
  Problem p;
  p.name = std::move(name);
  p.num_variables = num_variables;
  p.num_objectives = 2;
  p.lower.assign(num_variables, 0.0);
  p.upper.assign(num_variables, 1.0);
  return p;
}

}  // namespace

Problem zdt1(std::size_t num_variables) {
  Problem p = zdt_base("ZDT1", num_variables);
  p.evaluate = [num_variables](std::span<const double> x) -> ObjectiveVector {
    double g = 0.0;
    for (std::size_t i = 1; i < num_variables; ++i) g += x[i];
    g = 1.0 + 9.0 * g / static_cast<double>(num_variables - 1);
    const double f1 = x[0];
    return {f1, g * (1.0 - std::sqrt(f1 / g))};
  };
  p.true_front = convex_front;
  return p;
}

Problem zdt2(std::size_t num_variables) {
  Problem p = zdt_base("ZDT2", num_variables);
  p.evaluate = [num_variables](std::span<const double> x) -> ObjectiveVector {
    double g = 0.0;
    for (std::size_t i = 1; i < num_variables; ++i) g += x[i];
    g = 1.0 + 9.0 * g / static_cast<double>(num_variables - 1);
    const double f1 = x[0];
    return {f1, g * (1.0 - (f1 / g) * (f1 / g))};
  };
  p.true_front = concave_front;
  return p;
}

Problem zdt3(std::size_t num_variables) {
  Problem p = zdt_base("ZDT3", num_variables);
  p.evaluate = [num_variables](std::span<const double> x) -> ObjectiveVector {
    double g = 0.0;
    for (std::size_t i = 1; i < num_variables; ++i) g += x[i];
    g = 1.0 + 9.0 * g / static_cast<double>(num_variables - 1);
    const double f1 = x[0];
    const double ratio = f1 / g;
    return {f1, g * (1.0 - std::sqrt(ratio) -
                     ratio * std::sin(10.0 * std::numbers::pi * f1))};
  };
  p.true_front = [](std::size_t n) {
    // Dense sample filtered to the non-dominated part of the discontinuous front.
    std::vector<ObjectiveVector> samples;
    for (std::size_t i = 0; i < 20 * n; ++i) {
      const double f1 = static_cast<double>(i) / static_cast<double>(20 * n - 1);
      samples.push_back(
          {f1, 1.0 - std::sqrt(f1) - f1 * std::sin(10.0 * std::numbers::pi * f1)});
    }
    std::vector<ObjectiveVector> front;
    for (const auto& candidate : samples) {
      bool dominated = false;
      for (const auto& other : samples) {
        if (dominates(other, candidate)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) front.push_back(candidate);
    }
    return front;
  };
  return p;
}

Problem zdt4(std::size_t num_variables) {
  Problem p = zdt_base("ZDT4", num_variables);
  p.lower.assign(num_variables, -5.0);
  p.upper.assign(num_variables, 5.0);
  p.lower[0] = 0.0;
  p.upper[0] = 1.0;
  p.evaluate = [num_variables](std::span<const double> x) -> ObjectiveVector {
    double g = 1.0 + 10.0 * static_cast<double>(num_variables - 1);
    for (std::size_t i = 1; i < num_variables; ++i) {
      g += x[i] * x[i] - 10.0 * std::cos(4.0 * std::numbers::pi * x[i]);
    }
    const double f1 = x[0];
    return {f1, g * (1.0 - std::sqrt(f1 / g))};
  };
  p.true_front = convex_front;
  return p;
}

Problem zdt6(std::size_t num_variables) {
  Problem p = zdt_base("ZDT6", num_variables);
  p.evaluate = [num_variables](std::span<const double> x) -> ObjectiveVector {
    const double f1 = 1.0 - std::exp(-4.0 * x[0]) *
                                std::pow(std::sin(6.0 * std::numbers::pi * x[0]), 6);
    double g = 0.0;
    for (std::size_t i = 1; i < num_variables; ++i) g += x[i];
    g = 1.0 + 9.0 * std::pow(g / static_cast<double>(num_variables - 1), 0.25);
    return {f1, g * (1.0 - (f1 / g) * (f1 / g))};
  };
  p.true_front = [](std::size_t n) {
    std::vector<ObjectiveVector> front;
    for (std::size_t i = 0; i < n; ++i) {
      // f1 range of ZDT6 starts at ~0.2807.
      const double f1 = 0.2807753191 + (1.0 - 0.2807753191) * static_cast<double>(i) /
                                           static_cast<double>(n - 1);
      front.push_back({f1, 1.0 - f1 * f1});
    }
    return front;
  };
  return p;
}

Problem dtlz2(std::size_t num_variables, std::size_t num_objectives) {
  if (num_objectives < 2 || num_variables < num_objectives) {
    throw util::ValueError("dtlz2: need num_variables >= num_objectives >= 2");
  }
  Problem p;
  p.name = "DTLZ2";
  p.num_variables = num_variables;
  p.num_objectives = num_objectives;
  p.lower.assign(num_variables, 0.0);
  p.upper.assign(num_variables, 1.0);
  p.evaluate = [num_variables, num_objectives](
                   std::span<const double> x) -> ObjectiveVector {
    const std::size_t k = num_variables - num_objectives + 1;
    double g = 0.0;
    for (std::size_t i = num_variables - k; i < num_variables; ++i) {
      g += (x[i] - 0.5) * (x[i] - 0.5);
    }
    ObjectiveVector f(num_objectives, 1.0 + g);
    for (std::size_t i = 0; i < num_objectives; ++i) {
      for (std::size_t j = 0; j + i + 1 < num_objectives; ++j) {
        f[i] *= std::cos(x[j] * std::numbers::pi / 2.0);
      }
      if (i > 0) {
        f[i] *= std::sin(x[num_objectives - i - 1] * std::numbers::pi / 2.0);
      }
    }
    return f;
  };
  p.true_front = nullptr;  // 3-D front; tests use the unit-sphere property
  return p;
}

std::vector<Problem> zdt_suite() {
  return {zdt1(), zdt2(), zdt3(), zdt4(), zdt6()};
}

}  // namespace dpho::moo
