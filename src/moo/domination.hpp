// Pareto-dominance primitives (minimization convention throughout).
#pragma once

#include <span>
#include <vector>

namespace dpho::moo {

/// Objective vectors; every objective is minimized.
using ObjectiveVector = std::vector<double>;

/// True when `a` dominates `b`: a <= b in every objective and a < b in at
/// least one.
bool dominates(std::span<const double> a, std::span<const double> b);

/// Three-way comparison used by the sorting algorithms.
enum class Dominance { kADominatesB, kBDominatesA, kNonDominated, kEqual };
Dominance compare(std::span<const double> a, std::span<const double> b);

}  // namespace dpho::moo
