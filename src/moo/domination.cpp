#include "moo/domination.hpp"

#include "util/error.hpp"

namespace dpho::moo {

bool dominates(std::span<const double> a, std::span<const double> b) {
  return compare(a, b) == Dominance::kADominatesB;
}

Dominance compare(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw util::ValueError("dominance: objective vectors must match and be non-empty");
  }
  bool a_better = false;
  bool b_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) a_better = true;
    if (b[i] < a[i]) b_better = true;
  }
  if (a_better && !b_better) return Dominance::kADominatesB;
  if (b_better && !a_better) return Dominance::kBDominatesA;
  if (!a_better && !b_better) return Dominance::kEqual;
  return Dominance::kNonDominated;
}

}  // namespace dpho::moo
