// Pareto-front utilities and quality indicators.
#pragma once

#include <vector>

#include "moo/domination.hpp"

namespace dpho::moo {

/// Indices of the non-dominated solutions (the exact Pareto frontier of the
/// given finite set), as used for Figure 2 / Table 2 of the paper.
std::vector<std::size_t> pareto_front_indices(
    const std::vector<ObjectiveVector>& objectives);

/// Exact 2-D hypervolume dominated by `front` with respect to `reference`
/// (both objectives minimized; points not dominating the reference are
/// ignored).  Used to validate NSGA-II on the ZDT suite.
double hypervolume_2d(const std::vector<ObjectiveVector>& front,
                      const ObjectiveVector& reference);

/// Inverted generational distance of `front` against `reference_front`
/// (mean Euclidean distance from each reference point to its nearest
/// solution).  Lower is better.
double igd(const std::vector<ObjectiveVector>& front,
           const std::vector<ObjectiveVector>& reference_front);

}  // namespace dpho::moo
