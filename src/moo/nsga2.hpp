// NSGA-II (Deb et al. 2002) as a reusable optimizer.
//
// Two layers:
//   * assign_rank_and_crowding(): rank + crowding annotation used by the
//     LEAP-style pipeline in dpho::core (which supplies its own variation);
//   * Nsga2Optimizer: the textbook loop (binary tournament, simulated binary
//     crossover, polynomial mutation, elitist (mu+lambda) survivor selection)
//     used to validate the engine on the ZDT/DTLZ suite.
#pragma once

#include <cstdint>
#include <vector>

#include "moo/crowding.hpp"
#include "moo/problems.hpp"
#include "moo/sorting.hpp"
#include "util/rng.hpp"

namespace dpho::moo {

/// Which non-dominated sorting implementation to use.
enum class SortBackend { kFastNondominated, kRankOrdinal };

/// Result of annotating a set of objective vectors.
struct RankAnnotation {
  FrontAssignment rank;
  std::vector<double> crowding;
};

RankAnnotation assign_rank_and_crowding(const std::vector<ObjectiveVector>& objectives,
                                        SortBackend backend = SortBackend::kRankOrdinal);

/// Survivor selection: indices of the best `mu` solutions by
/// (rank ascending, crowding descending) -- the NSGA-II truncation.
std::vector<std::size_t> nsga2_select(const std::vector<ObjectiveVector>& objectives,
                                      std::size_t mu,
                                      SortBackend backend = SortBackend::kRankOrdinal);

/// Textbook NSGA-II over a box-bounded Problem.
class Nsga2Optimizer {
 public:
  struct Config {
    std::size_t population_size = 100;
    std::size_t generations = 100;
    double crossover_probability = 0.9;
    double eta_crossover = 15.0;
    double mutation_probability = -1.0;  // <0 -> 1/num_variables
    double eta_mutation = 20.0;
    std::uint64_t seed = 1;
    SortBackend sort_backend = SortBackend::kRankOrdinal;
  };

  struct Solution {
    std::vector<double> variables;
    ObjectiveVector objectives;
  };

  Nsga2Optimizer(Problem problem, Config config);

  /// Runs the full loop; returns the final population.
  std::vector<Solution> run();

  /// The first front of a finished run.
  static std::vector<Solution> pareto_subset(const std::vector<Solution>& population);

 private:
  std::vector<double> sbx_child(const std::vector<double>& a,
                                const std::vector<double>& b, util::Rng& rng) const;
  void polynomial_mutation(std::vector<double>& x, util::Rng& rng) const;

  Problem problem_;
  Config config_;
};

}  // namespace dpho::moo
