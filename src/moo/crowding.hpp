// NSGA-II crowding distance.
#pragma once

#include <vector>

#include "moo/domination.hpp"
#include "moo/sorting.hpp"

namespace dpho::moo {

/// Crowding distance of every solution, computed within its own front.
/// Boundary solutions of each front get +infinity.
std::vector<double> crowding_distance(const std::vector<ObjectiveVector>& objectives,
                                      const FrontAssignment& fronts);

/// Convenience for a single front (all solutions together).
std::vector<double> crowding_distance(const std::vector<ObjectiveVector>& objectives);

}  // namespace dpho::moo
