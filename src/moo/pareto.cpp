#include "moo/pareto.hpp"

#include <algorithm>
#include <cmath>

#include "moo/sorting.hpp"
#include "util/error.hpp"

namespace dpho::moo {

std::vector<std::size_t> pareto_front_indices(
    const std::vector<ObjectiveVector>& objectives) {
  std::vector<std::size_t> front;
  if (objectives.empty()) return front;
  const FrontAssignment ranks = rank_ordinal_sort(objectives);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (ranks[i] == 0) front.push_back(i);
  }
  return front;
}

double hypervolume_2d(const std::vector<ObjectiveVector>& front,
                      const ObjectiveVector& reference) {
  if (reference.size() != 2) throw util::ValueError("hypervolume_2d: 2 objectives only");
  // Keep points strictly better than the reference in both objectives.
  std::vector<ObjectiveVector> points;
  for (const ObjectiveVector& p : front) {
    if (p.size() != 2) throw util::ValueError("hypervolume_2d: 2 objectives only");
    if (p[0] < reference[0] && p[1] < reference[1]) points.push_back(p);
  }
  if (points.empty()) return 0.0;
  // Sort by f1 ascending; sweep keeping the best (lowest) f2 so far.
  std::sort(points.begin(), points.end());
  double volume = 0.0;
  double prev_f2 = reference[1];
  for (const ObjectiveVector& p : points) {
    if (p[1] < prev_f2) {
      volume += (reference[0] - p[0]) * (prev_f2 - p[1]);
      prev_f2 = p[1];
    }
  }
  return volume;
}

double igd(const std::vector<ObjectiveVector>& front,
           const std::vector<ObjectiveVector>& reference_front) {
  if (front.empty() || reference_front.empty()) {
    throw util::ValueError("igd: empty fronts");
  }
  double total = 0.0;
  for (const ObjectiveVector& ref : reference_front) {
    double best = std::numeric_limits<double>::infinity();
    for (const ObjectiveVector& p : front) {
      if (p.size() != ref.size()) throw util::ValueError("igd: dimension mismatch");
      double ss = 0.0;
      for (std::size_t k = 0; k < ref.size(); ++k) {
        ss += (p[k] - ref[k]) * (p[k] - ref[k]);
      }
      best = std::min(best, ss);
    }
    total += std::sqrt(best);
  }
  return total / static_cast<double>(reference_front.size());
}

}  // namespace dpho::moo
