// Additional multiobjective quality indicators.
#pragma once

#include <vector>

#include "moo/domination.hpp"

namespace dpho::moo {

/// Deb's spread indicator (Delta) for a 2-objective front: measures how
/// evenly solutions cover the front and how close the extremes come to the
/// reference extremes.  0 is a perfectly uniform covering; larger is worse.
double spread_delta(std::vector<ObjectiveVector> front,
                    const ObjectiveVector& ideal_extreme_low_f1,
                    const ObjectiveVector& ideal_extreme_high_f1);

/// Additive epsilon indicator: the smallest eps such that every reference
/// point is weakly dominated by some front point shifted by eps.  0 means the
/// front covers the reference; larger is worse.
double additive_epsilon(const std::vector<ObjectiveVector>& front,
                        const std::vector<ObjectiveVector>& reference_front);

}  // namespace dpho::moo
