#include "moo/crowding.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace dpho::moo {

std::vector<double> crowding_distance(const std::vector<ObjectiveVector>& objectives,
                                      const FrontAssignment& assignment) {
  if (objectives.size() != assignment.size()) {
    throw util::ValueError("crowding: assignment size mismatch");
  }
  std::vector<double> distance(objectives.size(), 0.0);
  const Fronts fronts = group_fronts(assignment);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (const auto& front : fronts) {
    if (front.empty()) continue;
    if (front.size() <= 2) {
      for (std::size_t i : front) distance[i] = kInf;
      continue;
    }
    const std::size_t m = objectives[front.front()].size();
    std::vector<std::size_t> order(front);
    for (std::size_t obj = 0; obj < m; ++obj) {
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return objectives[a][obj] < objectives[b][obj];
      });
      const double lo = objectives[order.front()][obj];
      const double hi = objectives[order.back()][obj];
      distance[order.front()] = kInf;
      distance[order.back()] = kInf;
      if (hi <= lo) continue;  // degenerate objective: no interior contribution
      for (std::size_t k = 1; k + 1 < order.size(); ++k) {
        if (distance[order[k]] == kInf) continue;
        distance[order[k]] +=
            (objectives[order[k + 1]][obj] - objectives[order[k - 1]][obj]) / (hi - lo);
      }
    }
  }
  return distance;
}

std::vector<double> crowding_distance(const std::vector<ObjectiveVector>& objectives) {
  return crowding_distance(objectives, FrontAssignment(objectives.size(), 0));
}

}  // namespace dpho::moo
