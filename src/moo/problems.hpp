// Standard multiobjective benchmark problems (ZDT, DTLZ).
//
// Used to validate the NSGA-II engine against fronts with known geometry
// before trusting it on the hyperparameter-optimization problem.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "moo/domination.hpp"

namespace dpho::moo {

/// A box-bounded multiobjective minimization problem.
struct Problem {
  std::string name;
  std::size_t num_variables = 0;
  std::size_t num_objectives = 2;
  std::vector<double> lower;  // per-variable bounds
  std::vector<double> upper;
  std::function<ObjectiveVector(std::span<const double>)> evaluate;

  /// Samples `n` points from the true Pareto front (2-objective problems).
  std::function<std::vector<ObjectiveVector>(std::size_t)> true_front;
};

Problem zdt1(std::size_t num_variables = 30);
Problem zdt2(std::size_t num_variables = 30);
Problem zdt3(std::size_t num_variables = 30);
Problem zdt4(std::size_t num_variables = 10);
Problem zdt6(std::size_t num_variables = 10);
Problem dtlz2(std::size_t num_variables = 12, std::size_t num_objectives = 3);

/// All 2-objective problems above, for parameterized tests.
std::vector<Problem> zdt_suite();

}  // namespace dpho::moo
