#include "sched/server.hpp"

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace dpho::sched {

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options, const core::Evaluator& evaluator)
    : options_(std::move(options)),
      scheduler_(options_.scheduler, evaluator) {}

Server::~Server() = default;

void Server::start() { listener_.open(); }

void Server::serve_forever() {
  while (!stopping()) poll_once();
}

void Server::poll_once() {
  accept_pending();

  std::vector<pollfd> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, connection] : connections_) {
    fds.push_back(pollfd{fd, POLLIN, 0});
  }
  bool served = false;
  if (!fds.empty() &&
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 0) > 0) {
    for (const pollfd& entry : fds) {
      if ((entry.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto it = connections_.find(entry.fd);
      if (it == connections_.end()) continue;
      served = true;
      if (!service_connection(*it->second)) connections_.erase(it);
    }
  }

  if (!scheduler_.idle()) {
    scheduler_.step(options_.step_wait_seconds);
  } else if (!served) {
    // Nothing to step and nothing read: sleep instead of spinning (the
    // process backend would otherwise pace us inside the mux pump).
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.step_wait_seconds));
  }
}

void Server::accept_pending() {
  if (!listener_.is_open()) return;
  for (;;) {
    const int fd = listener_.accept_nonblocking();
    if (fd < 0) return;
    connections_.emplace(
        fd, std::make_unique<Connection>(fd, options_.max_frame_bytes));
    obs::metrics().counter("sched.connections_total").add(1);
  }
}

bool Server::service_connection(Connection& connection) {
  const bool healthy = connection.reader.drain(connection.fd);
  while (std::optional<std::string> payload = connection.reader.next()) {
    handle_frame(connection, *payload);
  }
  return healthy;
}

void Server::handle_frame(Connection& connection, const std::string& payload) {
  // Recover a correlation id as early as possible so even a refusal can be
  // matched to its request.
  std::uint64_t id = 0;
  util::Json reply;
  try {
    const util::Json message = util::Json::parse(payload);
    if (message.is_object() && message.contains("id") &&
        message.at("id").is_number() && message.at("id").as_number() >= 0.0) {
      id = static_cast<std::uint64_t>(message.at("id").as_number());
    }
    reply = dispatch(message);
  } catch (const SchedError& e) {
    reply = encode_error(ErrorReply{id, e.code(), e.what()});
  } catch (const util::ParseError& e) {
    reply = encode_error(ErrorReply{id, ErrorCode::kBadRequest, e.what()});
  } catch (const util::ValueError& e) {
    reply = encode_error(ErrorReply{id, ErrorCode::kBadRequest, e.what()});
  } catch (const std::exception& e) {
    reply = encode_error(ErrorReply{id, ErrorCode::kInternal, e.what()});
  }
  ++requests_served_;
  obs::metrics().counter("sched.requests_total").add(1);
  hpc::net::write_frame(connection.fd, reply.dump());
}

util::Json Server::dispatch(const util::Json& message) {
  const std::string type = message_type(message);
  if (type == kMsgSubmit) {
    const SubmitRequest request = decode_submit_request(message);
    const RunStatus status = scheduler_.submit(request.spec);
    util::Json body;
    body["run"] = run_status_to_json(status);
    return encode_result_reply(ResultReply{request.id, std::move(body)});
  }
  if (type == kMsgStatus) {
    const StatusRequest request = decode_status_request(message);
    const RunStatus status = scheduler_.status(request.run);
    util::Json body;
    body["run"] = run_status_to_json(status);
    if (request.want_record) {
      // result() refuses with kNotFinished while the run is active.
      body["record"] = scheduler_.result(request.run);
    }
    return encode_result_reply(ResultReply{request.id, std::move(body)});
  }
  if (type == kMsgCancel) {
    const CancelRequest request = decode_cancel_request(message);
    const RunStatus status = scheduler_.cancel(request.run);
    util::Json body;
    body["run"] = run_status_to_json(status);
    return encode_result_reply(ResultReply{request.id, std::move(body)});
  }
  if (type == kMsgList) {
    const ListRequest request = decode_list_request(message);
    util::JsonArray runs;
    for (const RunStatus& status : scheduler_.list()) {
      runs.push_back(run_status_to_json(status));
    }
    util::Json body;
    body["runs"] = util::Json(std::move(runs));
    return encode_result_reply(ResultReply{request.id, std::move(body)});
  }
  throw SchedError(ErrorCode::kBadRequest, "unknown request type \"" + type +
                                               "\"");
}

}  // namespace dpho::sched
