#include "sched/protocol.hpp"

#include "hpc/net/wire.hpp"
#include "util/error.hpp"

namespace dpho::sched {

namespace {

/// A non-negative integer field (ids, counts); throws ParseError when the
/// field is missing or not a number, ValueError when negative.
std::uint64_t uint_field(const util::Json& message, const std::string& key) {
  if (!message.contains(key) || !message.at(key).is_number()) {
    throw util::ParseError("sched message: missing numeric field " + key);
  }
  const double value = message.at(key).as_number();
  if (value < 0.0) {
    throw util::ValueError("sched message: field " + key + " must be >= 0");
  }
  return static_cast<std::uint64_t>(value);
}

const std::string& string_field(const util::Json& message,
                                const std::string& key) {
  if (!message.contains(key) || !message.at(key).is_string()) {
    throw util::ParseError("sched message: missing string field " + key);
  }
  return message.at(key).as_string();
}

bool bool_field(const util::Json& message, const std::string& key,
                bool fallback) {
  if (!message.contains(key)) return fallback;
  if (!message.at(key).is_bool()) {
    throw util::ParseError("sched message: field " + key + " must be a bool");
  }
  return message.at(key).as_bool();
}

double number_field(const util::Json& message, const std::string& key) {
  if (!message.contains(key) || !message.at(key).is_number()) {
    throw util::ParseError("sched message: missing numeric field " + key);
  }
  return message.at(key).as_number();
}

void expect_type(const util::Json& message, const char* tag) {
  if (message_type(message) != tag) {
    throw util::ParseError("sched message: expected t=" + std::string(tag) +
                           ", got t=" + message_type(message));
  }
}

}  // namespace

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownRun: return "unknown_run";
    case ErrorCode::kDuplicateRun: return "duplicate_run";
    case ErrorCode::kTooManyRuns: return "too_many_runs";
    case ErrorCode::kNotFinished: return "not_finished";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ErrorCode error_code_from_string(const std::string& name) {
  if (name == "bad_request") return ErrorCode::kBadRequest;
  if (name == "unknown_run") return ErrorCode::kUnknownRun;
  if (name == "duplicate_run") return ErrorCode::kDuplicateRun;
  if (name == "too_many_runs") return ErrorCode::kTooManyRuns;
  if (name == "not_finished") return ErrorCode::kNotFinished;
  if (name == "internal") return ErrorCode::kInternal;
  throw util::ValueError("sched message: unknown error code " + name);
}

std::string to_string(RunPhase phase) {
  switch (phase) {
    case RunPhase::kActive: return "active";
    case RunPhase::kDone: return "done";
    case RunPhase::kCancelled: return "cancelled";
    case RunPhase::kFailed: return "failed";
  }
  return "failed";
}

RunPhase run_phase_from_string(const std::string& name) {
  if (name == "active") return RunPhase::kActive;
  if (name == "done") return RunPhase::kDone;
  if (name == "cancelled") return RunPhase::kCancelled;
  if (name == "failed") return RunPhase::kFailed;
  throw util::ValueError("sched message: unknown run phase " + name);
}

void validate_run_name(const std::string& name) {
  if (name.empty() || name.size() > kMaxRunName) {
    throw util::ValueError("sched: run name must be 1.." +
                           std::to_string(kMaxRunName) + " characters");
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      throw util::ValueError(
          "sched: run name must match [A-Za-z0-9_-]+, got \"" + name + "\"");
    }
  }
}

void validate_run_spec(const RunSpec& spec) {
  validate_run_name(spec.name);
  if (spec.population_size == 0) {
    throw util::ValueError("sched: population_size must be positive");
  }
  if (spec.num_workers == 0) {
    throw util::ValueError("sched: num_workers must be positive");
  }
  if (spec.weight == 0) {
    throw util::ValueError("sched: weight must be >= 1");
  }
  if (spec.total_evaluations < spec.num_workers) {
    throw util::ValueError(
        "sched: total_evaluations must cover the initial wave (>= "
        "num_workers)");
  }
}

util::Json run_spec_to_json(const RunSpec& spec) {
  util::Json json;
  json["name"] = spec.name;
  json["seed"] = hpc::net::encode_u64(spec.seed);
  json["population_size"] = spec.population_size;
  json["num_workers"] = spec.num_workers;
  json["total_evaluations"] = spec.total_evaluations;
  json["weight"] = spec.weight;
  json["max_in_flight"] = spec.max_in_flight;
  json["checkpoint_every"] = spec.checkpoint_every;
  json["include_runtime_objective"] = spec.include_runtime_objective;
  return json;
}

RunSpec run_spec_from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw util::ParseError("sched message: run spec must be an object");
  }
  RunSpec spec;
  spec.name = string_field(json, "name");
  spec.seed = hpc::net::decode_u64(string_field(json, "seed"));
  spec.population_size =
      static_cast<std::size_t>(uint_field(json, "population_size"));
  spec.num_workers = static_cast<std::size_t>(uint_field(json, "num_workers"));
  spec.total_evaluations =
      static_cast<std::size_t>(uint_field(json, "total_evaluations"));
  if (json.contains("weight")) {
    spec.weight = static_cast<std::size_t>(uint_field(json, "weight"));
  }
  if (json.contains("max_in_flight")) {
    spec.max_in_flight =
        static_cast<std::size_t>(uint_field(json, "max_in_flight"));
  }
  if (json.contains("checkpoint_every")) {
    spec.checkpoint_every =
        static_cast<std::size_t>(uint_field(json, "checkpoint_every"));
  }
  spec.include_runtime_objective =
      bool_field(json, "include_runtime_objective", false);
  validate_run_spec(spec);
  return spec;
}

util::Json run_status_to_json(const RunStatus& status) {
  util::Json json;
  json["name"] = status.name;
  json["phase"] = to_string(status.phase);
  json["seed"] = hpc::net::encode_u64(status.seed);
  json["completions"] = status.completions;
  json["births"] = status.births;
  json["budget"] = status.budget;
  json["queued"] = status.queued;
  json["outstanding"] = status.outstanding;
  json["now_minutes"] = status.now_minutes;
  if (!status.error.empty()) json["error"] = status.error;
  return json;
}

RunStatus run_status_from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw util::ParseError("sched message: run status must be an object");
  }
  RunStatus status;
  status.name = string_field(json, "name");
  validate_run_name(status.name);
  status.phase = run_phase_from_string(string_field(json, "phase"));
  status.seed = hpc::net::decode_u64(string_field(json, "seed"));
  status.completions = static_cast<std::size_t>(uint_field(json, "completions"));
  status.births = static_cast<std::size_t>(uint_field(json, "births"));
  status.budget = static_cast<std::size_t>(uint_field(json, "budget"));
  status.queued = static_cast<std::size_t>(uint_field(json, "queued"));
  status.outstanding =
      static_cast<std::size_t>(uint_field(json, "outstanding"));
  status.now_minutes = number_field(json, "now_minutes");
  if (status.now_minutes < 0.0) {
    throw util::ValueError("sched message: now_minutes must be >= 0");
  }
  if (json.contains("error")) status.error = string_field(json, "error");
  if (status.phase == RunPhase::kFailed && status.error.empty()) {
    throw util::ValueError("sched message: failed status must carry an error");
  }
  return status;
}

std::string message_type(const util::Json& message) {
  if (!message.is_object() || !message.contains("t") ||
      !message.at("t").is_string()) {
    throw util::ParseError("sched message: missing \"t\" tag");
  }
  return message.at("t").as_string();
}

util::Json encode_submit_request(const SubmitRequest& request) {
  util::Json message;
  message["t"] = kMsgSubmit;
  message["id"] = request.id;
  message["spec"] = run_spec_to_json(request.spec);
  return message;
}

SubmitRequest decode_submit_request(const util::Json& message) {
  expect_type(message, kMsgSubmit);
  SubmitRequest request;
  request.id = uint_field(message, "id");
  if (!message.contains("spec")) {
    throw util::ParseError("sched message: submit needs a spec");
  }
  request.spec = run_spec_from_json(message.at("spec"));
  return request;
}

util::Json encode_status_request(const StatusRequest& request) {
  util::Json message;
  message["t"] = kMsgStatus;
  message["id"] = request.id;
  message["run"] = request.run;
  message["record"] = request.want_record;
  return message;
}

StatusRequest decode_status_request(const util::Json& message) {
  expect_type(message, kMsgStatus);
  StatusRequest request;
  request.id = uint_field(message, "id");
  request.run = string_field(message, "run");
  validate_run_name(request.run);
  request.want_record = bool_field(message, "record", false);
  return request;
}

util::Json encode_cancel_request(const CancelRequest& request) {
  util::Json message;
  message["t"] = kMsgCancel;
  message["id"] = request.id;
  message["run"] = request.run;
  return message;
}

CancelRequest decode_cancel_request(const util::Json& message) {
  expect_type(message, kMsgCancel);
  CancelRequest request;
  request.id = uint_field(message, "id");
  request.run = string_field(message, "run");
  validate_run_name(request.run);
  return request;
}

util::Json encode_list_request(const ListRequest& request) {
  util::Json message;
  message["t"] = kMsgList;
  message["id"] = request.id;
  return message;
}

ListRequest decode_list_request(const util::Json& message) {
  expect_type(message, kMsgList);
  ListRequest request;
  request.id = uint_field(message, "id");
  return request;
}

util::Json encode_result_reply(const ResultReply& reply) {
  util::Json message;
  message["t"] = kMsgResult;
  message["id"] = reply.id;
  message["body"] = reply.body;
  return message;
}

ResultReply decode_result_reply(const util::Json& message) {
  expect_type(message, kMsgResult);
  ResultReply reply;
  reply.id = uint_field(message, "id");
  if (!message.contains("body")) {
    throw util::ParseError("sched message: result needs a body");
  }
  reply.body = message.at("body");
  return reply;
}

util::Json encode_error(const ErrorReply& error) {
  util::Json message;
  message["t"] = kMsgError;
  message["id"] = error.id;
  message["code"] = to_string(error.code);
  message["message"] = error.message;
  return message;
}

ErrorReply decode_error(const util::Json& message) {
  expect_type(message, kMsgError);
  ErrorReply error;
  error.id = uint_field(message, "id");
  error.code = error_code_from_string(string_field(message, "code"));
  error.message = string_field(message, "message");
  return error;
}

}  // namespace dpho::sched
