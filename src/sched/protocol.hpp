// Wire protocol of the dpho_sched multi-tenant HPO scheduler daemon.
//
// Messages ride the same hpc::net framing (4-byte big-endian length +
// compact JSON, "t"-tagged) as dp_serve and the process-cluster workers.
// Request kinds:
//
//   {"t":"submit","id":3,"spec":{"name":"a","seed":"000000000000002a",...}}
//   {"t":"status","id":4,"run":"a","record":false}
//   {"t":"cancel","id":5,"run":"a"}
//   {"t":"list","id":6}
//
// and two reply kinds:
//
//   {"t":"result","id":4,"body":{...}}   // per-request body, see scheduler
//   {"t":"error","id":4,"code":"unknown_run","message":"..."}
//
// A status request with "record":true embeds the finished run's full
// RunRecord JSON in the body ("not_finished" error while the run is still
// active), which is how `dpho_sched_client result` fetches archives.
//
// Seeds are 64-bit and travel as fixed-width hex strings (hpc::net::wire's
// encode_u64), since JSON numbers cannot hold the full uint64 range.
//
// Decoders validate structure and throw util::ParseError (malformed JSON or
// missing/ill-typed fields) or util::ValueError (structurally valid but
// out-of-contract values, e.g. an empty run name or a zero population).
// They never crash on hostile input; the sched protocol fuzz tests feed them
// truncated and bit-flipped frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dpho::sched {

/// Message type tags ("t" values).
inline constexpr const char* kMsgSubmit = "submit";
inline constexpr const char* kMsgStatus = "status";
inline constexpr const char* kMsgCancel = "cancel";
inline constexpr const char* kMsgList = "list";
inline constexpr const char* kMsgResult = "result";
inline constexpr const char* kMsgError = "error";

/// Longest accepted run name; names are path components under the state dir.
inline constexpr std::size_t kMaxRunName = 64;

/// Why the scheduler refused a request.
enum class ErrorCode {
  kBadRequest,    // malformed message or out-of-contract spec
  kUnknownRun,    // run name never submitted
  kDuplicateRun,  // run name already submitted this scheduler lifetime
  kTooManyRuns,   // active-tenant cap reached
  kNotFinished,   // record requested while the run is still active
  kInternal,      // unexpected server-side failure
};

std::string to_string(ErrorCode code);
/// Inverse of to_string; throws util::ValueError on an unknown code string.
ErrorCode error_code_from_string(const std::string& name);

/// One tenant's lifecycle phase.
enum class RunPhase {
  kActive,     // stepping on the shared pool
  kDone,       // budget exhausted, result.json written
  kCancelled,  // retired by a cancel request
  kFailed,     // an exception ended the run (see RunStatus::error)
};

std::string to_string(RunPhase phase);
RunPhase run_phase_from_string(const std::string& name);

/// One HPO run submission: the input.json-shaped slice of AsyncDriverConfig
/// the scheduler exposes, plus multiplexing knobs (weight, max_in_flight).
struct RunSpec {
  std::string name;                  // [A-Za-z0-9_-]+, unique per scheduler
  std::uint64_t seed = 0;
  std::size_t population_size = 10;  // archive capacity mu
  std::size_t num_workers = 3;       // concurrent evaluations this run targets
  std::size_t total_evaluations = 30;
  std::size_t weight = 1;            // weighted-round-robin share (>= 1)
  /// Cap on this run's forwarded-but-unfinished tasks; 0 = num_workers.
  std::size_t max_in_flight = 0;
  std::size_t checkpoint_every = 1;  // completions between checkpoint writes
  bool include_runtime_objective = false;
};

/// Throws util::ValueError unless `name` is a non-empty [A-Za-z0-9_-] string
/// of at most kMaxRunName characters (it becomes a directory name).
void validate_run_name(const std::string& name);
/// Full-spec validation (name, positive population/budget/weight, budget
/// covers the initial wave).
void validate_run_spec(const RunSpec& spec);

util::Json run_spec_to_json(const RunSpec& spec);
RunSpec run_spec_from_json(const util::Json& json);

/// One tenant's status as served to clients.
struct RunStatus {
  std::string name;
  RunPhase phase = RunPhase::kActive;
  std::uint64_t seed = 0;
  std::size_t completions = 0;  // evaluations applied to the archive
  std::size_t births = 0;       // offspring submitted
  std::size_t budget = 0;       // total_evaluations target
  std::size_t queued = 0;       // at the mux, not yet forwarded
  std::size_t outstanding = 0;  // forwarded to the pool, not yet resolved
  double now_minutes = 0.0;     // the run's stream clock
  std::string error;            // non-empty iff phase == kFailed
};

util::Json run_status_to_json(const RunStatus& status);
RunStatus run_status_from_json(const util::Json& json);

// --- requests --------------------------------------------------------------

struct SubmitRequest {
  std::uint64_t id = 0;  // client-chosen correlation id, echoed in the reply
  RunSpec spec;
};

struct StatusRequest {
  std::uint64_t id = 0;
  std::string run;
  bool want_record = false;  // embed the finished run's RunRecord JSON
};

struct CancelRequest {
  std::uint64_t id = 0;
  std::string run;
};

struct ListRequest {
  std::uint64_t id = 0;
};

// --- replies ---------------------------------------------------------------

/// The universal success reply: the request-specific body under "body".
struct ResultReply {
  std::uint64_t id = 0;
  util::Json body;
};

struct ErrorReply {
  std::uint64_t id = 0;  // 0 when the offending request yielded no id
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// The "t" tag of a decoded message; throws util::ParseError when absent.
std::string message_type(const util::Json& message);

util::Json encode_submit_request(const SubmitRequest& request);
SubmitRequest decode_submit_request(const util::Json& message);

util::Json encode_status_request(const StatusRequest& request);
StatusRequest decode_status_request(const util::Json& message);

util::Json encode_cancel_request(const CancelRequest& request);
CancelRequest decode_cancel_request(const util::Json& message);

util::Json encode_list_request(const ListRequest& request);
ListRequest decode_list_request(const util::Json& message);

util::Json encode_result_reply(const ResultReply& reply);
ResultReply decode_result_reply(const util::Json& message);

util::Json encode_error(const ErrorReply& error);
ErrorReply decode_error(const util::Json& message);

}  // namespace dpho::sched
