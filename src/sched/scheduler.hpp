// The dpho_sched core: N interleaved steady-state HPO runs on ONE pool.
//
// One single-threaded Scheduler owns the shared hpc::ClusterSession (sim or
// process pool), wraps it in a hpc::TaskMux, and hosts each submitted run as
// a core::SteadyStateLoop fed from its own mux slot.  A step() call is one
// cooperative round: pump the mux (drive the pool, drain completions under
// the fair-share policy), then hand every run its ready in-order completions.
// Because each run's session is a MuxSession -- the full ClusterSession
// contract scoped to a slot namespace -- an unmodified engine run produces
// the same archive it would on a private pool (the sched determinism tests
// pin uuid/fitness/status/generation byte-identity against solo runs).
//
// Durable state lives under state_dir/runs/<name>/:
//
//   spec.json        the submission ({"order":N,"spec":{...}})
//   checkpoints/     the run's CheckpointManager directory
//   timeline.jsonl   per-run JSONL event timeline
//   status.json      last RunStatus (written on every terminal transition)
//   result.json      the finished run's RunRecord (save_runs format)
//   cancelled.json   marker: the run was cancelled, do not resume
//
// resume_all() reloads that tree after a scheduler crash or restart:
// terminal runs are re-registered (status/result queries keep working,
// duplicate names stay refused) and every interrupted run resumes from its
// checkpoint exactly like the single-run --resume path -- the mux reports
// which in-flight tasks did not survive, the loop re-submits them.
//
// Observability (DESIGN.md section 9): sched.runs_active gauge,
// sched.runs_{submitted,completed,cancelled,failed}_total and
// sched.completions_total counters, per-run sched.run.<name>.queue_depth /
// .busy_fraction gauges, and the sched.mux.* metrics from hpc::TaskMux.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hpc/task_mux.hpp"
#include "obs/event_sink.hpp"
#include "sched/protocol.hpp"

namespace dpho::sched {

/// A scheduler refusal with a wire-mappable code; the server layer turns
/// these into protocol error replies.
class SchedError : public util::Error {
 public:
  SchedError(ErrorCode code, const std::string& what)
      : util::Error("sched: " + what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct SchedulerOptions {
  std::filesystem::path state_dir;
  /// Active tenants the scheduler accepts at once.
  std::size_t max_runs = 8;
  /// Shared pool size (FarmConfig::job.nodes of the one shared session).
  std::size_t pool_workers = 3;
  hpc::ClusterSpec cluster = hpc::ClusterSpec::summit();
  /// Fault plan / retry policy of the shared pool.
  hpc::FarmConfig farm;
  /// Shared pool backend: simulated farm (default) or worker subprocesses.
  hpc::ClusterBackendConfig backend;
};

class Scheduler {
 public:
  /// Builds the shared session and mux immediately (a process backend spawns
  /// its worker pool here).  `evaluator` must outlive the scheduler.
  Scheduler(SchedulerOptions options, const core::Evaluator& evaluator);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a run and starts it (initial wave submitted to the mux).
  /// Throws SchedError on duplicate names or when max_runs is reached.
  RunStatus submit(const RunSpec& spec);

  /// Throws SchedError{kUnknownRun} for names never submitted.
  RunStatus status(const std::string& name) const;

  /// Every known run, in submission order.
  std::vector<RunStatus> list() const;

  /// Retires an active run: its queued tasks are dropped, outstanding ones
  /// drain into the void, other tenants are untouched.
  RunStatus cancel(const std::string& name);

  /// The finished run's RunRecord JSON (result.json).  Throws
  /// SchedError{kNotFinished} while the run is active.
  util::Json result(const std::string& name) const;

  /// Reloads state_dir after a restart; returns the number of runs resumed
  /// (terminal runs are re-registered but not counted).
  std::size_t resume_all();

  /// One cooperative round: pump the mux for up to `wait_seconds`, then
  /// deliver every ready completion to its run.  Run failures are contained:
  /// a throwing run flips to kFailed, the others keep stepping.
  void step(double wait_seconds);

  /// True when no run is active (step() has nothing to do).
  bool idle() const { return active_runs() == 0; }
  std::size_t active_runs() const;
  std::size_t known_runs() const { return order_.size(); }

  hpc::TaskMux& mux() { return *mux_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  struct RunState {
    RunSpec spec;
    std::size_t order = 0;          // submission index (resume ordering)
    std::filesystem::path dir;      // state_dir/runs/<name>
    core::EngineConfig config;      // stable address: EngineRun keeps a ref
    ea::Representation layout;
    std::size_t slot = 0;           // mux slot (valid while run is alive)
    std::unique_ptr<core::EngineRun> run;
    core::PerBirthAnnealing variation;
    std::unique_ptr<core::SteadyStateLoop> loop;
    RunPhase phase = RunPhase::kActive;
    std::string error;
    RunStatus last_status;          // terminal snapshot (and resume cache)
    obs::EventSink timeline;        // per-run JSONL
  };

  RunState& find(const std::string& name);
  const RunState& find(const std::string& name) const;
  /// Builds + starts the engine for `state` (resume=true loads checkpoints).
  void start_run(RunState& state, bool resume);
  void finish_run(RunState& state);
  void fail_run(RunState& state, const std::string& what);
  RunStatus snapshot_status(const RunState& state) const;
  void write_terminal(RunState& state, const char* marker);
  void refresh_gauges();
  std::filesystem::path run_dir(const std::string& name) const;

  SchedulerOptions options_;
  const core::Evaluator& evaluator_;
  std::unique_ptr<hpc::ClusterSession> shared_;
  std::unique_ptr<hpc::TaskMux> mux_;
  std::map<std::string, std::unique_ptr<RunState>> runs_;
  std::vector<std::string> order_;  // submission order
  std::size_t next_order_ = 0;
};

}  // namespace dpho::sched
