#include "sched/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "core/deepmd_repr.hpp"
#include "core/experiment.hpp"
#include "hpc/cluster_factory.hpp"
#include "hpc/net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace dpho::sched {

namespace {

/// One event into both the run's own timeline and the process-wide sink.
void emit_run_event(obs::EventSink& timeline, std::string_view kind,
                    const util::JsonObject& fields) {
  timeline.emit(kind, fields);
  obs::events().emit(kind, fields);
}

util::JsonObject run_fields(const std::string& name) {
  util::JsonObject fields;
  fields["run"] = name;
  return fields;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options, const core::Evaluator& evaluator)
    : options_(std::move(options)), evaluator_(evaluator) {
  if (options_.state_dir.empty()) {
    throw util::ValueError("sched: state_dir is required");
  }
  if (options_.max_runs == 0) {
    throw util::ValueError("sched: max_runs must be positive");
  }
  if (options_.pool_workers == 0) {
    throw util::ValueError("sched: pool_workers must be positive");
  }
  std::filesystem::create_directories(options_.state_dir / "runs");
  hpc::FarmConfig farm = options_.farm;
  farm.job.nodes = options_.pool_workers;
  shared_ = hpc::make_cluster_session(options_.cluster, farm,
                                      options_.backend);
  mux_ = std::make_unique<hpc::TaskMux>(*shared_);
  refresh_gauges();
}

Scheduler::~Scheduler() = default;

std::filesystem::path Scheduler::run_dir(const std::string& name) const {
  return options_.state_dir / "runs" / name;
}

RunStatus Scheduler::submit(const RunSpec& spec) {
  validate_run_spec(spec);
  if (runs_.count(spec.name) != 0) {
    throw SchedError(ErrorCode::kDuplicateRun,
                     "run \"" + spec.name + "\" already exists");
  }
  if (active_runs() >= options_.max_runs) {
    throw SchedError(ErrorCode::kTooManyRuns,
                     "active-run cap (" + std::to_string(options_.max_runs) +
                         ") reached");
  }

  auto state = std::make_unique<RunState>();
  state->spec = spec;
  state->order = next_order_++;
  state->dir = run_dir(spec.name);
  std::filesystem::create_directories(state->dir / "checkpoints");
  util::Json submission;
  submission["order"] = state->order;
  submission["spec"] = run_spec_to_json(spec);
  util::atomic_write_file(state->dir / "spec.json", submission.dump() + "\n");
  state->timeline.open(state->dir / "timeline.jsonl");

  RunState& ref = *state;
  runs_.emplace(spec.name, std::move(state));
  order_.push_back(spec.name);
  try {
    start_run(ref, /*resume=*/false);
  } catch (const std::exception& e) {
    fail_run(ref, e.what());
    refresh_gauges();
    throw SchedError(ErrorCode::kInternal,
                     "run \"" + spec.name + "\" failed to start: " + e.what());
  }

  obs::metrics().counter("sched.runs_submitted_total").add(1);
  util::JsonObject fields = run_fields(spec.name);
  fields["seed"] = hpc::net::encode_u64(spec.seed);
  fields["budget"] = ref.run->budget;
  fields["slot"] = ref.slot;
  emit_run_event(ref.timeline, "sched.run_submit", fields);
  refresh_gauges();
  return snapshot_status(ref);
}

void Scheduler::start_run(RunState& state, bool resume) {
  core::EngineConfig config;
  config.mode = core::ScheduleMode::kSteadyState;
  config.population_size = state.spec.population_size;
  config.num_workers = state.spec.num_workers;
  config.total_evaluations = state.spec.total_evaluations;
  config.cluster = options_.cluster;
  config.farm = options_.farm;
  config.farm.job.nodes = state.spec.num_workers;
  config.include_runtime_objective = state.spec.include_runtime_objective;
  config.checkpoint_dir = state.dir / "checkpoints";
  config.checkpoint_every = state.spec.checkpoint_every;
  config.resume = resume;
  config.session_factory = [this, &state](const hpc::ClusterSpec&,
                                          const hpc::FarmConfig&)
      -> std::unique_ptr<hpc::ClusterSession> {
    hpc::SlotOptions slot_options;
    slot_options.weight = state.spec.weight;
    slot_options.max_in_flight = state.spec.max_in_flight != 0
                                     ? state.spec.max_in_flight
                                     : state.spec.num_workers;
    auto session = std::make_unique<hpc::MuxSession>(*mux_, slot_options);
    state.slot = session->slot();
    return session;
  };
  state.config = std::move(config);
  state.layout = core::DeepMDRepresentation().representation();
  state.run = std::make_unique<core::EngineRun>(state.config, evaluator_,
                                                state.layout, state.spec.seed);
  state.loop =
      std::make_unique<core::SteadyStateLoop>(*state.run, state.variation);
  state.loop->start();
}

RunStatus Scheduler::snapshot_status(const RunState& state) const {
  if (state.phase != RunPhase::kActive || !state.loop) {
    return state.last_status;
  }
  RunStatus status;
  status.name = state.spec.name;
  status.phase = state.phase;
  status.seed = state.spec.seed;
  status.completions = state.loop->completions();
  status.births = state.loop->births();
  status.budget = state.run->budget;
  status.queued = mux_->slot_queued(state.slot);
  status.outstanding = mux_->slot_outstanding(state.slot);
  status.now_minutes = mux_->slot_now(state.slot);
  status.error = state.error;
  return status;
}

RunStatus Scheduler::status(const std::string& name) const {
  return snapshot_status(find(name));
}

std::vector<RunStatus> Scheduler::list() const {
  std::vector<RunStatus> statuses;
  statuses.reserve(order_.size());
  for (const std::string& name : order_) {
    statuses.push_back(snapshot_status(find(name)));
  }
  return statuses;
}

RunStatus Scheduler::cancel(const std::string& name) {
  RunState& state = find(name);
  if (state.phase != RunPhase::kActive) {
    throw SchedError(ErrorCode::kBadRequest,
                     "run \"" + name + "\" is not active (" +
                         to_string(state.phase) + ")");
  }
  state.last_status = snapshot_status(state);
  state.last_status.phase = RunPhase::kCancelled;
  state.phase = RunPhase::kCancelled;
  // Destroying the engine run closes the mux slot: queued tasks drop, still-
  // outstanding ones drain into the void without touching other tenants.
  state.loop.reset();
  state.run.reset();
  write_terminal(state, "cancelled.json");
  obs::metrics().counter("sched.runs_cancelled_total").add(1);
  emit_run_event(state.timeline, "sched.run_cancel", run_fields(name));
  state.timeline.close();
  refresh_gauges();
  return state.last_status;
}

util::Json Scheduler::result(const std::string& name) const {
  const RunState& state = find(name);
  if (state.phase != RunPhase::kDone) {
    throw SchedError(ErrorCode::kNotFinished,
                     "run \"" + name + "\" is " + to_string(state.phase));
  }
  return util::Json::parse(util::read_file(state.dir / "result.json"));
}

void Scheduler::step(double wait_seconds) {
  mux_->pump(wait_seconds);
  for (const std::string& name : order_) {
    RunState& state = *runs_.at(name);
    if (state.phase != RunPhase::kActive) continue;
    try {
      while (!state.loop->done()) {
        std::optional<hpc::StreamCompletion> done = mux_->try_take(state.slot);
        if (!done) break;
        state.loop->handle(*done);
        obs::metrics().counter("sched.completions_total").add(1);
        state.timeline.emit(
            "sched.completion",
            {{"run", util::Json(name)}, {"id", util::Json(done->id)},
             {"completions", util::Json(state.loop->completions())}});
      }
      if (state.loop->done()) finish_run(state);
    } catch (const std::exception& e) {
      fail_run(state, e.what());
    }
  }
  refresh_gauges();
}

void Scheduler::finish_run(RunState& state) {
  state.loop->finish();
  if (state.loop->halted()) {
    // halt_after_evaluations is a test knob of the solo drivers; scheduler
    // runs never set it, but keep the contract: a halted loop stays resumable.
    state.last_status = snapshot_status(state);
    return;
  }
  std::vector<core::RunRecord> runs;
  runs.push_back(std::move(state.run->record));
  core::save_runs(runs, state.dir / "result.json");
  state.last_status = snapshot_status(state);
  state.last_status.phase = RunPhase::kDone;
  state.phase = RunPhase::kDone;
  obs::metrics()
      .gauge("sched.run." + state.spec.name + ".busy_fraction")
      .set(runs.front().busy_fraction);
  state.loop.reset();
  state.run.reset();
  write_terminal(state, nullptr);
  obs::metrics().counter("sched.runs_completed_total").add(1);
  util::JsonObject fields = run_fields(state.spec.name);
  fields["completions"] = state.last_status.completions;
  fields["job_minutes"] = runs.front().job_minutes;
  emit_run_event(state.timeline, "sched.run_done", fields);
  state.timeline.close();
}

void Scheduler::fail_run(RunState& state, const std::string& what) {
  util::log_warn() << "sched: run " << state.spec.name << " failed: " << what;
  state.error = what;
  state.last_status = snapshot_status(state);
  state.last_status.phase = RunPhase::kFailed;
  state.last_status.error = what;
  state.phase = RunPhase::kFailed;
  state.loop.reset();
  state.run.reset();
  write_terminal(state, "failed.json");
  obs::metrics().counter("sched.runs_failed_total").add(1);
  util::JsonObject fields = run_fields(state.spec.name);
  fields["error"] = what;
  emit_run_event(state.timeline, "sched.run_fail", fields);
  state.timeline.close();
}

void Scheduler::write_terminal(RunState& state, const char* marker) {
  util::atomic_write_file(state.dir / "status.json",
                          run_status_to_json(state.last_status).dump() + "\n");
  if (marker != nullptr) {
    util::atomic_write_file(state.dir / marker, "{}\n");
  }
}

std::size_t Scheduler::resume_all() {
  struct Found {
    std::size_t order;
    RunSpec spec;
    std::filesystem::path dir;
  };
  std::vector<Found> found;
  const std::filesystem::path root = options_.state_dir / "runs";
  if (std::filesystem::exists(root)) {
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
      if (!entry.is_directory()) continue;
      const std::filesystem::path spec_path = entry.path() / "spec.json";
      if (!std::filesystem::exists(spec_path)) continue;
      const util::Json submission =
          util::Json::parse(util::read_file(spec_path));
      Found item;
      item.order =
          static_cast<std::size_t>(submission.at("order").as_number());
      item.spec = run_spec_from_json(submission.at("spec"));
      item.dir = entry.path();
      found.push_back(std::move(item));
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.order < b.order; });

  std::size_t resumed = 0;
  for (Found& item : found) {
    if (runs_.count(item.spec.name) != 0) continue;
    auto state = std::make_unique<RunState>();
    state->spec = item.spec;
    state->order = item.order;
    state->dir = item.dir;
    next_order_ = std::max(next_order_, item.order + 1);
    RunState& ref = *state;
    runs_.emplace(item.spec.name, std::move(state));
    order_.push_back(item.spec.name);

    const bool done = std::filesystem::exists(item.dir / "result.json");
    const bool cancelled = std::filesystem::exists(item.dir / "cancelled.json");
    const bool failed = std::filesystem::exists(item.dir / "failed.json");
    if (done || cancelled || failed) {
      // Terminal: re-register so status/result keep answering and the name
      // stays taken, but nothing to step.
      ref.phase = done ? RunPhase::kDone
                       : (cancelled ? RunPhase::kCancelled : RunPhase::kFailed);
      ref.last_status =
          run_status_from_json(util::Json::parse(
              util::read_file(item.dir / "status.json")));
      continue;
    }

    ref.timeline.open(item.dir / "timeline.jsonl");
    try {
      start_run(ref, /*resume=*/true);
      ++resumed;
      util::JsonObject fields = run_fields(item.spec.name);
      fields["completions"] = ref.loop->completions();
      fields["slot"] = ref.slot;
      emit_run_event(ref.timeline, "sched.run_resume", fields);
    } catch (const std::exception& e) {
      fail_run(ref, e.what());
    }
  }
  refresh_gauges();
  return resumed;
}

std::size_t Scheduler::active_runs() const {
  std::size_t active = 0;
  for (const auto& [name, state] : runs_) {
    if (state->phase == RunPhase::kActive) ++active;
  }
  return active;
}

void Scheduler::refresh_gauges() {
  auto& registry = obs::metrics();
  registry.gauge("sched.runs_active").set(static_cast<double>(active_runs()));
  for (const auto& [name, state] : runs_) {
    if (state->phase != RunPhase::kActive) continue;
    registry.gauge("sched.run." + name + ".queue_depth")
        .set(static_cast<double>(mux_->slot_queued(state->slot) +
                                 mux_->slot_outstanding(state->slot)));
  }
}

Scheduler::RunState& Scheduler::find(const std::string& name) {
  const auto it = runs_.find(name);
  if (it == runs_.end()) {
    throw SchedError(ErrorCode::kUnknownRun, "unknown run \"" + name + "\"");
  }
  return *it->second;
}

const Scheduler::RunState& Scheduler::find(const std::string& name) const {
  const auto it = runs_.find(name);
  if (it == runs_.end()) {
    throw SchedError(ErrorCode::kUnknownRun, "unknown run \"" + name + "\"");
  }
  return *it->second;
}

}  // namespace dpho::sched
