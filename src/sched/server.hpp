// The dpho_sched daemon shell: hpc::net framing in front of one Scheduler.
//
// Single-threaded by design: the Scheduler interleaves N engine event loops
// that share RNGs, archives and one TaskMux, so the server multiplexes
// client sockets AND run stepping from one poll loop instead of spawning
// request threads.  Each round accepts pending connections, drains complete
// frames (per-connection FrameReader, length-capped before allocation),
// answers each request inline, then gives the scheduler one step() -- with a
// process-backend pool the step's pump doubles as the loop's pacing wait.
//
// Requests never block on evaluation work: submit returns once the initial
// wave is queued at the mux, status/list/cancel are O(runs), and a finished
// run's record is read back from its result.json artifact.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "hpc/net/frame.hpp"
#include "sched/scheduler.hpp"

namespace dpho::sched {

struct ServerOptions {
  SchedulerOptions scheduler;
  /// Per-connection frame cap; a larger declared length drops the peer.
  std::uint32_t max_frame_bytes = hpc::net::kMaxFramePayload;
  /// Pool-driving budget handed to Scheduler::step each round; also the
  /// idle-round sleep so a sim-backed daemon does not spin.
  double step_wait_seconds = 0.002;
};

class Server {
 public:
  Server(ServerOptions options, const core::Evaluator& evaluator);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds an ephemeral loopback port (valid port() afterwards).
  void start();
  std::uint16_t port() const { return listener_.port(); }

  Scheduler& scheduler() { return scheduler_; }

  /// One round: accept, read, reply, step.  Tests drive this directly.
  void poll_once();

  /// poll_once until request_stop(); returns once stopped.
  void serve_forever();

  /// Stops serve_forever after its current round.  Safe from a signal
  /// watcher thread; idempotent.
  void request_stop() { stop_.store(true, std::memory_order_release); }
  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  /// Requests answered (result or error) since start().
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct Connection {
    explicit Connection(int socket_fd, std::uint32_t max_frame_bytes)
        : fd(socket_fd), reader(max_frame_bytes) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    int fd;
    hpc::net::FrameReader reader;
  };

  void accept_pending();
  /// Drains one connection; returns false when it should be dropped.
  bool service_connection(Connection& connection);
  void handle_frame(Connection& connection, const std::string& payload);
  /// The request->reply map; throws SchedError / util::Error on refusal.
  util::Json dispatch(const util::Json& message);

  ServerOptions options_;
  Scheduler scheduler_;
  hpc::net::Listener listener_;
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::atomic<bool> stop_{false};
  std::uint64_t requests_served_ = 0;
};

}  // namespace dpho::sched
