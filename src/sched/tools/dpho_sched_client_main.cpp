// dpho_sched_client: control CLI for the dpho_sched scheduler daemon.
//
//   dpho_sched_client --port P submit --spec FILE
//   dpho_sched_client --port P status NAME [--record] [--wait]
//   dpho_sched_client --port P cancel NAME
//   dpho_sched_client --port P list
//   dpho_sched_client --port P result NAME [--out FILE]
//
// --port-file FILE reads the port the daemon wrote (clients poll it while
// the daemon boots).  `submit` sends the run spec JSON in FILE verbatim;
// `status --wait` polls until the run leaves the active phase and exits 0
// only for "done"; `result` fetches the finished run's full RunRecord JSON
// (an error with code "not_finished" while the run is active).
//
// Chaos hook for the e2e tests: --expect-error CODE asserts the daemon
// refuses the request with that protocol error code (exit 0 when it does).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "hpc/net/frame.hpp"
#include "sched/protocol.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace {

using namespace dpho;

/// One blocking request/reply exchange; throws util errors on transport or
/// decode failure.
util::Json exchange(int fd, const util::Json& request) {
  if (!hpc::net::write_frame(fd, request.dump())) {
    throw util::IoError("dpho_sched_client: daemon closed the connection");
  }
  const std::optional<std::string> reply = hpc::net::read_frame(fd);
  if (!reply) {
    throw util::IoError(
        "dpho_sched_client: connection lost awaiting the reply");
  }
  return util::Json::parse(*reply);
}

/// Decodes a reply as a result, or raises the daemon's error as ValueError.
sched::ResultReply expect_result(const util::Json& reply) {
  if (sched::message_type(reply) == sched::kMsgError) {
    const sched::ErrorReply error = sched::decode_error(reply);
    throw util::ValueError("daemon refused (" + to_string(error.code) +
                           "): " + error.message);
  }
  return sched::decode_result_reply(reply);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_flag("--port", "daemon port")
      .add_flag("--port-file", "read the daemon port from this file")
      .add_flag("--spec", "run spec JSON file (submit)")
      .add_flag("--record", "embed the finished record in status", false)
      .add_flag("--wait", "status: poll until the run leaves active", false)
      .add_flag("--poll-interval", "seconds between --wait polls, default 0.05")
      .add_flag("--out", "result: write the record JSON here (default stdout)")
      .add_flag("--expect-error",
                "assert the daemon refuses with this error code")
      .add_flag("--quiet", "suppress the reply printout", false)
      .add_flag("--help", "show this message", false);
  const std::string usage_text =
      args.usage("dpho_sched_client --port P <submit|status|cancel|list|result> [NAME]");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpho_sched_client: %s\n%s", e.what(),
                 usage_text.c_str());
    return 2;
  }
  if (args.has("--help")) {
    std::fputs(usage_text.c_str(), stdout);
    return 0;
  }

  std::uint16_t port = 0;
  try {
    if (args.has("--port")) {
      port = static_cast<std::uint16_t>(args.get("--port", std::int64_t{0}));
    } else if (args.has("--port-file")) {
      const std::string text =
          util::read_file(args.get("--port-file", std::string()));
      port = static_cast<std::uint16_t>(std::stoul(text));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpho_sched_client: bad port: %s\n", e.what());
    return 2;
  }
  if (port == 0 || args.positional().empty()) {
    std::fputs(usage_text.c_str(), stderr);
    return 2;
  }

  const std::string command = args.positional()[0];
  const std::string name =
      args.positional().size() > 1 ? args.positional()[1] : std::string();
  const bool quiet = args.has("--quiet");
  const std::string expect_error = args.get("--expect-error", std::string());

  try {
    const int fd = hpc::net::connect_loopback(port);
    std::uint64_t next_id = 1;
    util::Json request;
    if (command == "submit") {
      if (!args.has("--spec")) {
        std::fprintf(stderr, "dpho_sched_client: submit needs --spec FILE\n");
        ::close(fd);
        return 2;
      }
      sched::SubmitRequest submit;
      submit.id = next_id++;
      submit.spec = sched::run_spec_from_json(util::Json::parse(
          util::read_file(args.get("--spec", std::string()))));
      request = sched::encode_submit_request(submit);
    } else if (command == "status" || command == "result") {
      if (name.empty()) {
        std::fputs(usage_text.c_str(), stderr);
        ::close(fd);
        return 2;
      }
      sched::StatusRequest status;
      status.id = next_id++;
      status.run = name;
      status.want_record = command == "result" || args.has("--record");
      request = sched::encode_status_request(status);
    } else if (command == "cancel") {
      if (name.empty()) {
        std::fputs(usage_text.c_str(), stderr);
        ::close(fd);
        return 2;
      }
      request = sched::encode_cancel_request(
          sched::CancelRequest{next_id++, name});
    } else if (command == "list") {
      request = sched::encode_list_request(sched::ListRequest{next_id++});
    } else {
      std::fprintf(stderr, "dpho_sched_client: unknown command \"%s\"\n%s",
                   command.c_str(), usage_text.c_str());
      ::close(fd);
      return 2;
    }

    util::Json reply = exchange(fd, request);

    if (!expect_error.empty()) {
      ::close(fd);
      if (sched::message_type(reply) != sched::kMsgError) {
        std::fprintf(stderr,
                     "dpho_sched_client: expected error %s, got a result\n",
                     expect_error.c_str());
        return 1;
      }
      const sched::ErrorReply error = sched::decode_error(reply);
      if (to_string(error.code) != expect_error) {
        std::fprintf(stderr, "dpho_sched_client: expected error %s, got %s\n",
                     expect_error.c_str(), to_string(error.code).c_str());
        return 1;
      }
      if (!quiet) std::printf("refused as expected: %s\n", error.message.c_str());
      return 0;
    }

    // status --wait: poll until the run leaves the active phase.
    if (command == "status" && args.has("--wait")) {
      const double interval = args.get("--poll-interval", 0.05);
      for (;;) {
        const sched::ResultReply result = expect_result(reply);
        const sched::RunStatus status =
            sched::run_status_from_json(result.body.at("run"));
        if (status.phase != sched::RunPhase::kActive) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(interval));
        sched::StatusRequest poll;
        poll.id = next_id++;
        poll.run = name;
        poll.want_record = args.has("--record");
        reply = exchange(fd, sched::encode_status_request(poll));
      }
    }

    const sched::ResultReply result = expect_result(reply);
    ::close(fd);

    if (command == "result") {
      const std::string record = result.body.at("record").dump(2) + "\n";
      if (args.has("--out")) {
        util::write_file(args.get("--out", std::string()), record);
      } else {
        std::fputs(record.c_str(), stdout);
      }
      return 0;
    }
    if (!quiet) std::printf("%s\n", result.body.dump(2).c_str());
    if (command == "status" || command == "submit" || command == "cancel") {
      const sched::RunStatus status =
          sched::run_status_from_json(result.body.at("run"));
      if (args.has("--wait") && status.phase != sched::RunPhase::kDone) {
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpho_sched_client: %s\n", e.what());
    return 1;
  }
}
