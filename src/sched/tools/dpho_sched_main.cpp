// dpho_sched: multi-tenant HPO scheduler daemon over one shared worker pool.
//
//   dpho_sched --state-dir DIR [--max-runs N] [--resume] [--port-file FILE]
//              [--fault-plan FILE] [--failure-rate P]
//              [--cluster sim|process] [--workers N] [--worker-binary PATH]
//              [--threads N] [--metrics-out FILE] [--metrics-interval N]
//
// Listens on an ephemeral loopback port (printed on stdout and, with
// --port-file, written atomically for clients to poll) and accepts HPO run
// submissions over the sched protocol (sched/protocol.hpp).  All runs share
// ONE worker pool of --workers processes (or one simulated farm) behind a
// fair-share task mux; each run checkpoints continuously under
// --state-dir/runs/<name>/ so a killed daemon restarted with --resume picks
// every interrupted run back up exactly like the single-run --resume path.
//
// SIGTERM/SIGINT stop the serve loop after the current round and exit 0;
// the on-disk checkpoints are the recovery point (the chaos harness SIGKILLs
// the daemon mid-run and asserts the resumed archives stay byte-identical).
#include <csignal>
#include <cstdio>
#include <thread>

#include "core/eval_config_io.hpp"
#include "core/evaluator.hpp"
#include "hpc/faultplan_io.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "sched/server.hpp"
#include "util/args.hpp"
#include "util/fs.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

// The dpho_worker binary normally sits next to dpho_sched in the build tree;
// resolve it relative to the running executable so `dpho_sched --cluster
// process` works from any CWD without flags.
std::filesystem::path default_worker_binary() {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return "dpho_worker";
  return self.parent_path() / "dpho_worker";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpho;
  util::ArgParser args;
  args.add_flag("--state-dir", "durable run state root (required)")
      .add_flag("--max-runs", "active tenants accepted at once, default 8")
      .add_flag("--resume", "resume interrupted runs from --state-dir", false)
      .add_flag("--port-file", "write the bound port number to this file")
      .add_flag("--fault-plan", "JSON file of scripted pool fault events")
      .add_flag("--failure-rate",
                "node-failure probability per task, default 0")
      .add_flag("--step-wait",
                "pool-driving budget per loop round in seconds, default 0.002")
      .add_flag("--help", "show this message", false);
  const util::BackendFlagOptions backend_options{.cluster = true,
                                                 .default_threads = 2};
  util::add_backend_flags(args, backend_options);
  const std::string usage_text = args.usage("dpho_sched --state-dir DIR");

  sched::ServerOptions options;
  util::BackendFlags backend;
  try {
    args.parse(argc, argv);
    backend = util::parse_backend_flags(args, backend_options);
    options.scheduler.max_runs =
        static_cast<std::size_t>(args.get("--max-runs", std::int64_t{8}));
    options.step_wait_seconds = args.get("--step-wait", 0.002);
    if (args.has("--fault-plan")) {
      options.scheduler.farm.faults =
          hpc::load_fault_plan(args.get("--fault-plan", std::string()));
    }
    options.scheduler.farm.node_failure_probability =
        args.get("--failure-rate", 0.0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpho_sched: %s\n%s", e.what(), usage_text.c_str());
    return 2;
  }
  if (args.has("--help")) {
    std::fputs(usage_text.c_str(), stdout);
    return 0;
  }
  if (!args.has("--state-dir")) {
    std::fprintf(stderr, "dpho_sched: --state-dir is required\n%s",
                 usage_text.c_str());
    return 2;
  }
  options.scheduler.state_dir = args.get("--state-dir", std::string());
  options.scheduler.pool_workers = backend.workers == 0 ? 3 : backend.workers;
  options.scheduler.farm.real_threads = backend.threads;

  options.scheduler.backend.kind =
      hpc::cluster_backend_from_string(backend.cluster);
  if (options.scheduler.backend.kind == hpc::ClusterBackendKind::kProcess) {
    hpc::ProcessClusterConfig& process = options.scheduler.backend.process;
    process.worker_binary = backend.worker_binary.empty()
                                ? default_worker_binary()
                                : std::filesystem::path(backend.worker_binary);
    process.num_workers = options.scheduler.pool_workers;
    // Ship the same backend configuration the local evaluator uses, so a
    // process-cluster run reproduces the sim run's fitness bit for bit.
    process.eval_config_json =
        core::eval_backend_config_to_json(core::EvalBackendConfig{}).dump();
  }

  if (!backend.metrics_out.empty()) {
    try {
      obs::events().open(backend.metrics_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dpho_sched: --metrics-out: %s\n", e.what());
      return 2;
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const std::unique_ptr<core::Evaluator> evaluator =
        core::make_evaluator(core::EvalBackendConfig{});
    sched::Server server(std::move(options), *evaluator);
    server.start();
    std::size_t resumed = 0;
    if (args.has("--resume")) resumed = server.scheduler().resume_all();
    std::printf("dpho_sched: listening on 127.0.0.1:%u (%zu run(s) resumed)\n",
                server.port(), resumed);
    std::fflush(stdout);
    if (args.has("--port-file")) {
      util::atomic_write_file(args.get("--port-file", std::string()),
                              std::to_string(server.port()) + "\n");
    }
    // A signal-watcher thread flips the server's stop flag so the serve loop
    // (which may be inside a pool pump) exits after its current round.
    std::thread watcher([&server] {
      while (g_shutdown == 0 && !server.stopping()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      server.request_stop();
    });
    server.serve_forever();
    g_shutdown = 1;
    watcher.join();
    std::printf("dpho_sched: stopped after %llu request(s)\n",
                static_cast<unsigned long long>(server.requests_served()));
    if (!backend.metrics_out.empty()) {
      const std::filesystem::path summary =
          std::filesystem::path(backend.metrics_out).parent_path() /
          "metrics_summary.json";
      util::write_file(summary, obs::metrics().to_json().dump(2) + "\n");
      obs::events().close();
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpho_sched: %s\n", e.what());
    return 1;
  }
}
