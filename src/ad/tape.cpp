#include "ad/tape.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpho::ad {

namespace {

double stable_softplus(double x) {
  // log(1 + e^x) without overflow for large |x|.
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double stable_sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

void check_same_tape(Var a, Var b) {
  if (a.tape() != b.tape()) {
    throw util::ValueError("ad: operands belong to different tapes");
  }
}

}  // namespace

double Var::value() const {
  if (tape_ == nullptr) throw util::ValueError("ad: value() on a null Var");
  return tape_->value_at(index_);
}

double Tape::value_at(std::uint32_t index) const {
  if (index >= nodes_.size()) throw util::ValueError("ad: node index out of range");
  return nodes_[index].value;
}

Var Tape::push(Op op, double value, std::uint32_t a, std::uint32_t b, double aux) {
  nodes_.push_back(Node{op, a, b, value, aux});
  return Var(this, static_cast<std::uint32_t>(nodes_.size() - 1));
}

Var Tape::input(double value) { return push(Op::kLeaf, value); }

Var Tape::constant(double value) { return push(Op::kConst, value); }

void Tape::reset() { nodes_.clear(); }

Var Tape::add(Var a, Var b) {
  check_same_tape(a, b);
  return push(Op::kAdd, value_of(a.index()) + value_of(b.index()), a.index(), b.index());
}

Var Tape::sub(Var a, Var b) {
  check_same_tape(a, b);
  return push(Op::kSub, value_of(a.index()) - value_of(b.index()), a.index(), b.index());
}

Var Tape::mul(Var a, Var b) {
  check_same_tape(a, b);
  return push(Op::kMul, value_of(a.index()) * value_of(b.index()), a.index(), b.index());
}

Var Tape::div(Var a, Var b) {
  check_same_tape(a, b);
  return push(Op::kDiv, value_of(a.index()) / value_of(b.index()), a.index(), b.index());
}

Var Tape::neg(Var a) { return push(Op::kNeg, -value_of(a.index()), a.index()); }

Var Tape::exp_(Var a) { return push(Op::kExp, std::exp(value_of(a.index())), a.index()); }

Var Tape::log_(Var a) { return push(Op::kLog, std::log(value_of(a.index())), a.index()); }

Var Tape::sqrt_(Var a) {
  return push(Op::kSqrt, std::sqrt(value_of(a.index())), a.index());
}

Var Tape::pow_const(Var a, double exponent) {
  return push(Op::kPowC, std::pow(value_of(a.index()), exponent), a.index(), 0, exponent);
}

Var Tape::tanh_(Var a) {
  return push(Op::kTanh, std::tanh(value_of(a.index())), a.index());
}

Var Tape::sigmoid_(Var a) {
  return push(Op::kSigmoid, stable_sigmoid(value_of(a.index())), a.index());
}

Var Tape::softplus_(Var a) {
  return push(Op::kSoftplus, stable_softplus(value_of(a.index())), a.index());
}

Var Tape::relu_(Var a) {
  const double x = value_of(a.index());
  return push(Op::kRelu, x > 0.0 ? x : 0.0, a.index());
}

Var Tape::relu6_(Var a) {
  const double x = value_of(a.index());
  return push(Op::kRelu6, x <= 0.0 ? 0.0 : (x >= 6.0 ? 6.0 : x), a.index());
}

Var Tape::step_(Var a) {
  return push(Op::kStep, value_of(a.index()) > 0.0 ? 1.0 : 0.0, a.index());
}

Var Tape::box_step(Var a, double hi) {
  const double x = value_of(a.index());
  return push(Op::kBoxStep, (x > 0.0 && x < hi) ? 1.0 : 0.0, a.index(), 0, hi);
}

std::vector<Var> Tape::gradient(Var output, const std::vector<Var>& inputs) {
  if (output.tape() != this) throw util::ValueError("ad: output not on this tape");
  for (Var in : inputs) {
    if (in.tape() != this) throw util::ValueError("ad: input not on this tape");
  }
  const std::uint32_t out_index = output.index();
  // Adjoint per node up to (and including) the output; nodes appended during
  // this backward pass never need adjoints of their own here.  The scratch
  // is a member so per-frame gradient calls reuse its storage.
  const std::size_t frontier = static_cast<std::size_t>(out_index) + 1;
  adjoint_scratch_.assign(frontier, Var());  // default-invalid == zero
  std::vector<Var>& adjoint = adjoint_scratch_;
  adjoint[out_index] = constant(1.0);

  const auto accumulate = [&](std::uint32_t node, Var delta) {
    if (node >= frontier) return;  // constant created during backward
    if (!adjoint[node].valid()) {
      adjoint[node] = delta;
    } else {
      adjoint[node] = add(adjoint[node], delta);
    }
  };

  for (std::size_t raw = frontier; raw-- > 0;) {
    const auto i = static_cast<std::uint32_t>(raw);
    if (!adjoint[raw].valid()) continue;
    const Var g = adjoint[raw];
    // Snapshot the node: pushes below may reallocate nodes_.
    const Node node = nodes_[raw];
    const Var self(this, i);
    const Var a_var(this, node.a);
    const Var b_var(this, node.b);
    switch (node.op) {
      case Op::kLeaf:
      case Op::kConst:
        break;
      case Op::kAdd:
        accumulate(node.a, g);
        accumulate(node.b, g);
        break;
      case Op::kSub:
        accumulate(node.a, g);
        accumulate(node.b, neg(g));
        break;
      case Op::kMul:
        accumulate(node.a, mul(g, b_var));
        accumulate(node.b, mul(g, a_var));
        break;
      case Op::kDiv:
        // d(a/b)/da = 1/b ; d(a/b)/db = -(a/b)/b
        accumulate(node.a, div(g, b_var));
        accumulate(node.b, neg(div(mul(g, self), b_var)));
        break;
      case Op::kNeg:
        accumulate(node.a, neg(g));
        break;
      case Op::kExp:
        accumulate(node.a, mul(g, self));
        break;
      case Op::kLog:
        accumulate(node.a, div(g, a_var));
        break;
      case Op::kSqrt:
        // d sqrt(a)/da = 1 / (2 sqrt(a))
        accumulate(node.a, div(g, mul(constant(2.0), self)));
        break;
      case Op::kPowC: {
        // d a^k / da = k a^(k-1)
        const Var powered = pow_const(a_var, node.aux - 1.0);
        accumulate(node.a, mul(g, mul(constant(node.aux), powered)));
        break;
      }
      case Op::kTanh: {
        // 1 - tanh^2
        const Var one_minus = sub(constant(1.0), mul(self, self));
        accumulate(node.a, mul(g, one_minus));
        break;
      }
      case Op::kSigmoid: {
        // s (1 - s)
        const Var deriv = mul(self, sub(constant(1.0), self));
        accumulate(node.a, mul(g, deriv));
        break;
      }
      case Op::kSoftplus:
        // d softplus(a)/da = sigmoid(a)
        accumulate(node.a, mul(g, sigmoid_(a_var)));
        break;
      case Op::kRelu:
        accumulate(node.a, mul(g, step_(a_var)));
        break;
      case Op::kRelu6:
        accumulate(node.a, mul(g, box_step(a_var, 6.0)));
        break;
      case Op::kStep:
      case Op::kBoxStep:
        break;  // derivative defined as zero everywhere
    }
  }

  std::vector<Var> result;
  result.reserve(inputs.size());
  for (Var in : inputs) {
    if (in.index() < frontier && adjoint[in.index()].valid()) {
      result.push_back(adjoint[in.index()]);
    } else {
      result.push_back(constant(0.0));
    }
  }
  return result;
}

Var operator+(Var a, Var b) { return a.tape()->add(a, b); }
Var operator-(Var a, Var b) { return a.tape()->sub(a, b); }
Var operator*(Var a, Var b) { return a.tape()->mul(a, b); }
Var operator/(Var a, Var b) { return a.tape()->div(a, b); }
Var operator-(Var a) { return a.tape()->neg(a); }
Var operator+(Var a, double b) { return a + a.tape()->constant(b); }
Var operator+(double a, Var b) { return b.tape()->constant(a) + b; }
Var operator-(Var a, double b) { return a - a.tape()->constant(b); }
Var operator-(double a, Var b) { return b.tape()->constant(a) - b; }
Var operator*(Var a, double b) { return a * a.tape()->constant(b); }
Var operator*(double a, Var b) { return b.tape()->constant(a) * b; }
Var operator/(Var a, double b) { return a / a.tape()->constant(b); }
Var operator/(double a, Var b) { return b.tape()->constant(a) / b; }

Var exp(Var a) { return a.tape()->exp_(a); }
Var log(Var a) { return a.tape()->log_(a); }
Var sqrt(Var a) { return a.tape()->sqrt_(a); }
Var pow(Var a, double exponent) { return a.tape()->pow_const(a, exponent); }
Var tanh(Var a) { return a.tape()->tanh_(a); }
Var sigmoid(Var a) { return a.tape()->sigmoid_(a); }
Var softplus(Var a) { return a.tape()->softplus_(a); }
Var relu(Var a) { return a.tape()->relu_(a); }
Var relu6(Var a) { return a.tape()->relu6_(a); }

double finite_difference(const std::vector<double>& point, std::size_t index,
                         double (*fn)(const std::vector<double>&), double h) {
  std::vector<double> plus = point;
  std::vector<double> minus = point;
  plus[index] += h;
  minus[index] -= h;
  return (fn(plus) - fn(minus)) / (2.0 * h);
}

}  // namespace dpho::ad
