// Reverse-mode automatic differentiation on a dynamic tape.
//
// This is the stand-in for TensorFlow's autodiff in the DeePMD training stack:
// atomic forces are gradients of the predicted energy with respect to
// coordinates (F = -dE/dx), and the training loss contains those forces, so
// optimizing the loss requires differentiating *through* a gradient.  To
// support that, Tape::gradient() expresses every local derivative in terms of
// new tape nodes -- the backward pass extends the computation graph -- which
// makes second (and higher) order derivatives available by calling gradient()
// on the result of a previous gradient().
//
// Values are computed eagerly as nodes are created, so Var::value() is a
// constant-time lookup and no separate "forward pass" is needed.
#pragma once

#include <cstdint>
#include <vector>

namespace dpho::ad {

class Tape;

/// Lightweight handle to a tape node.  Copyable; valid until the owning tape
/// is reset or destroyed.
class Var {
 public:
  Var() = default;
  Var(Tape* tape, std::uint32_t index) : tape_(tape), index_(index) {}

  double value() const;
  Tape* tape() const { return tape_; }
  std::uint32_t index() const { return index_; }
  bool valid() const { return tape_ != nullptr; }

 private:
  Tape* tape_ = nullptr;
  std::uint32_t index_ = 0;
};

/// The growable computation record.
class Tape {
 public:
  Tape() = default;
  explicit Tape(std::size_t reserve_nodes) { nodes_.reserve(reserve_nodes); }

  /// Creates a leaf variable (differentiable input).
  Var input(double value);

  /// Creates a constant (gradient is identically zero).
  Var constant(double value);

  /// Number of live nodes; useful for memory accounting in tests/benches.
  std::size_t size() const { return nodes_.size(); }

  /// Allocated node slots; reset() keeps this, so a tape reused across
  /// frames stops hitting the allocator once the largest graph has been
  /// seen (the trainer's worker tapes rely on that).
  std::size_t capacity() const { return nodes_.capacity(); }

  /// Discards every node but keeps the node storage and the backward-pass
  /// scratch, so the next graph build reuses warm memory.  All outstanding
  /// Vars become invalid.
  void reset();

  /// Value stored at a node index (bounds-checked).
  double value_at(std::uint32_t index) const;

  /// Reverse-mode gradient of `output` with respect to each of `inputs`.
  ///
  /// The returned adjoints are themselves tape variables, so they can be
  /// combined into new expressions and differentiated again (higher-order).
  /// Inputs that `output` does not depend on get a zero-constant adjoint.
  std::vector<Var> gradient(Var output, const std::vector<Var>& inputs);

  // -- primitive operations (free operators below forward to these) --
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  Var mul(Var a, Var b);
  Var div(Var a, Var b);
  Var neg(Var a);
  Var exp_(Var a);
  Var log_(Var a);
  Var sqrt_(Var a);
  Var pow_const(Var a, double exponent);
  Var tanh_(Var a);
  Var sigmoid_(Var a);
  Var softplus_(Var a);
  Var relu_(Var a);
  Var relu6_(Var a);
  /// Heaviside step of a (0 for a<=0, 1 for a>0); derivative defined as 0.
  Var step_(Var a);
  /// Indicator of 0 < a < hi; derivative defined as 0 (used by relu6).
  Var box_step(Var a, double hi);

 private:
  enum class Op : std::uint8_t {
    kLeaf, kConst, kAdd, kSub, kMul, kDiv, kNeg, kExp, kLog, kSqrt, kPowC,
    kTanh, kSigmoid, kSoftplus, kRelu, kRelu6, kStep, kBoxStep,
  };

  struct Node {
    Op op = Op::kLeaf;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double value = 0.0;
    double aux = 0.0;  // exponent for kPowC, upper bound for kBoxStep
  };

  Var push(Op op, double value, std::uint32_t a = 0, std::uint32_t b = 0,
           double aux = 0.0);
  double value_of(std::uint32_t index) const { return nodes_[index].value; }

  std::vector<Node> nodes_;
  std::vector<Var> adjoint_scratch_;  // reused by gradient() across calls
};

// Operator sugar.  Mixed Var/double forms promote the double to a constant on
// the Var's tape.
Var operator+(Var a, Var b);
Var operator-(Var a, Var b);
Var operator*(Var a, Var b);
Var operator/(Var a, Var b);
Var operator-(Var a);
Var operator+(Var a, double b);
Var operator+(double a, Var b);
Var operator-(Var a, double b);
Var operator-(double a, Var b);
Var operator*(Var a, double b);
Var operator*(double a, Var b);
Var operator/(Var a, double b);
Var operator/(double a, Var b);

Var exp(Var a);
Var log(Var a);
Var sqrt(Var a);
Var pow(Var a, double exponent);
Var tanh(Var a);
Var sigmoid(Var a);
Var softplus(Var a);
Var relu(Var a);
Var relu6(Var a);

/// Numerically checks d output / d input via central differences; used by the
/// test-suite but exposed here so downstream models can self-verify.
double finite_difference(const std::vector<double>& point, std::size_t index,
                         double (*fn)(const std::vector<double>&), double h = 1e-6);

}  // namespace dpho::ad
